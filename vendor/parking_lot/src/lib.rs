//! Minimal vendored `parking_lot` shim.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind parking_lot's
//! poison-free API (`lock()` / `read()` / `write()` return guards directly).
//! Poisoned locks are recovered transparently, matching parking_lot's
//! behavior of not propagating panics through lock state.

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with a poison-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with a poison-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len(), b.len());
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
