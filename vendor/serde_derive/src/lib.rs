//! Minimal vendored replacements for the real `serde_derive` macros.
//!
//! The build environment has no network access, so the workspace ships a small
//! value-tree based serde shim (see `vendor/serde`). These derives generate
//! implementations of that shim's `Serialize` / `Deserialize` traits:
//!
//! * named structs serialize to a map of field name → value;
//! * newtype (single-field tuple) structs serialize transparently;
//! * tuple structs serialize to a sequence;
//! * enums serialize externally tagged (`"Variant"`, `{"Variant": value}`, or
//!   `{"Variant": {..fields..}}`), matching serde's default representation.
//!
//! Supported container/field attributes: `#[serde(transparent)]` and
//! `#[serde(default)]`. Generic types are intentionally unsupported — the
//! workspace does not derive serde impls on generic types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug, Clone)]
enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug, Clone)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
        transparent: bool,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Returns `true` if the attribute group (the tokens inside `#[...]`) is a
/// `serde(...)` attribute containing the given word.
fn serde_attr_contains(attr: &TokenStream, word: &str) -> bool {
    let tokens: Vec<TokenTree> = attr.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == word)),
        _ => false,
    }
}

/// Skips attributes starting at `i`, returning the next index and whether any
/// skipped attribute was `#[serde(<word>)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, word: &str) -> (usize, bool) {
    let mut found = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if serde_attr_contains(&g.stream(), word) {
                        found = true;
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, found)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the fields of a brace-delimited (named) field group.
fn parse_named_fields(group: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, default) = skip_attrs(&tokens, i, "default");
        i = skip_vis(&tokens, next);
        let name = match &tokens[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected ':' after field name, found {other}"),
        }
        // Skip the type: everything until a top-level comma (tracking angle depth).
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a parenthesized (tuple) field group.
fn count_tuple_fields(group: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(group: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i, "default");
        i = next;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(&g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, transparent) = skip_attrs(&tokens, 0, "transparent");
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type {name})");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(&g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(&g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                None => Shape::Unit,
                other => panic!("serde_derive shim: unsupported struct body {other:?}"),
            };
            Item::Struct {
                name,
                shape,
                transparent,
            }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(&g.stream())
                }
                other => panic!("serde_derive shim: unsupported enum body {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_named_fields(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&{prefix}{n}))",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            shape,
            transparent,
        } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Named(fields) if *transparent && fields.len() == 1 => {
                    format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
                }
                Shape::Named(fields) => serialize_named_fields(fields, "self."),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = serialize_named_fields(fields, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), {inner})]),",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{ match self {{\n{}\n    }} }}\n}}",
                arms.join("\n")
            )
        }
    }
}

fn deserialize_named_fields(fields: &[Field], ty: &str, entries_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::Error::custom(\"missing field `{}`\"))",
                    f.name
                )
            };
            format!(
                "{n}: match ::serde::find_entry({entries_expr}, \"{n}\") {{ ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, ::std::option::Option::None => {missing} }},",
                n = f.name
            )
        })
        .collect();
    format!("{ty} {{ {} }}", inits.join(" "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            shape,
            transparent,
        } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Named(fields) if *transparent && fields.len() == 1 => format!(
                    "::std::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})",
                    f = fields[0].name
                ),
                Shape::Named(fields) => {
                    let build = deserialize_named_fields(fields, name, "entries");
                    format!(
                        "let entries = match v {{ ::serde::Value::Map(entries) => entries, _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected map for struct {name}\")) }};\n::std::result::Result::Ok({build})"
                    )
                }
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = match v {{ ::serde::Value::Seq(items) if items.len() == {n} => items, _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected sequence of length {n} for struct {name}\")) }};\n::std::result::Result::Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let items = match inner {{ ::serde::Value::Seq(items) if items.len() == {n} => items, _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected sequence for variant {vn}\")) }}; ::std::result::Result::Ok({name}::{vn}({items})) }},",
                                items = items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let build =
                                deserialize_named_fields(fields, &format!("{name}::{vn}"), "entries");
                            format!(
                                "\"{vn}\" => {{ let entries = match inner {{ ::serde::Value::Map(entries) => entries, _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected map for variant {vn}\")) }}; ::std::result::Result::Ok({build}) }},"
                            )
                        }
                        Shape::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        match v {{\n            ::serde::Value::Str(s) => match s.as_str() {{\n                {unit}\n                other => ::std::result::Result::Err(::serde::Error::custom(&format!(\"unknown variant `{{other}}` for enum {name}\"))),\n            }},\n            ::serde::Value::Map(entries) if entries.len() == 1 => {{\n                let (tag, inner) = &entries[0];\n                match tag.as_str() {{\n                    {tagged}\n                    other => ::std::result::Result::Err(::serde::Error::custom(&format!(\"unknown variant `{{other}}` for enum {name}\"))),\n                }}\n            }}\n            _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or single-entry map for enum {name}\")),\n        }}\n    }}\n}}",
                unit = unit_arms.join("\n                "),
                tagged = tagged_arms.join("\n                    ")
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}
