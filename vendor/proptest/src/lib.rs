//! Minimal vendored `proptest` shim.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::select`, `any::<T>()`,
//! and [`Just`]. Differences from the real crate: cases are generated from a
//! deterministic per-test seed and failing inputs are *not* shrunk — the
//! failing values are reported as-is by the assertion message.

use rand::{Rng, SeedableRng, StdRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Test-runner types ([`TestRng`], [`ProptestConfig`](test_runner::ProptestConfig)).
pub mod test_runner {
    use super::*;

    /// Deterministic random source driving strategy generation.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates a generator seeded from the test name, so every test draws
        /// a reproducible sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            Self {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.gen()
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen()
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Sizes accepted by [`vec()`]: an exact length or a half-open range.
    pub trait IntoSizeRange {
        /// The `[lo, hi)` bounds of the size.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.usize_in(self.lo, self.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Strategy returned by [`select`].
    pub struct SelectStrategy<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for SelectStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.usize_in(0, self.options.len())].clone()
        }
    }

    /// Uniformly selects one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> SelectStrategy<T> {
        assert!(!options.is_empty(), "cannot select from an empty list");
        SelectStrategy { options }
    }
}

/// Module alias so `prop::collection::vec` / `prop::sample::select` resolve.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

/// Asserts a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality of two property values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality of two property values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` is
/// expanded to a `#[test]` that generates the configured number of cases from
/// a deterministic seed and runs the body for each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($config).cases; $($rest)*);
    };
    (@cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases: u32 = $cases;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::test_runner::ProptestConfig::default().cases; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..500 {
            let v = Strategy::generate(&(3i64..17), &mut rng);
            assert!((3..17).contains(&v));
            let xs = Strategy::generate(&prop::collection::vec(0u8..4, 2..6), &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
            let picked = Strategy::generate(&prop::sample::select(vec!["a", "b"]), &mut rng);
            assert!(picked == "a" || picked == "b");
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("combinators");
        let strategy = (1usize..4).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0.0f64..1.0, n)).prop_map(|(n, xs)| (n, xs.len()))
        });
        for _ in 0..200 {
            let (n, len) = Strategy::generate(&strategy, &mut rng);
            assert_eq!(n, len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: arguments bind and assertions fire.
        #[test]
        fn macro_generates_cases(a in 0i64..10, flag in any::<bool>()) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
