//! Minimal vendored `criterion` shim.
//!
//! Benches are declared exactly as with the real crate (`Criterion`,
//! `benchmark_group`, `bench_function`, `b.iter(...)`, `criterion_main!`) and
//! run as plain timed loops: a warm-up phase followed by a measurement phase,
//! reporting the mean time per iteration. There is no statistical analysis,
//! plotting, or result persistence — the shim exists so `cargo bench` builds
//! and produces honest wall-clock numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per bench.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per bench.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented by the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one named bench.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => println!("{id:<50} {report}"),
            None => println!("{id:<50} (no measurement)"),
        }
        self
    }
}

/// A group of related benches sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named bench inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to bench closures; [`Bencher::iter`] runs the timed loop.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<String>,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring for the configured window.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: run untimed until the warm-up window elapses.
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(f());
        }
        // Measurement: `sample_size` samples, each a batch of iterations.
        let sample_window = self.measurement_time / self.sample_size as u32;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            let mut sample_iters = 0u64;
            loop {
                black_box(f());
                sample_iters += 1;
                if sample_start.elapsed() >= sample_window {
                    break;
                }
            }
            total += sample_start.elapsed();
            iters += sample_iters;
        }
        let mean = total.as_nanos() as f64 / iters as f64;
        self.report = Some(format!("{} iters, mean {}", iters, format_nanos(mean)));
    }

    /// Like [`Bencher::iter`], but runs `setup` untimed before every timed
    /// invocation of `routine`.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            let input = setup();
            black_box(routine(input));
        }
        let sample_window = self.measurement_time / self.sample_size as u32;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let mut sample_time = Duration::ZERO;
            loop {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                sample_time += start.elapsed();
                iters += 1;
                if sample_time >= sample_window {
                    break;
                }
            }
            total += sample_time;
        }
        let mean = total.as_nanos() as f64 / iters as f64;
        self.report = Some(format!("{} iters, mean {}", iters, format_nanos(mean)));
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns/iter")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs/iter", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms/iter", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", nanos / 1_000_000_000.0)
    }
}

/// Declares the bench entry point: calls each listed function in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn nanos_formatting_scales() {
        assert!(format_nanos(12.0).contains("ns"));
        assert!(format_nanos(12_000.0).contains("µs"));
        assert!(format_nanos(12_000_000.0).contains("ms"));
        assert!(format_nanos(2_000_000_000.0).contains("s/iter"));
    }
}
