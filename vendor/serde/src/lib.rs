//! Minimal vendored serde shim.
//!
//! The build environment has no network access, so this crate replaces the real
//! `serde` with a small value-tree model: [`Serialize`] converts a value into a
//! [`Value`] tree and [`Deserialize`] reconstructs it. The derive macros
//! (re-exported from the local `serde_derive` shim) generate field-by-field
//! conversions that match serde's default representations closely enough for
//! this workspace: newtype structs are transparent, named structs become maps,
//! and enums are externally tagged.
//!
//! `serde_json` (also vendored) renders and parses `Value` trees as JSON.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree — the data model shared by `Serialize`,
/// `Deserialize`, and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (wide enough for every integer type in the workspace).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence of values.
    Seq(Vec<Value>),
    /// An ordered map of string keys to values.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// A total order over value trees, used to render maps deterministically.
    fn sort_key_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
                Value::Seq(_) => 5,
                Value::Map(_) => 6,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Seq(a), Value::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.sort_key_cmp(y) {
                        Ordering::Equal => {}
                        non_eq => return non_eq,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    match ka.cmp(kb).then_with(|| va.sort_key_cmp(vb)) {
                        Ordering::Equal => {}
                        non_eq => return non_eq,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// Error produced by [`Deserialize`] implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: &str) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Finds the value of a named field in a struct map. Used by generated code.
pub fn find_entry<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Converts a value into its [`Value`] tree representation.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from its [`Value`] tree representation.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$ty>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $ty),
                    Value::Int(i) => Ok(*i as $ty),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == [$($idx),+].len() => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple sequence")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as a deterministic sequence of `[key, value]` pairs: JSON
/// object keys must be strings, but the workspace also uses maps keyed by ids
/// and id pairs. Pairs are ordered by serialized key so output is stable.
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(Value, Value)> =
        entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    pairs.sort_by(|a, b| a.0.sort_key_cmp(&b.0));
    Value::Seq(
        pairs
            .into_iter()
            .map(|(k, v)| Value::Seq(vec![k, v]))
            .collect(),
    )
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Seq(items) => items
            .iter()
            .map(|item| match item {
                Value::Seq(pair) if pair.len() == 2 => {
                    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                }
                _ => Err(Error::custom("expected [key, value] pair")),
            })
            .collect(),
        _ => Err(Error::custom("expected sequence of [key, value] pairs")),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}
