//! Minimal vendored `crossbeam` shim.
//!
//! Provides `crossbeam::thread::scope` backed by `std::thread::scope`. Unlike
//! the real crossbeam, a panicking child thread propagates the panic when the
//! scope joins instead of surfacing it through the returned `Result` — callers
//! in this workspace immediately `unwrap()` the result anyway.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`] closures and spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` inside a thread scope; all spawned threads are joined before
    /// this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
