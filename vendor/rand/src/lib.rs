//! Minimal vendored `rand` shim.
//!
//! Provides the subset of the rand 0.8 API this workspace uses: `StdRng` (a
//! xoshiro256++ generator seeded via SplitMix64), `SeedableRng::seed_from_u64`,
//! and the `Rng` extension trait with `gen`, `gen_range`, and `gen_bool`.
//! Sequences are deterministic for a given seed but are not bit-compatible
//! with the real rand crate.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution): floats in `[0, 1)`, full-range integers, fair booleans.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws a uniform sample from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $uty).wrapping_sub(self.start as $uty);
                let offset = rng.next_u64() % (span as u64);
                (self.start as $uty).wrapping_add(offset as $uty) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $uty).wrapping_sub(start as $uty) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let offset = rng.next_u64() % (span + 1);
                (start as $uty).wrapping_add(offset as $uty) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a sample of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64. Deterministic
    /// per seed; not bit-compatible with the real rand crate.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(10u32..=12);
            assert!((10..=12).contains(&w));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }
}
