//! Minimal vendored `serde_json` shim: renders and parses the [`serde::Value`]
//! tree of the local serde shim as JSON.
//!
//! Maps with non-string keys are represented as sequences of `[key, value]`
//! pairs (see the serde shim), so everything this module emits is plain JSON.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced when rendering or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// The 0-based byte offset in the input at which parsing failed, when the
    /// error came from the JSON parser (semantic deserialization errors carry
    /// no position).
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a two-space indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a value.
pub fn from_str<T: Deserialize>(json: &str) -> Result<T, Error> {
    let value = parse_value(json)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(json: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::at(
            format!("trailing characters at byte {}", parser.pos),
            parser.pos,
        ));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(
                format!("expected {:?} at byte {}", b as char, self.pos),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::at(
                format!("invalid literal at byte {}", self.pos),
                self.pos,
            ))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::at(
                format!("unexpected input at byte {}", self.pos),
                self.pos,
            )),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::at("unterminated string", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting at pos - 1.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::at(format!("invalid number {text:?}"), start))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::at(format!("invalid number {text:?}"), start))
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::at(
                        format!("expected ',' or ']' at byte {}", self.pos),
                        self.pos,
                    ))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::at(
                        format!("expected ',' or '}}' at byte {}", self.pos),
                        self.pos,
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n".to_string()).unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn pretty_renders_indented() {
        let v = vec![vec![1u32], vec![2]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn map_roundtrips_as_pairs() {
        let mut m = std::collections::HashMap::new();
        m.insert("a".to_string(), vec![1u32, 2]);
        m.insert("b".to_string(), vec![3]);
        let json = to_string(&m).unwrap();
        let back: std::collections::HashMap<String, Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        let err = from_str::<Vec<u32>>("[1, x]").unwrap_err();
        assert_eq!(err.offset(), Some(4));
        let err = from_str::<u32>("12 34").unwrap_err();
        assert_eq!(err.offset(), Some(3));
        // Semantic (post-parse) deserialization errors carry no position.
        let err = from_str::<u32>("\"nope\"").unwrap_err();
        assert_eq!(err.offset(), None);
    }
}
