//! Minimal vendored `rayon` shim.
//!
//! Provides the fork-join primitives this workspace uses — [`scope`] and
//! [`join`] — backed by `std::thread::scope`. Each `Scope::spawn` starts one
//! OS thread; callers are expected to spawn one task per shard (the batch
//! pipeline spawns exactly `jobs` tasks), so a work-stealing pool is not
//! needed for correct scaling behavior.

/// A scope handle passed to [`scope`] closures and spawned tasks.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task in the scope. The closure receives the scope so it can
    /// spawn further tasks, matching rayon's signature.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `f` inside a fork-join scope; all spawned tasks complete before this
/// returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let handle = s.spawn(b);
        let ra = a();
        (ra, handle.join().expect("rayon::join task panicked"))
    })
}

/// The number of threads the default pool would use: the available parallelism
/// of the machine.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
