//! The DBH-like campus dataset generator.
//!
//! The paper's main dataset (DBH-WIFI, §6.1) was captured in UC Irvine's Donald Bren
//! Hall: 64 APs, 300+ rooms, six months of data, with ground truth collected for a
//! small panel of monitored individuals grouped by how predictable their behaviour is.
//! We cannot redistribute that dataset, so [`CampusConfig`] generates a synthetic
//! campus building with the same *shape*: many overlapping AP coverage areas (≈11
//! rooms per AP), a mix of offices / conference rooms / lounges, occupants whose
//! predictability spans the paper's four bands `[40,55) … [85,100)`, and a monitored
//! panel for which ground truth queries can be scored.

use crate::person::{Behaviour, Person};
use crate::schedule::ScheduledEvent;
use crate::world::{simulate, SimOutput, World};
use locater_events::clock;
use locater_space::{RoomType, SpaceBuilder};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic campus dataset.
///
/// The defaults are sized so that the full evaluation suite runs on a laptop in
/// minutes; scaling `access_points` to 64 and `population` into the thousands
/// reproduces the paper's deployment scale when more time is available.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampusConfig {
    /// Number of WiFi access points (the paper's building has 64).
    pub access_points: usize,
    /// Number of rooms covered by each access point (the paper reports ≈11).
    pub rooms_per_ap: usize,
    /// Number of rooms shared between adjacent access points (coverage overlap).
    pub overlap: usize,
    /// Number of building occupants with an assigned office.
    pub population: usize,
    /// Number of additional visitor devices without a preferred room.
    pub visitors: usize,
    /// Size of the monitored ground-truth panel (the paper had 9 diary participants
    /// plus 13 camera-identified individuals).
    pub monitored: usize,
    /// Number of simulated weeks (the paper uses up to 9 weeks of history plus the
    /// evaluation period).
    pub weeks: i64,
    /// Random seed.
    pub seed: u64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        Self {
            access_points: 16,
            rooms_per_ap: 11,
            overlap: 3,
            population: 96,
            visitors: 24,
            monitored: 20,
            weeks: 10,
            seed: 0xDB15EED,
        }
    }
}

impl CampusConfig {
    /// A small configuration for unit tests and quick examples.
    pub fn small() -> Self {
        Self {
            access_points: 6,
            rooms_per_ap: 8,
            overlap: 2,
            population: 24,
            visitors: 6,
            monitored: 8,
            weeks: 4,
            seed: 0x5A11,
        }
    }

    /// Number of simulated days.
    pub fn days(&self) -> i64 {
        self.weeks * 7
    }

    /// Sets the number of simulated weeks.
    pub fn with_weeks(mut self, weeks: i64) -> Self {
        self.weeks = weeks.max(1);
        self
    }

    /// Sets the population size.
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population.max(1);
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The `metro_campus` large-scenario configuration: a metropolitan campus
    /// an order of magnitude bigger than [`CampusConfig::default`] (64 APs,
    /// hundreds of occupants, a quarter of simulated history), used to size the
    /// snapshot and segment-pruning benchmarks like a real deployment's corpus.
    pub fn metro() -> Self {
        Self {
            access_points: 64,
            rooms_per_ap: 11,
            overlap: 3,
            population: 480,
            visitors: 120,
            monitored: 40,
            weeks: 13,
            seed: 0x3E7209,
        }
    }

    /// [`CampusConfig::metro`] resized by environment variables, so CI smoke
    /// runs and full-scale local runs share one entry point:
    ///
    /// * `LOCATER_METRO_SCALE` — float multiplier applied to population,
    ///   visitors and access points (default 1.0);
    /// * `LOCATER_METRO_WEEKS` — simulated weeks (default 13);
    /// * `LOCATER_METRO_SEED` — random seed.
    ///
    /// Unparsable values fall back to the defaults.
    pub fn metro_from_env() -> Self {
        fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut config = Self::metro();
        if let Some(scale) = env_parse::<f64>("LOCATER_METRO_SCALE") {
            let scale = scale.clamp(0.01, 100.0);
            let scaled = |n: usize| ((n as f64 * scale).round() as usize).max(1);
            config.access_points = scaled(config.access_points).max(2);
            config.population = scaled(config.population);
            config.visitors = scaled(config.visitors);
            config.monitored = scaled(config.monitored).min(config.population);
        }
        if let Some(weeks) = env_parse::<i64>("LOCATER_METRO_WEEKS") {
            config.weeks = weeks.max(1);
        }
        if let Some(seed) = env_parse::<u64>("LOCATER_METRO_SEED") {
            config.seed = seed;
        }
        config
    }
}

/// The anchor-probability targets used to populate the paper's four predictability
/// bands. Anchor stays are longer than visits, so the measured fraction of in-building
/// time spent in the preferred room ends up above the per-segment probability; these
/// targets are calibrated so the measured values land in [40,55), [55,70), [70,85)
/// and [85,100) respectively.
const BAND_TARGETS: [f64; 4] = [0.26, 0.42, 0.60, 0.88];

/// Builds the campus [`World`] for a configuration.
pub fn build_world(config: &CampusConfig) -> World {
    let access_points = config.access_points.max(2);
    let rooms_per_ap = config.rooms_per_ap.max(3);
    let overlap = config.overlap.min(rooms_per_ap - 1);
    let step = rooms_per_ap - overlap;
    let num_rooms = step * (access_points - 1) + rooms_per_ap;

    // Room names mimic DBH's numbering (2001, 2002, …); every 8th room is a shared
    // space (conference room or lounge).
    let room_names: Vec<String> = (0..num_rooms).map(|i| format!("{}", 2000 + i)).collect();
    let is_public = |idx: usize| idx % 8 == 4 || idx.is_multiple_of(8);

    let mut builder = SpaceBuilder::new("Campus-DBH");
    for ap in 0..access_points {
        let start = ap * step;
        let end = (start + rooms_per_ap).min(num_rooms);
        let coverage: Vec<&str> = room_names[start..end].iter().map(String::as_str).collect();
        builder = builder.add_access_point(&format!("wap{ap}"), &coverage);
    }
    for (idx, name) in room_names.iter().enumerate() {
        let room_type = if is_public(idx) {
            RoomType::Public
        } else {
            RoomType::Private
        };
        builder = builder.room_type(name, room_type);
    }

    // Occupants: private rooms are handed out round-robin as offices; predictability
    // targets cycle through the four bands so every band is populated.
    let private_rooms: Vec<&String> = room_names
        .iter()
        .enumerate()
        .filter(|(idx, _)| !is_public(*idx))
        .map(|(_, name)| name)
        .collect();
    let public_rooms: Vec<&String> = room_names
        .iter()
        .enumerate()
        .filter(|(idx, _)| is_public(*idx))
        .map(|(_, name)| name)
        .collect();

    struct Pending {
        mac: String,
        profile: String,
        anchor: Option<String>,
        behaviour: Behaviour,
        monitored: bool,
    }
    let mut pending = Vec::new();
    for i in 0..config.population {
        let mac = format!("occupant-{i:04}");
        let office = private_rooms[i % private_rooms.len()].clone();
        let target = BAND_TARGETS[i % BAND_TARGETS.len()];
        builder = builder.room_owner(&office, &mac);
        pending.push(Pending {
            mac,
            profile: "Occupant".to_string(),
            anchor: Some(office),
            behaviour: Behaviour {
                event_prob: 0.4,
                // Real association logs are sporadic (paper §2): phones sleep, probe
                // rarely and miss re-association opportunities, so a large share of a
                // stay is only covered by the validity window around a handful of
                // events — leaving plenty of gaps for the coarse cleaner to repair.
                emit_period: clock::minutes(16 + (i as i64 % 5) * 3),
                emit_prob: 0.45,
                ..Behaviour::with_predictability(target)
            },
            monitored: i < config.monitored,
        });
    }
    for i in 0..config.visitors {
        pending.push(Pending {
            mac: format!("visitor-{i:04}"),
            profile: "Visitor".to_string(),
            anchor: None,
            behaviour: Behaviour {
                anchor_prob: 0.0,
                event_prob: 0.3,
                weekday_presence: 0.25,
                weekend_presence: 0.05,
                stay_mean: clock::hours(3),
                emit_period: clock::minutes(14),
                emit_prob: 0.5,
                ..Behaviour::default()
            },
            monitored: false,
        });
    }

    let space = builder.build().expect("campus layout is a valid space");

    let people: Vec<Person> = pending
        .into_iter()
        .map(|p| {
            let mut person = Person::new(p.mac, p.profile).with_behaviour(p.behaviour);
            if let Some(room) = p.anchor {
                person = person.with_anchor(space.room_id(&room).expect("office exists"));
            }
            if p.monitored {
                person = person.monitored();
            }
            person
        })
        .collect();

    // Recurring campus events: seminars and meetings in shared rooms plus a daily
    // lunch gathering. These create the co-location patterns the fine-grained
    // algorithm's group affinities feed on.
    let mut schedule = Vec::new();
    for (idx, room) in public_rooms.iter().take(4).enumerate() {
        let room_id = space.room_id(room).unwrap();
        schedule.push(
            ScheduledEvent::weekdays(
                format!("seminar-{idx}"),
                room_id,
                clock::hours(10 + (idx as i64 % 4) * 2),
                clock::minutes(60),
            )
            .with_capacity(20),
        );
    }
    if let Some(lounge) = public_rooms.first() {
        schedule.push(
            ScheduledEvent::daily(
                "lunch",
                space.room_id(lounge).unwrap(),
                clock::hours(12),
                clock::minutes(45),
            )
            .with_capacity(60),
        );
    }

    World {
        space,
        people,
        schedule,
    }
}

/// Generates the campus dataset.
pub fn generate(config: &CampusConfig) -> SimOutput {
    let world = build_world(config);
    simulate(&world, config.days(), config.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_mirrors_the_papers_shape() {
        let config = CampusConfig::default();
        assert_eq!(config.rooms_per_ap, 11);
        assert!(config.access_points >= 8);
        assert!(config.monitored <= config.population);
        assert_eq!(config.days(), 70);
        let adjusted = config.with_weeks(0).with_population(0).with_seed(1);
        assert_eq!(adjusted.weeks, 1);
        assert_eq!(adjusted.population, 1);
    }

    #[test]
    fn campus_world_has_overlapping_regions_and_offices() {
        let world = build_world(&CampusConfig::small());
        let space = &world.space;
        assert_eq!(space.num_access_points(), 6);
        assert!((space.avg_rooms_per_ap() - 8.0).abs() < 1.0);
        // Rooms in the overlap belong to two regions.
        let multi_region_rooms = (0..space.num_rooms())
            .filter(|&i| {
                space
                    .regions_of_room(locater_space::RoomId::new(i as u32))
                    .len()
                    > 1
            })
            .count();
        assert!(multi_region_rooms > 0);
        // Every occupant has a registered office; visitors have none.
        for person in &world.people {
            if person.profile == "Occupant" {
                assert!(person.anchor_room.is_some());
                assert!(!space.preferred_rooms(&person.mac).is_empty());
            } else {
                assert!(person.anchor_room.is_none());
            }
        }
        assert!(!world.schedule.is_empty());
    }

    #[test]
    fn generated_dataset_covers_all_predictability_bands() {
        let output = generate(&CampusConfig::small().with_weeks(3));
        assert!(!output.events.is_empty());
        let groups = output.records_by_group();
        // Occupant anchor probabilities cycle through four bands; after measurement
        // noise at least three distinct bands must be populated.
        let occupied_bands = groups
            .iter()
            .filter(|(label, records)| label.as_str() != "<40" && !records.is_empty())
            .count();
        assert!(
            occupied_bands >= 3,
            "bands: {:?}",
            groups.keys().collect::<Vec<_>>()
        );
        // The monitored panel exists and is the requested size.
        assert_eq!(output.monitored().count(), CampusConfig::small().monitored);
    }

    #[test]
    fn campus_store_builds_and_has_gaps_to_clean() {
        let output = generate(&CampusConfig::small().with_weeks(2));
        let store = output.build_store();
        assert_eq!(store.num_events(), output.events.len());
        assert!(store.num_devices() > 0);
        // At least one monitored device has gaps (missing values to repair).
        let has_gaps = output.monitored().any(|record| {
            store
                .device_id(&record.mac)
                .map(|d| !store.gaps_of(d).is_empty())
                .unwrap_or(false)
        });
        assert!(has_gaps, "campus data should contain gaps");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CampusConfig::small().with_weeks(1));
        let b = generate(&CampusConfig::small().with_weeks(1));
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn metro_config_is_a_larger_campus() {
        let metro = CampusConfig::metro();
        let default = CampusConfig::default();
        assert!(metro.access_points > default.access_points);
        assert!(metro.population > default.population);
        assert!(metro.weeks > default.weeks);
        // Env sizing falls back to the defaults when the variables are unset
        // or unparsable (the test must not depend on ambient env state).
        let sized = CampusConfig::metro_from_env();
        assert!(sized.access_points >= 2);
        assert!(sized.population >= 1);
        assert!(sized.weeks >= 1);
    }
}
