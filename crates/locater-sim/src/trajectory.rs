//! Day-plan (trajectory) generation.
//!
//! For each person and each simulated day, the generator produces a time-sorted list
//! of [`Stay`]s — the ground-truth trajectory — following the SmartBench-style model
//! of §6.3: people arrive and leave around profile-specific times, spend free segments
//! in their anchor room (with their predictability probability), attend scheduled
//! events their profile is eligible for (subject to per-occurrence capacities), visit
//! other rooms, and occasionally step out of the building.

use crate::ground_truth::Stay;
use crate::person::Person;
use crate::rng::{chance, duration_between, normal_timestamp};
use crate::schedule::{DayAttendance, ScheduledEvent};
use locater_events::clock::{self, Timestamp};
use locater_space::{RoomId, Space};
use rand::Rng;

/// Minimum / maximum length of a free-segment stay, seconds.
const ANCHOR_STAY_RANGE: (Timestamp, Timestamp) = (clock::minutes(30), clock::minutes(120));
const VISIT_STAY_RANGE: (Timestamp, Timestamp) = (clock::minutes(10), clock::minutes(45));
const EXIT_RANGE: (Timestamp, Timestamp) = (clock::minutes(20), clock::minutes(90));
/// How far ahead a person looks for an upcoming event they could attend.
const EVENT_LOOKAHEAD: Timestamp = clock::minutes(30);

/// Generates the day plan of one person for calendar day `day`.
///
/// `attendance` tracks per-event occupancy for this day so capacities are enforced
/// across people; call sites must iterate people within a day with a shared
/// `DayAttendance`.
pub fn generate_day(
    rng: &mut impl Rng,
    person: &Person,
    space: &Space,
    events: &[ScheduledEvent],
    day: i64,
    attendance: &mut DayAttendance,
) -> Vec<Stay> {
    let behaviour = &person.behaviour;
    let weekend = clock::day_of_week(day * clock::SECONDS_PER_DAY).is_weekend();
    let presence = if weekend {
        behaviour.weekend_presence
    } else {
        behaviour.weekday_presence
    };
    if !chance(rng, presence) {
        return Vec::new();
    }

    let day_start = day * clock::SECONDS_PER_DAY;
    let arrival = day_start
        + normal_timestamp(
            rng,
            behaviour.arrival_mean,
            behaviour.arrival_std,
            clock::hours(5),
            clock::hours(15),
        );
    let stay_length = normal_timestamp(
        rng,
        behaviour.stay_mean,
        behaviour.stay_std,
        clock::minutes(45),
        clock::hours(15),
    );
    let departure = (arrival + stay_length).min(day_start + clock::hours(23));

    let mut stays: Vec<Stay> = Vec::new();
    let mut t = arrival;
    while t < departure {
        // 1. Upcoming eligible event with free capacity?
        let upcoming = events.iter().enumerate().find(|(idx, event)| {
            event.occurs_on(day)
                && event.admits(&person.profile)
                && attendance.has_room(*idx, event.capacity)
                && event.start_on(day) >= t - EVENT_LOOKAHEAD
                && event.start_on(day) <= t + EVENT_LOOKAHEAD
                && event.end_on(day) <= departure + EVENT_LOOKAHEAD
        });
        if let Some((idx, event)) = upcoming {
            if chance(rng, behaviour.event_prob) {
                let start = event.start_on(day).max(t);
                let end = event.end_on(day).min(departure);
                if end > start {
                    // Fill the time until the event starts with the anchor room.
                    if let (Some(anchor), true) = (person.anchor_room, event.start_on(day) > t) {
                        push_stay(&mut stays, anchor, t, event.start_on(day).min(departure));
                    }
                    push_stay(&mut stays, event.room, start, end);
                    attendance.attend(idx);
                    t = end;
                    continue;
                }
            }
        }

        // 2. Free segment: leave briefly, sit in the anchor room, or visit some room.
        let roll: f64 = rng.gen();
        if roll < behaviour.exit_prob {
            t += duration_between(rng, EXIT_RANGE.0, EXIT_RANGE.1);
        } else if roll < behaviour.exit_prob + behaviour.anchor_prob && person.anchor_room.is_some()
        {
            let duration = duration_between(rng, ANCHOR_STAY_RANGE.0, ANCHOR_STAY_RANGE.1);
            let end = (t + duration).min(departure);
            push_stay(&mut stays, person.anchor_room.unwrap(), t, end);
            t = end;
        } else {
            let room = random_room(rng, space, person.anchor_room);
            let duration = duration_between(rng, VISIT_STAY_RANGE.0, VISIT_STAY_RANGE.1);
            let end = (t + duration).min(departure);
            push_stay(&mut stays, room, t, end);
            t = end;
        }
    }
    stays
}

/// Appends a stay, merging it with the previous one when they are contiguous and in
/// the same room (so ground truth does not contain artificial splits).
fn push_stay(stays: &mut Vec<Stay>, room: RoomId, start: Timestamp, end: Timestamp) {
    if end <= start {
        return;
    }
    if let Some(last) = stays.last_mut() {
        if last.room == room && last.interval.end >= start {
            last.interval.end = last.interval.end.max(end);
            return;
        }
    }
    stays.push(Stay::new(room, start, end));
}

/// Picks a room to visit: public rooms with 65% probability (people wander into
/// lounges, kitchens and meeting rooms far more often than into someone else's
/// office), any other room otherwise; the person's own anchor room is excluded so a
/// "visit" always means leaving it.
fn random_room(rng: &mut impl Rng, space: &Space, anchor: Option<RoomId>) -> RoomId {
    let rooms = space.rooms();
    debug_assert!(!rooms.is_empty());
    let publics: Vec<RoomId> = rooms
        .iter()
        .filter(|r| r.is_public() && Some(r.id) != anchor)
        .map(|r| r.id)
        .collect();
    if !publics.is_empty() && chance(rng, 0.65) {
        return publics[rng.gen_range(0..publics.len())];
    }
    for _ in 0..8 {
        let candidate = rooms[rng.gen_range(0..rooms.len())].id;
        if Some(candidate) != anchor {
            return candidate;
        }
    }
    rooms[0].id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::Behaviour;
    use locater_space::{RoomType, SpaceBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> Space {
        SpaceBuilder::new("traj")
            .add_access_point("wap0", &["office-1", "office-2", "lounge", "meeting"])
            .add_access_point("wap1", &["lab", "kitchen"])
            .room_type("lounge", RoomType::Public)
            .room_type("meeting", RoomType::Public)
            .room_type("kitchen", RoomType::Public)
            .build()
            .unwrap()
    }

    fn worker(space: &Space, predictability: f64) -> Person {
        Person::new("worker", "Employees")
            .with_anchor(space.room_id("office-1").unwrap())
            .with_behaviour(Behaviour::with_predictability(predictability))
    }

    #[test]
    fn stays_are_ordered_disjoint_and_within_the_day() {
        let space = space();
        let person = worker(&space, 0.7);
        let mut rng = StdRng::seed_from_u64(7);
        for day in 0..10 {
            let mut attendance = DayAttendance::new(0);
            let stays = generate_day(&mut rng, &person, &space, &[], day, &mut attendance);
            for w in stays.windows(2) {
                assert!(
                    w[0].interval.end <= w[1].interval.start,
                    "overlapping stays"
                );
            }
            for stay in &stays {
                assert!(stay.interval.start >= day * clock::SECONDS_PER_DAY);
                assert!(stay.interval.end <= (day + 1) * clock::SECONDS_PER_DAY);
                assert!(stay.duration() > 0);
            }
        }
    }

    #[test]
    fn higher_predictability_means_more_anchor_time() {
        let space = space();
        let anchor = space.room_id("office-1").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let fraction_of = |predictability: f64, rng: &mut StdRng| -> f64 {
            let person = worker(&space, predictability);
            let mut anchor_time = 0i64;
            let mut total = 0i64;
            for day in 0..20 {
                let mut attendance = DayAttendance::new(0);
                for stay in generate_day(rng, &person, &space, &[], day, &mut attendance) {
                    total += stay.duration();
                    if stay.room == anchor {
                        anchor_time += stay.duration();
                    }
                }
            }
            anchor_time as f64 / total.max(1) as f64
        };
        let low = fraction_of(0.3, &mut rng);
        let high = fraction_of(0.95, &mut rng);
        assert!(high > low + 0.2, "high {high} vs low {low}");
        assert!(high > 0.6);
    }

    #[test]
    fn weekends_are_mostly_absent() {
        let space = space();
        let person = worker(&space, 0.7);
        let mut rng = StdRng::seed_from_u64(3);
        let mut weekday_days_present = 0;
        let mut weekend_days_present = 0;
        for week in 0..8 {
            for dow in 0..7 {
                let day = week * 7 + dow;
                let mut attendance = DayAttendance::new(0);
                let stays = generate_day(&mut rng, &person, &space, &[], day, &mut attendance);
                if !stays.is_empty() {
                    if dow >= 5 {
                        weekend_days_present += 1;
                    } else {
                        weekday_days_present += 1;
                    }
                }
            }
        }
        assert!(weekday_days_present > 30);
        assert!(weekend_days_present < 8);
    }

    #[test]
    fn scheduled_events_are_attended_and_capacity_is_respected() {
        let space = space();
        let meeting = space.room_id("meeting").unwrap();
        let event = ScheduledEvent::weekdays("standup", meeting, clock::hours(10), clock::hours(1))
            .with_capacity(2)
            .for_profiles(&["Employees"]);
        let events = vec![event];
        let mut rng = StdRng::seed_from_u64(5);
        // Four eager attendees, capacity two: at most two may attend per day.
        let people: Vec<Person> = (0..4)
            .map(|i| {
                Person::new(format!("p{i}"), "Employees")
                    .with_anchor(space.room_id("office-1").unwrap())
                    .with_behaviour(Behaviour {
                        event_prob: 1.0,
                        exit_prob: 0.0,
                        weekday_presence: 1.0,
                        ..Behaviour::with_predictability(0.6)
                    })
            })
            .collect();
        let mut attended_total = 0usize;
        let mut in_meeting_during_event = 0usize;
        for day in 0..5 {
            let mut attendance = DayAttendance::new(events.len());
            for person in &people {
                let stays = generate_day(&mut rng, person, &space, &events, day, &mut attendance);
                if stays.iter().any(|s| {
                    s.room == meeting
                        && s.interval.overlaps(&locater_events::Interval::new(
                            clock::at(day, 10, 0, 0),
                            clock::at(day, 11, 0, 0),
                        ))
                }) {
                    in_meeting_during_event += 1;
                }
            }
            assert!(
                attendance.count(0) <= 2,
                "capacity exceeded on day {day}: {}",
                attendance.count(0)
            );
            attended_total += attendance.count(0);
        }
        assert!(attended_total > 0, "nobody ever attended the event");
        assert!(in_meeting_during_event >= attended_total);
    }

    #[test]
    fn ineligible_profiles_do_not_attend_events() {
        let space = space();
        let meeting = space.room_id("meeting").unwrap();
        let events = vec![ScheduledEvent::weekdays(
            "faculty-only",
            meeting,
            clock::hours(10),
            clock::hours(1),
        )
        .for_profiles(&["Professor"])];
        let person = Person::new("v", "Visitors").with_behaviour(Behaviour {
            event_prob: 1.0,
            anchor_prob: 0.0,
            exit_prob: 0.0,
            weekday_presence: 1.0,
            ..Behaviour::default()
        });
        let mut rng = StdRng::seed_from_u64(9);
        // Visitors may still wander into the meeting room randomly, but never via the
        // event path with its exact time window — check the event slot is not always
        // occupied by them.
        let mut hits = 0;
        for day in 0..20 {
            let mut attendance = DayAttendance::new(events.len());
            let _ = generate_day(&mut rng, &person, &space, &events, day, &mut attendance);
            hits += attendance.count(0);
        }
        assert_eq!(hits, 0, "ineligible profile recorded as attendee");
    }

    #[test]
    fn push_stay_merges_contiguous_same_room_segments() {
        let mut stays = Vec::new();
        push_stay(&mut stays, RoomId::new(1), 0, 100);
        push_stay(&mut stays, RoomId::new(1), 100, 200);
        push_stay(&mut stays, RoomId::new(2), 250, 300);
        push_stay(&mut stays, RoomId::new(2), 290, 280); // empty → ignored
        assert_eq!(stays.len(), 2);
        assert_eq!(stays[0].interval, locater_events::Interval::new(0, 200));
        assert_eq!(stays[1].room, RoomId::new(2));
    }
}
