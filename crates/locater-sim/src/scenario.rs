//! The four simulated environments of the evaluation (paper §6.3, Table 4):
//! **office**, **university**, **mall** and **airport**, in increasing order of the
//! unpredictability of their occupants.
//!
//! Each scenario is described by a blueprint — its rooms, the AP coverage layout, the
//! people profiles (with per-profile predictability, presence and event-attendance
//! parameters) and the recurring events that drive movement — which is *realized* into
//! a [`World`] and then simulated. Profile names match the columns of Table 4 so the
//! benchmark harness can report the same rows.

use crate::person::{Behaviour, Person};
use crate::schedule::ScheduledEvent;
use crate::world::World;
use locater_events::clock::{self, Timestamp};
use locater_space::{RoomType, SpaceBuilder};
use serde::{Deserialize, Serialize};

/// The simulated environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// An office building (most predictable occupants).
    Office,
    /// A university building (the paper's DBH-like environment).
    University,
    /// A shopping mall.
    Mall,
    /// An airport terminal (least predictable occupants).
    Airport,
}

impl ScenarioKind {
    /// All scenarios, in the order Table 4 lists them.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Office,
        ScenarioKind::University,
        ScenarioKind::Mall,
        ScenarioKind::Airport,
    ];

    /// Human-readable scenario name.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Office => "Office",
            ScenarioKind::University => "University",
            ScenarioKind::Mall => "Mall",
            ScenarioKind::Airport => "Airport",
        }
    }

    /// The profile names of the scenario, in the order Table 4 lists them.
    pub fn profiles(&self) -> Vec<&'static str> {
        match self {
            ScenarioKind::Office => vec![
                "Janitorial",
                "Visitors",
                "Manager",
                "Employees",
                "Receptionist",
            ],
            ScenarioKind::University => vec![
                "Visitors",
                "Undergraduate",
                "Professor",
                "Graduate",
                "Staff",
            ],
            ScenarioKind::Mall => vec![
                "Random Customer",
                "Regular Customer",
                "Staff",
                "Salesman(Res)",
                "Salesman(Shops)",
            ],
            ScenarioKind::Airport => vec![
                "Passenger",
                "TSA",
                "Airline-Represent",
                "Store-Staff",
                "Res-Staff",
            ],
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration of one scenario simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Which environment to simulate.
    pub kind: ScenarioKind,
    /// Number of simulated days (the paper generates 15 days per scenario).
    pub days: i64,
    /// Population scale factor; 1.0 reproduces the blueprint populations, smaller
    /// values shrink them proportionally (useful for fast benchmark runs).
    pub scale: f64,
    /// Random seed.
    pub seed: u64,
}

impl ScenarioConfig {
    /// Creates the default configuration for a scenario: 15 days, full scale.
    pub fn new(kind: ScenarioKind) -> Self {
        Self {
            kind,
            days: 15,
            scale: 1.0,
            seed: 0xC0FFEE ^ kind as u64,
        }
    }

    /// Sets the number of simulated days.
    pub fn with_days(mut self, days: i64) -> Self {
        self.days = days.max(1);
        self
    }

    /// Sets the population scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale.clamp(0.05, 10.0);
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

// ---------------------------------------------------------------------------
// Blueprints
// ---------------------------------------------------------------------------

/// One profile of a blueprint: how many people, how predictable, where anchored.
#[derive(Debug, Clone)]
struct ProfileSpec {
    name: &'static str,
    count: usize,
    predictability: f64,
    /// Room names the profile's members are anchored to (round-robin); empty for
    /// profiles without a preferred room (visitors, passengers, random customers).
    anchor_rooms: Vec<String>,
    weekday_presence: f64,
    weekend_presence: f64,
    event_prob: f64,
    arrival_hour: i64,
    stay_hours: i64,
}

/// One recurring event of a blueprint, referencing rooms by name.
#[derive(Debug, Clone)]
struct EventSpec {
    name: &'static str,
    room: String,
    start_hour: i64,
    duration_minutes: i64,
    capacity: usize,
    profiles: Vec<&'static str>,
    daily: bool,
}

/// A full scenario blueprint.
#[derive(Debug, Clone)]
struct Blueprint {
    name: &'static str,
    rooms: Vec<(String, RoomType)>,
    rooms_per_ap: usize,
    overlap: usize,
    profiles: Vec<ProfileSpec>,
    events: Vec<EventSpec>,
}

fn room_names(prefix: &str, count: usize, room_type: RoomType) -> Vec<(String, RoomType)> {
    (1..=count)
        .map(|i| (format!("{prefix}-{i}"), room_type))
        .collect()
}

fn slug(profile: &str) -> String {
    profile
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

fn office_blueprint() -> Blueprint {
    let mut rooms = Vec::new();
    rooms.extend(room_names("office", 36, RoomType::Private));
    rooms.extend(room_names("meeting", 6, RoomType::Public));
    rooms.push(("lounge".into(), RoomType::Public));
    rooms.push(("kitchen".into(), RoomType::Public));
    rooms.push(("reception".into(), RoomType::Public));
    rooms.push(("janitor-closet".into(), RoomType::Private));
    rooms.push(("storage".into(), RoomType::Private));
    rooms.push(("server-room".into(), RoomType::Private));
    let offices: Vec<String> = (1..=36).map(|i| format!("office-{i}")).collect();
    Blueprint {
        name: "Office",
        rooms,
        rooms_per_ap: 8,
        overlap: 2,
        profiles: vec![
            ProfileSpec {
                name: "Janitorial",
                count: 4,
                predictability: 0.35,
                anchor_rooms: vec!["janitor-closet".into()],
                weekday_presence: 0.95,
                weekend_presence: 0.4,
                event_prob: 0.05,
                arrival_hour: 6,
                stay_hours: 8,
            },
            ProfileSpec {
                name: "Visitors",
                count: 14,
                predictability: 0.2,
                anchor_rooms: Vec::new(),
                weekday_presence: 0.3,
                weekend_presence: 0.02,
                event_prob: 0.4,
                arrival_hour: 10,
                stay_hours: 3,
            },
            ProfileSpec {
                name: "Manager",
                count: 4,
                predictability: 0.72,
                anchor_rooms: offices[..4].to_vec(),
                weekday_presence: 0.9,
                weekend_presence: 0.1,
                event_prob: 0.7,
                arrival_hour: 9,
                stay_hours: 9,
            },
            ProfileSpec {
                name: "Employees",
                count: 24,
                predictability: 0.85,
                anchor_rooms: offices[4..].to_vec(),
                weekday_presence: 0.92,
                weekend_presence: 0.05,
                event_prob: 0.5,
                arrival_hour: 9,
                stay_hours: 8,
            },
            ProfileSpec {
                name: "Receptionist",
                count: 2,
                predictability: 0.93,
                anchor_rooms: vec!["reception".into()],
                weekday_presence: 0.98,
                weekend_presence: 0.0,
                event_prob: 0.1,
                arrival_hour: 8,
                stay_hours: 9,
            },
        ],
        events: vec![
            EventSpec {
                name: "standup",
                room: "meeting-1".into(),
                start_hour: 9,
                duration_minutes: 30,
                capacity: 12,
                profiles: vec!["Employees", "Manager"],
                daily: false,
            },
            EventSpec {
                name: "project-sync",
                room: "meeting-2".into(),
                start_hour: 14,
                duration_minutes: 60,
                capacity: 10,
                profiles: vec!["Employees", "Manager", "Visitors"],
                daily: false,
            },
            EventSpec {
                name: "lunch",
                room: "kitchen".into(),
                start_hour: 12,
                duration_minutes: 45,
                capacity: 30,
                profiles: vec![],
                daily: true,
            },
        ],
    }
}

fn university_blueprint() -> Blueprint {
    let mut rooms = Vec::new();
    rooms.extend(room_names("classroom", 10, RoomType::Public));
    rooms.extend(room_names("lab", 8, RoomType::Private));
    rooms.extend(room_names("faculty-office", 12, RoomType::Private));
    rooms.extend(room_names("grad-office", 10, RoomType::Private));
    rooms.extend(room_names("staff-office", 4, RoomType::Private));
    rooms.push(("library".into(), RoomType::Public));
    rooms.push(("student-lounge".into(), RoomType::Public));
    rooms.push(("cafeteria".into(), RoomType::Public));
    rooms.push(("conference-hall".into(), RoomType::Public));
    let faculty: Vec<String> = (1..=12).map(|i| format!("faculty-office-{i}")).collect();
    let grad: Vec<String> = (1..=10).map(|i| format!("grad-office-{i}")).collect();
    let staff: Vec<String> = (1..=4).map(|i| format!("staff-office-{i}")).collect();
    let labs: Vec<String> = (1..=8).map(|i| format!("lab-{i}")).collect();
    Blueprint {
        name: "University",
        rooms,
        rooms_per_ap: 9,
        overlap: 2,
        profiles: vec![
            ProfileSpec {
                name: "Visitors",
                count: 10,
                predictability: 0.18,
                anchor_rooms: Vec::new(),
                weekday_presence: 0.25,
                weekend_presence: 0.05,
                event_prob: 0.3,
                arrival_hour: 11,
                stay_hours: 3,
            },
            ProfileSpec {
                name: "Undergraduate",
                count: 40,
                predictability: 0.5,
                anchor_rooms: vec!["library".into(), "student-lounge".into()],
                weekday_presence: 0.8,
                weekend_presence: 0.15,
                event_prob: 0.85,
                arrival_hour: 10,
                stay_hours: 6,
            },
            ProfileSpec {
                name: "Professor",
                count: 10,
                predictability: 0.75,
                anchor_rooms: faculty,
                weekday_presence: 0.85,
                weekend_presence: 0.1,
                event_prob: 0.7,
                arrival_hour: 9,
                stay_hours: 8,
            },
            ProfileSpec {
                name: "Graduate",
                count: 20,
                predictability: 0.8,
                anchor_rooms: [grad, labs].concat(),
                weekday_presence: 0.9,
                weekend_presence: 0.3,
                event_prob: 0.5,
                arrival_hour: 10,
                stay_hours: 9,
            },
            ProfileSpec {
                name: "Staff",
                count: 6,
                predictability: 0.92,
                anchor_rooms: staff,
                weekday_presence: 0.97,
                weekend_presence: 0.0,
                event_prob: 0.2,
                arrival_hour: 8,
                stay_hours: 8,
            },
        ],
        events: vec![
            EventSpec {
                name: "morning-lecture",
                room: "classroom-1".into(),
                start_hour: 9,
                duration_minutes: 80,
                capacity: 35,
                profiles: vec!["Undergraduate", "Professor"],
                daily: false,
            },
            EventSpec {
                name: "midday-lecture",
                room: "classroom-2".into(),
                start_hour: 11,
                duration_minutes: 80,
                capacity: 35,
                profiles: vec!["Undergraduate", "Graduate", "Professor"],
                daily: false,
            },
            EventSpec {
                name: "afternoon-lecture",
                room: "classroom-3".into(),
                start_hour: 14,
                duration_minutes: 80,
                capacity: 35,
                profiles: vec!["Undergraduate", "Professor"],
                daily: false,
            },
            EventSpec {
                name: "seminar",
                room: "conference-hall".into(),
                start_hour: 16,
                duration_minutes: 60,
                capacity: 40,
                profiles: vec!["Graduate", "Professor", "Staff"],
                daily: false,
            },
            EventSpec {
                name: "lunch",
                room: "cafeteria".into(),
                start_hour: 12,
                duration_minutes: 60,
                capacity: 80,
                profiles: vec![],
                daily: true,
            },
        ],
    }
}

fn mall_blueprint() -> Blueprint {
    let mut rooms = Vec::new();
    rooms.extend(room_names("store", 24, RoomType::Public));
    rooms.extend(room_names("restaurant", 6, RoomType::Public));
    rooms.push(("food-court".into(), RoomType::Public));
    rooms.push(("atrium".into(), RoomType::Public));
    rooms.extend(room_names("staff-room", 8, RoomType::Private));
    rooms.extend(room_names("storage", 4, RoomType::Private));
    rooms.push(("security-office".into(), RoomType::Private));
    let stores: Vec<String> = (1..=24).map(|i| format!("store-{i}")).collect();
    let restaurants: Vec<String> = (1..=6).map(|i| format!("restaurant-{i}")).collect();
    let staff_rooms: Vec<String> = (1..=8).map(|i| format!("staff-room-{i}")).collect();
    Blueprint {
        name: "Mall",
        rooms,
        rooms_per_ap: 8,
        overlap: 2,
        profiles: vec![
            ProfileSpec {
                name: "Random Customer",
                count: 40,
                predictability: 0.12,
                anchor_rooms: Vec::new(),
                weekday_presence: 0.25,
                weekend_presence: 0.5,
                event_prob: 0.5,
                arrival_hour: 13,
                stay_hours: 2,
            },
            ProfileSpec {
                name: "Regular Customer",
                count: 20,
                predictability: 0.42,
                anchor_rooms: vec!["food-court".into(), "atrium".into()],
                weekday_presence: 0.45,
                weekend_presence: 0.7,
                event_prob: 0.6,
                arrival_hour: 12,
                stay_hours: 3,
            },
            ProfileSpec {
                name: "Staff",
                count: 10,
                predictability: 0.55,
                anchor_rooms: staff_rooms,
                weekday_presence: 0.9,
                weekend_presence: 0.8,
                event_prob: 0.2,
                arrival_hour: 9,
                stay_hours: 8,
            },
            ProfileSpec {
                name: "Salesman(Res)",
                count: 8,
                predictability: 0.7,
                anchor_rooms: restaurants,
                weekday_presence: 0.9,
                weekend_presence: 0.85,
                event_prob: 0.15,
                arrival_hour: 10,
                stay_hours: 9,
            },
            ProfileSpec {
                name: "Salesman(Shops)",
                count: 8,
                predictability: 0.75,
                anchor_rooms: stores,
                weekday_presence: 0.9,
                weekend_presence: 0.85,
                event_prob: 0.15,
                arrival_hour: 10,
                stay_hours: 9,
            },
        ],
        events: vec![
            EventSpec {
                name: "lunch-rush",
                room: "food-court".into(),
                start_hour: 12,
                duration_minutes: 90,
                capacity: 120,
                profiles: vec![],
                daily: true,
            },
            EventSpec {
                name: "dinner-rush",
                room: "restaurant-1".into(),
                start_hour: 18,
                duration_minutes: 90,
                capacity: 40,
                profiles: vec!["Random Customer", "Regular Customer"],
                daily: true,
            },
            EventSpec {
                name: "shift-briefing",
                room: "staff-room-1".into(),
                start_hour: 9,
                duration_minutes: 20,
                capacity: 20,
                profiles: vec!["Staff", "Salesman(Res)", "Salesman(Shops)"],
                daily: true,
            },
        ],
    }
}

fn airport_blueprint() -> Blueprint {
    let mut rooms = Vec::new();
    rooms.extend(room_names("gate", 8, RoomType::Public));
    rooms.push(("security-checkpoint".into(), RoomType::Public));
    rooms.push(("baggage-claim".into(), RoomType::Public));
    rooms.extend(room_names("shop", 8, RoomType::Public));
    rooms.extend(room_names("restaurant", 5, RoomType::Public));
    rooms.extend(room_names("airline-counter", 6, RoomType::Private));
    rooms.extend(room_names("staff-area", 6, RoomType::Private));
    rooms.push(("tsa-office".into(), RoomType::Private));
    let shops: Vec<String> = (1..=8).map(|i| format!("shop-{i}")).collect();
    let restaurants: Vec<String> = (1..=5).map(|i| format!("restaurant-{i}")).collect();
    let counters: Vec<String> = (1..=6).map(|i| format!("airline-counter-{i}")).collect();
    Blueprint {
        name: "Airport",
        rooms,
        rooms_per_ap: 7,
        overlap: 2,
        profiles: vec![
            ProfileSpec {
                name: "Passenger",
                count: 60,
                predictability: 0.15,
                anchor_rooms: Vec::new(),
                weekday_presence: 0.3,
                weekend_presence: 0.3,
                event_prob: 0.9,
                arrival_hour: 11,
                stay_hours: 3,
            },
            ProfileSpec {
                name: "TSA",
                count: 8,
                predictability: 0.45,
                anchor_rooms: vec!["security-checkpoint".into(), "tsa-office".into()],
                weekday_presence: 0.95,
                weekend_presence: 0.9,
                event_prob: 0.8,
                arrival_hour: 6,
                stay_hours: 9,
            },
            ProfileSpec {
                name: "Airline-Represent",
                count: 10,
                predictability: 0.62,
                anchor_rooms: counters,
                weekday_presence: 0.92,
                weekend_presence: 0.85,
                event_prob: 0.6,
                arrival_hour: 7,
                stay_hours: 9,
            },
            ProfileSpec {
                name: "Store-Staff",
                count: 8,
                predictability: 0.8,
                anchor_rooms: shops,
                weekday_presence: 0.92,
                weekend_presence: 0.85,
                event_prob: 0.1,
                arrival_hour: 8,
                stay_hours: 9,
            },
            ProfileSpec {
                name: "Res-Staff",
                count: 8,
                predictability: 0.85,
                anchor_rooms: restaurants,
                weekday_presence: 0.92,
                weekend_presence: 0.85,
                event_prob: 0.1,
                arrival_hour: 8,
                stay_hours: 9,
            },
        ],
        events: vec![
            EventSpec {
                name: "security-check",
                room: "security-checkpoint".into(),
                start_hour: 10,
                duration_minutes: 30,
                capacity: 60,
                profiles: vec!["Passenger", "TSA"],
                daily: true,
            },
            EventSpec {
                name: "morning-boarding",
                room: "gate-1".into(),
                start_hour: 11,
                duration_minutes: 45,
                capacity: 50,
                profiles: vec!["Passenger", "Airline-Represent"],
                daily: true,
            },
            EventSpec {
                name: "afternoon-boarding",
                room: "gate-4".into(),
                start_hour: 15,
                duration_minutes: 45,
                capacity: 50,
                profiles: vec!["Passenger", "Airline-Represent"],
                daily: true,
            },
            EventSpec {
                name: "dining",
                room: "restaurant-1".into(),
                start_hour: 12,
                duration_minutes: 60,
                capacity: 40,
                profiles: vec!["Passenger", "Res-Staff"],
                daily: true,
            },
        ],
    }
}

fn blueprint_for(kind: ScenarioKind) -> Blueprint {
    match kind {
        ScenarioKind::Office => office_blueprint(),
        ScenarioKind::University => university_blueprint(),
        ScenarioKind::Mall => mall_blueprint(),
        ScenarioKind::Airport => airport_blueprint(),
    }
}

// ---------------------------------------------------------------------------
// Realization
// ---------------------------------------------------------------------------

/// Builds the [`World`] of a scenario configuration.
pub fn build_world(config: &ScenarioConfig) -> World {
    let blueprint = blueprint_for(config.kind);

    // Space: chunk the room list into overlapping AP coverage areas.
    let mut builder = SpaceBuilder::new(blueprint.name);
    let names: Vec<&str> = blueprint.rooms.iter().map(|(n, _)| n.as_str()).collect();
    let step = blueprint
        .rooms_per_ap
        .saturating_sub(blueprint.overlap)
        .max(1);
    let mut ap_index = 0usize;
    let mut start = 0usize;
    while start < names.len() {
        let end = (start + blueprint.rooms_per_ap).min(names.len());
        builder = builder.add_access_point(&format!("wap{ap_index}"), &names[start..end]);
        ap_index += 1;
        if end == names.len() {
            break;
        }
        start += step;
    }
    for (name, room_type) in &blueprint.rooms {
        builder = builder.room_type(name, *room_type);
    }

    // People: instantiate every profile, registering anchored people as room owners.
    struct Pending {
        mac: String,
        profile: String,
        anchor: Option<String>,
        behaviour: Behaviour,
        monitored: bool,
    }
    let mut pending: Vec<Pending> = Vec::new();
    for spec in &blueprint.profiles {
        let count = ((spec.count as f64 * config.scale).round() as usize).max(1);
        let monitored_count = (count / 3).clamp(1, 5);
        for i in 0..count {
            let mac = format!("{}-{}-{:03}", slug(blueprint.name), slug(spec.name), i);
            let anchor = if spec.anchor_rooms.is_empty() {
                None
            } else {
                Some(spec.anchor_rooms[i % spec.anchor_rooms.len()].clone())
            };
            if let Some(room) = &anchor {
                builder = builder.room_owner(room, &mac);
            }
            let behaviour = Behaviour {
                anchor_prob: spec.predictability.clamp(0.05, 0.98),
                event_prob: spec.event_prob,
                weekday_presence: spec.weekday_presence,
                weekend_presence: spec.weekend_presence,
                arrival_mean: clock::hours(spec.arrival_hour),
                stay_mean: clock::hours(spec.stay_hours),
                ..Behaviour::default()
            };
            pending.push(Pending {
                mac,
                profile: spec.name.to_string(),
                anchor,
                behaviour,
                monitored: i < monitored_count,
            });
        }
    }

    let space = builder
        .build()
        .expect("scenario blueprints are valid spaces");

    let people: Vec<Person> = pending
        .into_iter()
        .map(|p| {
            let mut person = Person::new(p.mac, p.profile).with_behaviour(p.behaviour);
            if let Some(room) = p.anchor {
                person = person.with_anchor(space.room_id(&room).expect("anchor room exists"));
            }
            if p.monitored {
                person = person.monitored();
            }
            person
        })
        .collect();

    // Schedule: resolve room names to ids.
    let schedule: Vec<ScheduledEvent> = blueprint
        .events
        .iter()
        .map(|spec| {
            let room = space.room_id(&spec.room).expect("event room exists");
            let start: Timestamp = clock::hours(spec.start_hour);
            let duration: Timestamp = clock::minutes(spec.duration_minutes);
            let event = if spec.daily {
                ScheduledEvent::daily(spec.name, room, start, duration)
            } else {
                ScheduledEvent::weekdays(spec.name, room, start, duration)
            };
            event
                .with_capacity(spec.capacity)
                .for_profiles(&spec.profiles)
        })
        .collect();

    World {
        space,
        people,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_and_profiles_match_table4() {
        assert_eq!(ScenarioKind::ALL.len(), 4);
        assert_eq!(ScenarioKind::Office.name(), "Office");
        assert_eq!(ScenarioKind::Airport.to_string(), "Airport");
        for kind in ScenarioKind::ALL {
            assert_eq!(kind.profiles().len(), 5, "{kind} must list 5 profiles");
        }
        assert!(ScenarioKind::Airport.profiles().contains(&"TSA"));
        assert!(ScenarioKind::Mall.profiles().contains(&"Salesman(Res)"));
        assert!(ScenarioKind::University.profiles().contains(&"Professor"));
        assert!(ScenarioKind::Office.profiles().contains(&"Receptionist"));
    }

    #[test]
    fn config_builders_clamp_inputs() {
        let config = ScenarioConfig::new(ScenarioKind::Office)
            .with_days(0)
            .with_scale(0.0)
            .with_seed(9);
        assert_eq!(config.days, 1);
        assert!(config.scale >= 0.05);
        assert_eq!(config.seed, 9);
        assert_eq!(ScenarioConfig::new(ScenarioKind::Mall).days, 15);
    }

    #[test]
    fn every_scenario_realizes_into_a_consistent_world() {
        for kind in ScenarioKind::ALL {
            let config = ScenarioConfig::new(kind).with_scale(0.3);
            let world = build_world(&config);
            assert!(world.space.num_access_points() >= 4, "{kind}");
            assert!(world.space.num_rooms() >= 20, "{kind}");
            assert!(!world.people.is_empty(), "{kind}");
            assert!(!world.schedule.is_empty(), "{kind}");
            // Every profile of Table 4 is present.
            for profile in kind.profiles() {
                assert!(
                    world.people.iter().any(|p| p.profile == profile),
                    "{kind} is missing profile {profile}"
                );
            }
            // Every anchored person's anchor room exists in the space.
            for person in &world.people {
                if let Some(room) = person.anchor_room {
                    assert!(room.index() < world.space.num_rooms());
                    // The space metadata records the preference (used by Baseline2 and
                    // the room-affinity weights).
                    assert!(
                        world.space.preferred_rooms(&person.mac).contains(&room),
                        "{kind}: {} anchor not registered",
                        person.mac
                    );
                }
            }
            // Some people are monitored for ground-truth evaluation.
            assert!(world.people.iter().any(|p| p.monitored), "{kind}");
            // Regions overlap somewhere (rooms shared between adjacent APs).
            let overlapping = (0..world.space.num_rooms())
                .filter(|&i| {
                    world
                        .space
                        .regions_of_room(locater_space::RoomId::new(i as u32))
                        .len()
                        > 1
                })
                .count();
            assert!(overlapping > 0, "{kind} has no overlapping coverage");
        }
    }

    #[test]
    fn scale_changes_population_size() {
        let small = build_world(&ScenarioConfig::new(ScenarioKind::University).with_scale(0.2));
        let full = build_world(&ScenarioConfig::new(ScenarioKind::University));
        assert!(small.people.len() < full.people.len());
        assert!(full.people.len() >= 80);
    }

    #[test]
    fn profile_predictability_ordering_is_respected() {
        // Within each scenario the blueprint's profile predictability increases along
        // Table 4's column order (visitors/passengers lowest, dedicated staff highest).
        for kind in ScenarioKind::ALL {
            let world = build_world(&ScenarioConfig::new(kind).with_scale(0.3));
            let mean_anchor_prob = |profile: &str| {
                let probs: Vec<f64> = world
                    .people
                    .iter()
                    .filter(|p| p.profile == profile)
                    .map(|p| p.behaviour.anchor_prob)
                    .collect();
                probs.iter().sum::<f64>() / probs.len() as f64
            };
            let profiles = kind.profiles();
            let first = mean_anchor_prob(profiles[0]);
            let last = mean_anchor_prob(profiles[profiles.len() - 1]);
            assert!(
                last > first + 0.2,
                "{kind}: least predictable {first} vs most predictable {last}"
            );
        }
    }
}
