//! Connectivity-event emission: turning ground-truth trajectories into the sporadic
//! association log LOCATER has to clean.
//!
//! The paper (§2, §6.3) models association events as stochastic: a device in the
//! coverage area of an AP produces an event only occasionally (first association, OS
//! probes, state changes), so the log contains far fewer events than there are
//! "device was here" instants — and gaps in between. The emitter reproduces that:
//! while a person stays in a room, their device gets an *emission opportunity* every
//! `emit_period` seconds (with jitter) and each opportunity produces an event with
//! probability `emit_prob`; the event is attributed to one of the APs covering the
//! room (usually a stable "primary" AP, occasionally another covering AP, which is
//! what makes regions effectively overlap in the data).

use crate::ground_truth::Stay;
use crate::person::Person;
use crate::rng::chance;
use locater_space::Space;
use locater_store::RawEvent;
use rand::Rng;

/// Probability that an emission is attributed to the room's primary covering AP (as
/// opposed to another AP that also covers the room).
const PRIMARY_AP_PROB: f64 = 0.85;

/// Probability that the very first opportunity of a stay emits an event regardless of
/// `emit_prob` (devices associate when they enter a new coverage area).
const FIRST_EVENT_PROB: f64 = 0.9;

/// Emits the connectivity events of one person for one list of stays.
///
/// Rooms not covered by any AP produce no events (the paper notes APs may not cover
/// every room, which bounds what any log-based method can see).
pub fn emit_events(
    rng: &mut impl Rng,
    person: &Person,
    stays: &[Stay],
    space: &Space,
    out: &mut Vec<RawEvent>,
) {
    let period = person.behaviour.emit_period.max(30);
    for stay in stays {
        let regions = space.regions_of_room(stay.room);
        if regions.is_empty() {
            continue;
        }
        // A stable primary AP per (person, room): derived from the room id so the same
        // person in the same room keeps connecting to the same AP across days.
        let primary = regions[stay.room.index() % regions.len()];
        let mut t = stay.interval.start + rng.gen_range(0..=period / 2);
        let mut first = true;
        while t < stay.interval.end {
            let fires = if first {
                chance(rng, FIRST_EVENT_PROB)
            } else {
                chance(rng, person.behaviour.emit_prob)
            };
            if fires {
                let region = if regions.len() == 1 || chance(rng, PRIMARY_AP_PROB) {
                    primary
                } else {
                    regions[rng.gen_range(0..regions.len())]
                };
                let ap_name = space.access_point(region.access_point()).name.clone();
                out.push(RawEvent::new(person.mac.clone(), t, ap_name));
            }
            first = false;
            // Jittered period: 75%–125% of the nominal spacing.
            let jitter = rng.gen_range(-(period / 4)..=period / 4);
            t += (period + jitter).max(30);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::Behaviour;
    use locater_events::clock;
    use locater_space::SpaceBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> Space {
        SpaceBuilder::new("emit")
            .add_access_point("wap0", &["office", "lounge"])
            .add_access_point("wap1", &["lounge", "lab"])
            .add_access_point("wap2", &["storage"])
            .build()
            .unwrap()
    }

    fn person(emit_prob: f64) -> Person {
        Person::new("dev", "Employees").with_behaviour(Behaviour {
            emit_period: clock::minutes(5),
            emit_prob,
            ..Behaviour::default()
        })
    }

    #[test]
    fn events_fall_within_their_stay_and_on_covering_aps() {
        let space = space();
        let office = space.room_id("office").unwrap();
        let stays = vec![Stay::new(office, clock::hours(9), clock::hours(11))];
        let mut rng = StdRng::seed_from_u64(1);
        let mut events = Vec::new();
        emit_events(&mut rng, &person(0.8), &stays, &space, &mut events);
        assert!(!events.is_empty());
        for event in &events {
            assert!(event.t >= clock::hours(9) && event.t < clock::hours(11));
            // The office is only covered by wap0.
            assert_eq!(event.ap, "wap0");
            assert_eq!(event.mac, "dev");
        }
        // Roughly one opportunity per 5 minutes over 2 hours, 80% firing.
        assert!(events.len() >= 10 && events.len() <= 30, "{}", events.len());
    }

    #[test]
    fn overlap_rooms_occasionally_connect_to_the_secondary_ap() {
        let space = space();
        let lounge = space.room_id("lounge").unwrap();
        let stays = vec![Stay::new(lounge, 0, clock::hours(40))];
        let mut rng = StdRng::seed_from_u64(2);
        let mut events = Vec::new();
        emit_events(&mut rng, &person(0.9), &stays, &space, &mut events);
        let aps: std::collections::HashSet<&str> = events.iter().map(|e| e.ap.as_str()).collect();
        assert!(
            aps.len() >= 2,
            "expected both covering APs to appear: {aps:?}"
        );
    }

    #[test]
    fn sparser_emission_probability_means_fewer_events() {
        let space = space();
        let office = space.room_id("office").unwrap();
        let stays = vec![Stay::new(office, 0, clock::hours(8))];
        let mut rng = StdRng::seed_from_u64(3);
        let mut dense = Vec::new();
        emit_events(&mut rng, &person(0.95), &stays, &space, &mut dense);
        let mut sparse = Vec::new();
        emit_events(&mut rng, &person(0.2), &stays, &space, &mut sparse);
        assert!(
            dense.len() > sparse.len() * 2,
            "{} vs {}",
            dense.len(),
            sparse.len()
        );
        assert!(!sparse.is_empty());
    }

    #[test]
    fn uncovered_rooms_emit_nothing() {
        let space = SpaceBuilder::new("partial")
            .add_access_point("wap0", &["covered"])
            .add_room("dark", locater_space::RoomType::Private)
            .build()
            .unwrap();
        let dark = space.room_id("dark").unwrap();
        let stays = vec![Stay::new(dark, 0, clock::hours(4))];
        let mut rng = StdRng::seed_from_u64(4);
        let mut events = Vec::new();
        emit_events(&mut rng, &person(0.9), &stays, &space, &mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn emission_is_deterministic_per_seed() {
        let space = space();
        let office = space.room_id("office").unwrap();
        let stays = vec![Stay::new(office, 0, clock::hours(3))];
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut events = Vec::new();
            emit_events(&mut rng, &person(0.7), &stays, &space, &mut events);
            events
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }
}
