//! Small random-sampling helpers shared by the generators.
//!
//! Only `rand` is used (no `rand_distr`); approximately normal samples are produced
//! with an Irwin–Hall sum of uniforms, which is more than adequate for arrival-time
//! and stay-length jitter.

use locater_events::clock::Timestamp;
use rand::Rng;

/// An approximately normal sample with the given mean and standard deviation
/// (Irwin–Hall with 12 uniforms, variance 1 before scaling).
pub fn approx_normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    mean + (sum - 6.0) * std
}

/// An approximately normal timestamp sample, clamped to `[min, max]`.
pub fn normal_timestamp(
    rng: &mut impl Rng,
    mean: Timestamp,
    std: Timestamp,
    min: Timestamp,
    max: Timestamp,
) -> Timestamp {
    let sample = approx_normal(rng, mean as f64, std as f64).round() as Timestamp;
    sample.clamp(min, max)
}

/// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
pub fn chance(rng: &mut impl Rng, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    rng.gen::<f64>() < p
}

/// A uniform duration in `[lo, hi]` seconds.
pub fn duration_between(rng: &mut impl Rng, lo: Timestamp, hi: Timestamp) -> Timestamp {
    if hi <= lo {
        return lo.max(1);
    }
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn approx_normal_has_roughly_the_requested_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..5_000)
            .map(|_| approx_normal(&mut rng, 10.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn normal_timestamp_is_clamped() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let t = normal_timestamp(&mut rng, 100, 1_000, 50, 150);
            assert!((50..=150).contains(&t));
        }
    }

    #[test]
    fn chance_handles_degenerate_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!chance(&mut rng, 0.0));
        assert!(!chance(&mut rng, -1.0));
        assert!(chance(&mut rng, 1.0));
        assert!(chance(&mut rng, 2.0));
        let hits = (0..2_000).filter(|_| chance(&mut rng, 0.25)).count();
        assert!((hits as f64 / 2_000.0 - 0.25).abs() < 0.05);
    }

    #[test]
    fn duration_between_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let d = duration_between(&mut rng, 60, 120);
            assert!((60..=120).contains(&d));
        }
        assert_eq!(duration_between(&mut rng, 100, 50), 100);
        assert_eq!(duration_between(&mut rng, 0, 0), 1);
    }
}
