//! # locater-sim
//!
//! A SmartBench-style scenario simulator (paper §6.3) and a DBH-like campus dataset
//! generator (paper §6.1) for the LOCATER reproduction.
//!
//! The paper's evaluation uses (a) six months of real WiFi association logs from UC
//! Irvine's Donald Bren Hall with ground truth collected for a monitored panel, and
//! (b) four synthetic environments — office, university, mall, airport — generated
//! with the SmartBench simulator. Neither artifact is redistributable, so this crate
//! rebuilds the generative model from the paper's description:
//!
//! * **People and profiles** ([`Person`], [`Behaviour`]) — each simulated person
//!   carries one device, has a profile (TSA staff, professor, employee, visitor, …),
//!   optionally a preferred *anchor room* (their office), and behavioural parameters
//!   controlling predictability, presence, arrival times and device chattiness.
//! * **Recurring events** ([`ScheduledEvent`]) — classes, meetings, boarding calls and
//!   lunch rushes with rooms, time windows, capacities and eligible profiles.
//! * **Trajectories** — per day and person, a time-sorted list of room [`Stay`]s
//!   (the ground truth), generated from the behaviour and the event schedule.
//! * **Connectivity emission** — trajectories are converted to sporadic
//!   `⟨mac, timestamp, ap⟩` events with device-specific periodicity, drop-outs and
//!   occasional attribution to a secondary covering AP.
//!
//! [`Simulator`] is the entry point:
//!
//! ```
//! use locater_sim::{CampusConfig, Simulator};
//!
//! let output = Simulator::new(7).run_campus(&CampusConfig::small().with_weeks(2));
//! assert!(!output.events.is_empty());
//! let store = output.build_store();
//! assert_eq!(store.num_events(), output.events.len());
//! // Ground truth answers "where was this device at time t?" for evaluation.
//! let monitored = output.monitored().next().unwrap();
//! let _room_or_outside = output.ground_truth.room_at(&monitored.mac, 3_600);
//! ```
//!
//! The four SmartBench scenarios come from [`ScenarioConfig`]; the large
//! `metro_campus` corpus (used by the snapshot and segment-pruning benches) is
//! an environment-sized campus:
//!
//! ```
//! use locater_sim::{CampusConfig, ScenarioConfig, ScenarioKind, Simulator};
//!
//! let office = Simulator::new(1).run_scenario(
//!     &ScenarioConfig::new(ScenarioKind::Office).with_days(2).with_scale(0.2),
//! );
//! assert!(office.people.iter().any(|p| p.profile == "Employees"));
//!
//! // `metro()` is the full-size configuration; `metro_from_env()` resizes it
//! // via LOCATER_METRO_SCALE / LOCATER_METRO_WEEKS for CI-sized runs.
//! let metro = CampusConfig::metro();
//! assert!(metro.access_points > CampusConfig::default().access_points);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campus;
mod connectivity;
mod ground_truth;
mod person;
mod rng;
pub mod scenario;
mod schedule;
mod trajectory;
pub mod workload;
mod world;

pub use campus::CampusConfig;
pub use ground_truth::{GroundTruth, Stay};
pub use person::{predictability_band, Behaviour, Person, PersonRecord, PREDICTABILITY_BANDS};
pub use scenario::{ScenarioConfig, ScenarioKind};
pub use schedule::{DayAttendance, ScheduledEvent};
pub use workload::{generated_workload, university_workload, QueryWorkload, WorkloadQuery};
pub use world::{simulate, SimOutput, World};

/// The simulator entry point: a thin, seedable facade over the scenario and campus
/// generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Simulator {
    seed: u64,
}

impl Simulator {
    /// Creates a simulator with a base seed. The seed is combined with the seed of
    /// the individual configuration so different runs stay reproducible.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates one of the four Table-4 scenarios.
    pub fn run_scenario(&self, config: &ScenarioConfig) -> SimOutput {
        let world = scenario::build_world(config);
        simulate(&world, config.days, config.seed ^ self.seed)
    }

    /// Generates the DBH-like campus dataset.
    pub fn run_campus(&self, config: &CampusConfig) -> SimOutput {
        let adjusted = CampusConfig {
            seed: config.seed ^ self.seed,
            ..*config
        };
        campus::generate(&adjusted)
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new(0x10CA7E12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_runs_scenarios_and_campus() {
        let simulator = Simulator::new(3);
        assert_eq!(simulator.seed(), 3);
        let office = simulator.run_scenario(
            &ScenarioConfig::new(ScenarioKind::Office)
                .with_days(3)
                .with_scale(0.2),
        );
        assert!(!office.events.is_empty());
        assert!(office.people.iter().any(|p| p.profile == "Employees"));

        let campus = simulator.run_campus(&CampusConfig::small().with_weeks(1));
        assert!(!campus.events.is_empty());
        assert!(campus.monitored().count() > 0);
    }

    #[test]
    fn different_simulator_seeds_change_the_data() {
        let config = ScenarioConfig::new(ScenarioKind::Office)
            .with_days(2)
            .with_scale(0.2);
        let a = Simulator::new(1).run_scenario(&config);
        let b = Simulator::new(2).run_scenario(&config);
        assert_ne!(a.events, b.events);
        let c = Simulator::new(1).run_scenario(&config);
        assert_eq!(a.events, c.events);
    }

    #[test]
    fn default_simulator_is_usable() {
        let campus = Simulator::default().run_campus(&CampusConfig::small().with_weeks(1));
        assert!(campus.events.len() > 100);
    }
}
