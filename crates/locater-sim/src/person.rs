//! People, their devices and their behavioural parameters.
//!
//! The paper's synthetic datasets (§6.3) are generated from *profiles*: types of
//! people (TSA staff, passengers, professors, …) whose members attend the events of
//! the space with different probabilities and who differ in how *predictable* their
//! behaviour is — the fraction of their in-building time they spend in one "preferred"
//! room. [`Behaviour`] captures those knobs for one simulated person, and
//! [`PersonRecord`] is what the simulator reports back about each person (including
//! the predictability band the paper's Tables 3 uses for grouping).

use locater_events::clock::{self, Timestamp};
use locater_space::RoomId;
use serde::{Deserialize, Serialize};

/// Behavioural parameters of one simulated person and of the device they carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Behaviour {
    /// Probability that a free time segment is spent in the person's anchor
    /// (preferred) room. This is the main predictability knob.
    pub anchor_prob: f64,
    /// Probability of attending a scheduled event that the person's profile is
    /// eligible for and that is about to start.
    pub event_prob: f64,
    /// Probability of briefly leaving the building during a free segment.
    pub exit_prob: f64,
    /// Probability of coming to the building at all on a weekday.
    pub weekday_presence: f64,
    /// Probability of coming to the building on a weekend day.
    pub weekend_presence: f64,
    /// Mean arrival time, seconds since midnight.
    pub arrival_mean: Timestamp,
    /// Standard deviation of the arrival time, seconds.
    pub arrival_std: Timestamp,
    /// Mean length of the daily stay, seconds.
    pub stay_mean: Timestamp,
    /// Standard deviation of the daily stay length, seconds.
    pub stay_std: Timestamp,
    /// Typical spacing between connectivity events of the person's device while it is
    /// inside the building, seconds.
    pub emit_period: Timestamp,
    /// Probability that a given emission opportunity actually produces a logged event
    /// (the sporadicity of association logs, §2).
    pub emit_prob: f64,
}

impl Default for Behaviour {
    fn default() -> Self {
        Self {
            anchor_prob: 0.6,
            event_prob: 0.5,
            exit_prob: 0.05,
            weekday_presence: 0.9,
            weekend_presence: 0.1,
            arrival_mean: clock::hours(9),
            arrival_std: clock::minutes(45),
            stay_mean: clock::hours(8),
            stay_std: clock::hours(1),
            emit_period: clock::minutes(8),
            emit_prob: 0.7,
        }
    }
}

impl Behaviour {
    /// A behaviour tuned so that roughly `target` of the person's in-building time is
    /// spent in their anchor room (used to populate the predictability bands of
    /// Table 3).
    pub fn with_predictability(target: f64) -> Self {
        Self {
            anchor_prob: target.clamp(0.05, 0.98),
            event_prob: 0.35,
            ..Self::default()
        }
    }
}

/// One simulated person together with the device they carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Person {
    /// The device identifier that will appear in the connectivity log.
    pub mac: String,
    /// Profile name ("Employees", "Passenger", "Graduate", …).
    pub profile: String,
    /// The person's preferred room (their office, desk, counter, …), if any.
    pub anchor_room: Option<RoomId>,
    /// Behavioural parameters.
    pub behaviour: Behaviour,
    /// Whether the person is part of the monitored ground-truth panel (the paper's
    /// diary participants / camera-identified individuals).
    pub monitored: bool,
}

impl Person {
    /// Creates a person with default behaviour.
    pub fn new(mac: impl Into<String>, profile: impl Into<String>) -> Self {
        Self {
            mac: mac.into(),
            profile: profile.into(),
            anchor_room: None,
            behaviour: Behaviour::default(),
            monitored: false,
        }
    }

    /// Sets the anchor (preferred) room.
    pub fn with_anchor(mut self, room: RoomId) -> Self {
        self.anchor_room = Some(room);
        self
    }

    /// Sets the behaviour.
    pub fn with_behaviour(mut self, behaviour: Behaviour) -> Self {
        self.behaviour = behaviour;
        self
    }

    /// Marks the person as part of the monitored ground-truth panel.
    pub fn monitored(mut self) -> Self {
        self.monitored = true;
        self
    }
}

/// The predictability bands the paper groups users into (§6.2).
pub const PREDICTABILITY_BANDS: [(&str, f64, f64); 5] = [
    ("<40", 0.0, 0.40),
    ("[40,55)", 0.40, 0.55),
    ("[55,70)", 0.55, 0.70),
    ("[70,85)", 0.70, 0.85),
    ("[85,100)", 0.85, 1.01),
];

/// The band label for a measured predictability value in `[0, 1]`.
pub fn predictability_band(predictability: f64) -> &'static str {
    for (label, lo, hi) in PREDICTABILITY_BANDS {
        if predictability >= lo && predictability < hi {
            return label;
        }
    }
    "[85,100)"
}

/// What the simulator reports about each simulated person.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonRecord {
    /// Device identifier in the connectivity log.
    pub mac: String,
    /// Profile name.
    pub profile: String,
    /// Anchor room, if any.
    pub anchor_room: Option<RoomId>,
    /// The `anchor_prob` the person was generated with.
    pub target_predictability: f64,
    /// Fraction of the person's simulated in-building time actually spent in the
    /// anchor room.
    pub measured_predictability: f64,
    /// Predictability band of the *measured* value.
    pub group: String,
    /// Whether the person belongs to the monitored ground-truth panel.
    pub monitored: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaviour_defaults_are_sane() {
        let b = Behaviour::default();
        assert!(b.anchor_prob > 0.0 && b.anchor_prob < 1.0);
        assert!(b.weekday_presence > b.weekend_presence);
        assert!(b.emit_period > 0);
        assert!(b.emit_prob > 0.0 && b.emit_prob <= 1.0);
        assert!(b.arrival_mean > 0 && b.stay_mean > 0);
    }

    #[test]
    fn predictability_knob_is_clamped() {
        assert!(Behaviour::with_predictability(1.5).anchor_prob <= 0.98);
        assert!(Behaviour::with_predictability(-0.3).anchor_prob >= 0.05);
        let b = Behaviour::with_predictability(0.77);
        assert!((b.anchor_prob - 0.77).abs() < 1e-9);
    }

    #[test]
    fn person_builder_chains() {
        let p = Person::new("aa:bb:cc:dd:ee:01", "Employees")
            .with_anchor(RoomId::new(3))
            .with_behaviour(Behaviour::with_predictability(0.9))
            .monitored();
        assert_eq!(p.mac, "aa:bb:cc:dd:ee:01");
        assert_eq!(p.profile, "Employees");
        assert_eq!(p.anchor_room, Some(RoomId::new(3)));
        assert!(p.monitored);
        assert!(p.behaviour.anchor_prob > 0.85);
    }

    #[test]
    fn bands_cover_the_unit_interval() {
        assert_eq!(predictability_band(0.1), "<40");
        assert_eq!(predictability_band(0.4), "[40,55)");
        assert_eq!(predictability_band(0.54), "[40,55)");
        assert_eq!(predictability_band(0.55), "[55,70)");
        assert_eq!(predictability_band(0.72), "[70,85)");
        assert_eq!(predictability_band(0.85), "[85,100)");
        assert_eq!(predictability_band(1.0), "[85,100)");
    }
}
