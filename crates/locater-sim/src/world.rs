//! The simulation world and the main generation loop.

use crate::connectivity::emit_events;
use crate::ground_truth::GroundTruth;
use crate::person::{predictability_band, Person, PersonRecord};
use crate::schedule::{DayAttendance, ScheduledEvent};
use crate::trajectory::generate_day;
use locater_events::Interval;
use locater_space::Space;
use locater_store::{EventStore, RawEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fully specified simulation world: the space, its people and its recurring
/// events. Scenario and campus builders produce a `World`; [`simulate`] turns it into
/// data.
#[derive(Debug, Clone)]
pub struct World {
    /// The building.
    pub space: Space,
    /// The simulated people (each carrying one device).
    pub people: Vec<Person>,
    /// The recurring events that drive movement.
    pub schedule: Vec<ScheduledEvent>,
}

/// Everything a simulation run produces: the space, the raw connectivity log, the
/// ground-truth trajectories and a record per simulated person.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutput {
    /// The building the data was generated for.
    pub space: Space,
    /// The raw connectivity events, time-sorted.
    pub events: Vec<RawEvent>,
    /// Ground-truth room occupancy per device.
    pub ground_truth: GroundTruth,
    /// One record per simulated person.
    pub people: Vec<PersonRecord>,
    /// Number of simulated days.
    pub days: i64,
}

impl SimOutput {
    /// Builds an [`EventStore`] from the generated events (ingests everything and
    /// re-estimates per-device validity periods from the data, as a deployment would).
    pub fn build_store(&self) -> EventStore {
        let mut store = EventStore::new(self.space.clone());
        store
            .ingest_batch(self.events.iter())
            .expect("simulator events are always ingestible");
        store.estimate_deltas();
        store
    }

    /// The monitored (ground-truth panel) person records.
    pub fn monitored(&self) -> impl Iterator<Item = &PersonRecord> {
        self.people.iter().filter(|p| p.monitored)
    }

    /// Person records grouped by predictability band.
    pub fn records_by_group(&self) -> BTreeMap<String, Vec<&PersonRecord>> {
        let mut groups: BTreeMap<String, Vec<&PersonRecord>> = BTreeMap::new();
        for record in &self.people {
            groups.entry(record.group.clone()).or_default().push(record);
        }
        groups
    }

    /// The record of one person, looked up by device identifier.
    pub fn person(&self, mac: &str) -> Option<&PersonRecord> {
        self.people.iter().find(|p| p.mac == mac)
    }

    /// The time span covered by the generated events, if any.
    pub fn span(&self) -> Option<Interval> {
        let first = self.events.first()?.t;
        let last = self.events.last()?.t;
        Some(Interval::new(first, last + 1))
    }
}

/// Runs the generation loop: for every day and every person, generate the day plan,
/// record it as ground truth and emit the connectivity events.
pub fn simulate(world: &World, days: i64, seed: u64) -> SimOutput {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut truth = GroundTruth::new();
    let mut events: Vec<RawEvent> = Vec::new();

    for day in 0..days.max(0) {
        let mut attendance = DayAttendance::new(world.schedule.len());
        for person in &world.people {
            let stays = generate_day(
                &mut rng,
                person,
                &world.space,
                &world.schedule,
                day,
                &mut attendance,
            );
            for stay in &stays {
                truth.record(&person.mac, *stay);
            }
            emit_events(&mut rng, person, &stays, &world.space, &mut events);
        }
    }
    events.sort_by(|a, b| a.t.cmp(&b.t).then_with(|| a.mac.cmp(&b.mac)));

    let people = world
        .people
        .iter()
        .map(|person| {
            let measured = person
                .anchor_room
                .map(|room| truth.room_fraction(&person.mac, room))
                .unwrap_or(0.0);
            PersonRecord {
                mac: person.mac.clone(),
                profile: person.profile.clone(),
                anchor_room: person.anchor_room,
                target_predictability: person.behaviour.anchor_prob,
                measured_predictability: measured,
                group: predictability_band(measured).to_string(),
                monitored: person.monitored,
            }
        })
        .collect();

    SimOutput {
        space: world.space.clone(),
        events,
        ground_truth: truth,
        people,
        days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::Behaviour;
    use locater_space::{RoomType, SpaceBuilder};

    fn tiny_world() -> World {
        let space = SpaceBuilder::new("tiny")
            .add_access_point("wap0", &["office-a", "office-b", "lounge"])
            .add_access_point("wap1", &["lounge", "lab"])
            .room_type("lounge", RoomType::Public)
            .room_owner("office-a", "alice")
            .room_owner("office-b", "bob")
            .build()
            .unwrap();
        let alice = Person::new("alice", "Employees")
            .with_anchor(space.room_id("office-a").unwrap())
            .with_behaviour(Behaviour::with_predictability(0.9))
            .monitored();
        let bob = Person::new("bob", "Employees")
            .with_anchor(space.room_id("office-b").unwrap())
            .with_behaviour(Behaviour::with_predictability(0.5));
        World {
            space,
            people: vec![alice, bob],
            schedule: Vec::new(),
        }
    }

    #[test]
    fn simulation_produces_consistent_output() {
        let world = tiny_world();
        let output = simulate(&world, 14, 42);
        assert_eq!(output.days, 14);
        assert_eq!(output.people.len(), 2);
        assert!(!output.events.is_empty());
        assert!(output.ground_truth.num_stays() > 0);
        // Events are sorted by time.
        for w in output.events.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        // Every event belongs to a simulated person.
        for event in &output.events {
            assert!(output.person(&event.mac).is_some());
        }
        // Spans exist and overlap.
        let span = output.span().unwrap();
        let truth_span = output.ground_truth.span().unwrap();
        assert!(span.overlaps(&truth_span));
    }

    #[test]
    fn predictable_people_measure_as_predictable() {
        let world = tiny_world();
        let output = simulate(&world, 28, 7);
        let alice = output.person("alice").unwrap();
        let bob = output.person("bob").unwrap();
        assert!(alice.measured_predictability > bob.measured_predictability);
        assert!(alice.measured_predictability > 0.6);
        assert!(alice.monitored);
        assert!(!bob.monitored);
        assert_eq!(output.monitored().count(), 1);
        assert!(!output.records_by_group().is_empty());
    }

    #[test]
    fn build_store_ingests_every_event() {
        let world = tiny_world();
        let output = simulate(&world, 7, 11);
        let store = output.build_store();
        assert_eq!(store.num_events(), output.events.len());
        assert_eq!(store.num_devices(), 2);
        assert!(store.space().num_access_points() == 2);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let world = tiny_world();
        let a = simulate(&world, 7, 123);
        let b = simulate(&world, 7, 123);
        let c = simulate(&world, 7, 124);
        assert_eq!(a.events, b.events);
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn zero_days_produces_empty_output() {
        let world = tiny_world();
        let output = simulate(&world, 0, 1);
        assert!(output.events.is_empty());
        assert_eq!(output.ground_truth.num_stays(), 0);
        assert!(output.span().is_none());
    }
}
