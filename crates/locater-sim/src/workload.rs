//! Query workload generators (paper §6.1 and §6.4).
//!
//! The evaluation uses two query sets:
//!
//! * the **university query set** — 5,008 queries about the individuals with ground
//!   truth (diary participants and camera-identified people), roughly the same number
//!   of queries per individual;
//! * the **generated query set** — 100k queries drawn uniformly over *all* devices in
//!   the dataset and the whole time span, used for the efficiency/scalability
//!   experiments.
//!
//! [`university_workload`] and [`generated_workload`] reproduce both against any
//! [`SimOutput`].

use crate::world::SimOutput;
use locater_events::clock::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One location query of a workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadQuery {
    /// Device identifier queried.
    pub mac: String,
    /// Query time.
    pub t: Timestamp,
}

/// A named list of queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// Workload name ("university", "generated", …).
    pub name: String,
    /// The queries, in execution order.
    pub queries: Vec<WorkloadQuery>,
}

impl QueryWorkload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Shuffles the execution order (the paper randomizes query order per run).
    pub fn shuffled(mut self, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates.
        for i in (1..self.queries.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.queries.swap(i, j);
        }
        self
    }
}

/// Builds the university-style query set: `per_person` queries for every *monitored*
/// person, a fraction of them (`inside_fraction`) at times the person was inside a
/// room per the ground truth, the rest drawn uniformly over the dataset span (mostly
/// nights/weekends, i.e. outside).
pub fn university_workload(output: &SimOutput, per_person: usize, seed: u64) -> QueryWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let inside_fraction = 0.7;
    let span = output.span();
    let mut queries = Vec::new();
    for record in output.monitored() {
        let stays = output.ground_truth.stays_of(&record.mac);
        for _ in 0..per_person {
            let inside_pick = !stays.is_empty() && rng.gen::<f64>() < inside_fraction;
            let t = if inside_pick {
                let stay = &stays[rng.gen_range(0..stays.len())];
                rng.gen_range(stay.interval.start..stay.interval.end)
            } else if let Some(span) = span {
                rng.gen_range(span.start..span.end)
            } else {
                0
            };
            queries.push(WorkloadQuery {
                mac: record.mac.clone(),
                t,
            });
        }
    }
    QueryWorkload {
        name: "university".to_string(),
        queries,
    }
}

/// Builds the generated query set: `n` queries over devices and times drawn uniformly
/// (devices uniformly over all simulated people, times uniformly over the span).
pub fn generated_workload(output: &SimOutput, n: usize, seed: u64) -> QueryWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let Some(span) = output.span() else {
        return QueryWorkload {
            name: "generated".to_string(),
            queries: Vec::new(),
        };
    };
    let people = &output.people;
    let queries = (0..n)
        .map(|_| WorkloadQuery {
            mac: people[rng.gen_range(0..people.len())].mac.clone(),
            t: rng.gen_range(span.start..span.end),
        })
        .collect();
    QueryWorkload {
        name: "generated".to_string(),
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campus::{generate, CampusConfig};

    fn output() -> SimOutput {
        generate(&CampusConfig::small().with_weeks(2))
    }

    #[test]
    fn university_workload_targets_monitored_people() {
        let output = output();
        let workload = university_workload(&output, 10, 3);
        assert_eq!(workload.name, "university");
        assert_eq!(
            workload.len(),
            output.monitored().count() * 10,
            "same number of queries per monitored individual"
        );
        let monitored: std::collections::HashSet<&str> =
            output.monitored().map(|r| r.mac.as_str()).collect();
        for query in &workload.queries {
            assert!(monitored.contains(query.mac.as_str()));
        }
        // A healthy share of queries lands inside ground-truth stays.
        let inside = workload
            .queries
            .iter()
            .filter(|q| output.ground_truth.is_inside(&q.mac, q.t))
            .count();
        assert!(inside as f64 / workload.len() as f64 > 0.4);
        assert!(!workload.is_empty());
    }

    #[test]
    fn generated_workload_spans_all_devices() {
        let output = output();
        let workload = generated_workload(&output, 500, 9);
        assert_eq!(workload.len(), 500);
        let span = output.span().unwrap();
        for query in &workload.queries {
            assert!(span.contains(query.t));
            assert!(output.person(&query.mac).is_some());
        }
        // More distinct devices than just the monitored panel.
        let distinct: std::collections::HashSet<&str> =
            workload.queries.iter().map(|q| q.mac.as_str()).collect();
        assert!(distinct.len() > output.monitored().count());
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let output = output();
        assert_eq!(
            university_workload(&output, 5, 42),
            university_workload(&output, 5, 42)
        );
        assert_ne!(
            generated_workload(&output, 50, 1),
            generated_workload(&output, 50, 2)
        );
    }

    #[test]
    fn shuffling_preserves_the_multiset_of_queries() {
        let output = output();
        let workload = generated_workload(&output, 100, 5);
        let shuffled = workload.clone().shuffled(11);
        assert_eq!(workload.len(), shuffled.len());
        let mut a: Vec<_> = workload.queries.clone();
        let mut b: Vec<_> = shuffled.queries.clone();
        a.sort_by(|x, y| x.mac.cmp(&y.mac).then(x.t.cmp(&y.t)));
        b.sort_by(|x, y| x.mac.cmp(&y.mac).then(x.t.cmp(&y.t)));
        assert_eq!(a, b);
        assert_ne!(workload.queries, shuffled.queries);
    }
}
