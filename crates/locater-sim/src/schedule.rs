//! Recurring spatio-temporal events (paper §6.3).
//!
//! The SmartBench-style generator drives people's movement with *events*: a class, a
//! meeting, a security check, a boarding call — each with a room, a recurring time
//! window, a capacity and the set of profiles that may attend. People select events
//! they can attend (in a timely manner) and attend them with their profile's
//! probability; capacity constraints are enforced per occurrence.

use locater_events::clock::{self, Timestamp};
use locater_space::RoomId;
use serde::{Deserialize, Serialize};

/// A recurring event hosted in one room of the space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledEvent {
    /// Human-readable name ("CS101 lecture", "security check", "lunch rush").
    pub name: String,
    /// Room the event takes place in.
    pub room: RoomId,
    /// Days of the week the event occurs on (0 = Monday … 6 = Sunday).
    pub days: Vec<usize>,
    /// Start time, seconds since midnight.
    pub start: Timestamp,
    /// Duration in seconds.
    pub duration: Timestamp,
    /// Maximum number of attendees per occurrence (`usize::MAX` for unbounded).
    pub capacity: usize,
    /// Profiles whose members may attend; an empty list means everyone may.
    pub profiles: Vec<String>,
}

impl ScheduledEvent {
    /// Creates a daily (Monday–Friday) event.
    pub fn weekdays(
        name: impl Into<String>,
        room: RoomId,
        start: Timestamp,
        duration: Timestamp,
    ) -> Self {
        Self {
            name: name.into(),
            room,
            days: vec![0, 1, 2, 3, 4],
            start,
            duration,
            capacity: usize::MAX,
            profiles: Vec::new(),
        }
    }

    /// Creates an event occurring every day of the week.
    pub fn daily(
        name: impl Into<String>,
        room: RoomId,
        start: Timestamp,
        duration: Timestamp,
    ) -> Self {
        Self {
            days: vec![0, 1, 2, 3, 4, 5, 6],
            ..Self::weekdays(name, room, start, duration)
        }
    }

    /// Restricts the event to specific days of the week (0 = Monday).
    pub fn on_days(mut self, days: &[usize]) -> Self {
        self.days = days.iter().map(|&d| d % 7).collect();
        self
    }

    /// Sets the maximum number of attendees per occurrence.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Restricts attendance to the listed profiles.
    pub fn for_profiles(mut self, profiles: &[&str]) -> Self {
        self.profiles = profiles.iter().map(|p| p.to_string()).collect();
        self
    }

    /// `true` if the event occurs on the calendar day with index `day` (days count
    /// from the deployment epoch, which is a Monday).
    pub fn occurs_on(&self, day: i64) -> bool {
        let dow = clock::day_of_week(day * clock::SECONDS_PER_DAY).index();
        self.days.contains(&dow)
    }

    /// `true` if members of `profile` may attend.
    pub fn admits(&self, profile: &str) -> bool {
        self.profiles.is_empty() || self.profiles.iter().any(|p| p == profile)
    }

    /// Absolute start timestamp of the occurrence on calendar day `day`.
    pub fn start_on(&self, day: i64) -> Timestamp {
        day * clock::SECONDS_PER_DAY + self.start
    }

    /// Absolute end timestamp of the occurrence on calendar day `day`.
    pub fn end_on(&self, day: i64) -> Timestamp {
        self.start_on(day) + self.duration
    }
}

/// Per-day attendance bookkeeping used to enforce event capacities while day plans
/// are being generated.
#[derive(Debug, Clone, Default)]
pub struct DayAttendance {
    counts: Vec<usize>,
}

impl DayAttendance {
    /// Creates bookkeeping for `num_events` events.
    pub fn new(num_events: usize) -> Self {
        Self {
            counts: vec![0; num_events],
        }
    }

    /// `true` if event `index` still has room given its `capacity`.
    pub fn has_room(&self, index: usize, capacity: usize) -> bool {
        self.counts.get(index).is_some_and(|&c| c < capacity)
    }

    /// Records one attendee for event `index`.
    pub fn attend(&mut self, index: usize) {
        if let Some(count) = self.counts.get_mut(index) {
            *count += 1;
        }
    }

    /// Number of attendees recorded for event `index`.
    pub fn count(&self, index: usize) -> usize {
        self.counts.get(index).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekday_events_skip_weekends() {
        let event = ScheduledEvent::weekdays(
            "standup",
            RoomId::new(1),
            clock::hours(9),
            clock::minutes(30),
        );
        assert!(event.occurs_on(0)); // Monday
        assert!(event.occurs_on(4)); // Friday
        assert!(!event.occurs_on(5)); // Saturday
        assert!(!event.occurs_on(6)); // Sunday
        assert!(event.occurs_on(7)); // next Monday
    }

    #[test]
    fn daily_events_occur_every_day() {
        let event =
            ScheduledEvent::daily("lunch", RoomId::new(2), clock::hours(12), clock::hours(1));
        for day in 0..14 {
            assert!(event.occurs_on(day));
        }
    }

    #[test]
    fn custom_days_are_normalized() {
        let event =
            ScheduledEvent::weekdays("seminar", RoomId::new(0), 0, 3_600).on_days(&[1, 3, 8]);
        assert!(event.occurs_on(1)); // Tuesday
        assert!(event.occurs_on(3)); // Thursday
        assert!(!event.occurs_on(0));
        assert!(event.occurs_on(8)); // 8 % 7 = 1 → Tuesday of week 2
    }

    #[test]
    fn profile_admission() {
        let open = ScheduledEvent::weekdays("all-hands", RoomId::new(0), 0, 3_600);
        assert!(open.admits("Employees"));
        let restricted = open.clone().for_profiles(&["TSA", "Passenger"]);
        assert!(restricted.admits("TSA"));
        assert!(!restricted.admits("Employees"));
    }

    #[test]
    fn occurrence_timestamps() {
        let event =
            ScheduledEvent::weekdays("class", RoomId::new(0), clock::hours(10), clock::hours(2));
        assert_eq!(event.start_on(3), clock::at(3, 10, 0, 0));
        assert_eq!(event.end_on(3), clock::at(3, 12, 0, 0));
    }

    #[test]
    fn capacity_bookkeeping() {
        let mut attendance = DayAttendance::new(2);
        assert!(attendance.has_room(0, 2));
        attendance.attend(0);
        attendance.attend(0);
        assert!(!attendance.has_room(0, 2));
        assert!(attendance.has_room(1, 2));
        assert_eq!(attendance.count(0), 2);
        assert_eq!(attendance.count(1), 0);
        // Out-of-range indices are harmless.
        assert!(!attendance.has_room(9, 5));
        attendance.attend(9);
        assert_eq!(attendance.count(9), 0);
    }

    #[test]
    fn capacity_builder_enforces_minimum_of_one() {
        let event = ScheduledEvent::weekdays("tiny", RoomId::new(0), 0, 60).with_capacity(0);
        assert_eq!(event.capacity, 1);
    }
}
