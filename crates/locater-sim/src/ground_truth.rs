//! Ground-truth trajectories: which room each person was in, and when.
//!
//! In the paper this information comes from participant diaries and camera review
//! (§6.1); in the simulator it is a by-product of trajectory generation. The cleaning
//! experiments only need to answer "where was device `m` at time `t`?", which is what
//! [`GroundTruth::room_at`] provides.

use locater_events::clock::Timestamp;
use locater_events::Interval;
use locater_space::RoomId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One contiguous stay of a person in a room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stay {
    /// The room.
    pub room: RoomId,
    /// The stay interval `[start, end)`.
    pub interval: Interval,
}

impl Stay {
    /// Creates a stay.
    pub fn new(room: RoomId, start: Timestamp, end: Timestamp) -> Self {
        Self {
            room,
            interval: Interval::new(start, end),
        }
    }

    /// Length of the stay in seconds.
    pub fn duration(&self) -> Timestamp {
        self.interval.duration()
    }
}

/// Ground-truth room occupancy per device, time-sorted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    stays: BTreeMap<String, Vec<Stay>>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a stay for `mac`. Stays may be recorded out of order; they are kept
    /// sorted by start time.
    pub fn record(&mut self, mac: &str, stay: Stay) {
        if stay.interval.is_empty() {
            return;
        }
        let stays = self.stays.entry(mac.to_string()).or_default();
        match stays.last() {
            Some(last) if last.interval.start > stay.interval.start => {
                let pos = stays.partition_point(|s| s.interval.start <= stay.interval.start);
                stays.insert(pos, stay);
            }
            _ => stays.push(stay),
        }
    }

    /// All device identifiers with recorded stays.
    pub fn macs(&self) -> impl Iterator<Item = &str> {
        self.stays.keys().map(String::as_str)
    }

    /// Number of devices with recorded stays.
    pub fn num_devices(&self) -> usize {
        self.stays.len()
    }

    /// Total number of recorded stays across all devices.
    pub fn num_stays(&self) -> usize {
        self.stays.values().map(Vec::len).sum()
    }

    /// The stays of one device, time-sorted. Empty if the device is unknown.
    pub fn stays_of(&self, mac: &str) -> &[Stay] {
        self.stays.get(mac).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The room `mac` was in at time `t`, or `None` if the person was outside the
    /// building (or unknown).
    pub fn room_at(&self, mac: &str, t: Timestamp) -> Option<RoomId> {
        let stays = self.stays.get(mac)?;
        let pos = stays.partition_point(|s| s.interval.start <= t);
        let candidate = stays.get(pos.checked_sub(1)?)?;
        candidate.interval.contains(t).then_some(candidate.room)
    }

    /// `true` if `mac` was inside the building at time `t`.
    pub fn is_inside(&self, mac: &str, t: Timestamp) -> bool {
        self.room_at(mac, t).is_some()
    }

    /// Total number of seconds `mac` spent inside the building.
    pub fn inside_seconds(&self, mac: &str) -> Timestamp {
        self.stays_of(mac).iter().map(Stay::duration).sum()
    }

    /// Fraction of `mac`'s inside time spent in `room` (the predictability measure of
    /// §6.2). Returns 0 when the device has no recorded inside time.
    pub fn room_fraction(&self, mac: &str, room: RoomId) -> f64 {
        let total = self.inside_seconds(mac);
        if total == 0 {
            return 0.0;
        }
        let in_room: Timestamp = self
            .stays_of(mac)
            .iter()
            .filter(|s| s.room == room)
            .map(Stay::duration)
            .sum();
        in_room as f64 / total as f64
    }

    /// The overall time span covered by the recorded stays, if any.
    pub fn span(&self) -> Option<Interval> {
        let mut span: Option<Interval> = None;
        for stays in self.stays.values() {
            for stay in stays {
                span = Some(match span {
                    None => stay.interval,
                    Some(current) => current.hull(&stay.interval),
                });
            }
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut truth = GroundTruth::new();
        truth.record("d1", Stay::new(RoomId::new(1), 100, 200));
        truth.record("d1", Stay::new(RoomId::new(2), 300, 400));
        assert_eq!(truth.num_devices(), 1);
        assert_eq!(truth.num_stays(), 2);
        assert_eq!(truth.room_at("d1", 150), Some(RoomId::new(1)));
        assert_eq!(truth.room_at("d1", 350), Some(RoomId::new(2)));
        assert_eq!(truth.room_at("d1", 250), None); // between stays: outside
        assert_eq!(truth.room_at("d1", 50), None);
        assert_eq!(truth.room_at("d1", 400), None); // half-open end
        assert_eq!(truth.room_at("unknown", 150), None);
        assert!(truth.is_inside("d1", 150));
        assert!(!truth.is_inside("d1", 250));
    }

    #[test]
    fn out_of_order_recording_is_sorted() {
        let mut truth = GroundTruth::new();
        truth.record("d1", Stay::new(RoomId::new(2), 300, 400));
        truth.record("d1", Stay::new(RoomId::new(1), 100, 200));
        let stays = truth.stays_of("d1");
        assert_eq!(stays[0].interval.start, 100);
        assert_eq!(stays[1].interval.start, 300);
    }

    #[test]
    fn empty_stays_are_ignored() {
        let mut truth = GroundTruth::new();
        truth.record("d1", Stay::new(RoomId::new(1), 200, 200));
        truth.record("d1", Stay::new(RoomId::new(1), 300, 250));
        assert_eq!(truth.num_stays(), 0);
        assert_eq!(truth.inside_seconds("d1"), 0);
    }

    #[test]
    fn room_fraction_measures_predictability() {
        let mut truth = GroundTruth::new();
        truth.record("d1", Stay::new(RoomId::new(1), 0, 600));
        truth.record("d1", Stay::new(RoomId::new(2), 600, 800));
        assert_eq!(truth.inside_seconds("d1"), 800);
        assert!((truth.room_fraction("d1", RoomId::new(1)) - 0.75).abs() < 1e-9);
        assert!((truth.room_fraction("d1", RoomId::new(2)) - 0.25).abs() < 1e-9);
        assert_eq!(truth.room_fraction("d1", RoomId::new(9)), 0.0);
        assert_eq!(truth.room_fraction("unknown", RoomId::new(1)), 0.0);
    }

    #[test]
    fn span_covers_all_devices() {
        let mut truth = GroundTruth::new();
        assert_eq!(truth.span(), None);
        truth.record("d1", Stay::new(RoomId::new(1), 100, 200));
        truth.record("d2", Stay::new(RoomId::new(1), 500, 900));
        let span = truth.span().unwrap();
        assert_eq!(span.start, 100);
        assert_eq!(span.end, 900);
        let macs: Vec<&str> = truth.macs().collect();
        assert_eq!(macs, vec!["d1", "d2"]);
    }
}
