//! Property-based tests of the simulator's invariants: trajectories are well-formed,
//! connectivity events are consistent with trajectories and with the space, and
//! ground-truth bookkeeping matches the generated data.

use locater_sim::{CampusConfig, ScenarioConfig, ScenarioKind, Simulator};
use proptest::prelude::*;

fn arb_campus() -> impl Strategy<Value = CampusConfig> {
    (2usize..6, 4usize..8, 4usize..20, 1i64..3, any::<u64>()).prop_map(
        |(aps, rooms_per_ap, population, weeks, seed)| CampusConfig {
            access_points: aps,
            rooms_per_ap,
            overlap: 2,
            population,
            visitors: population / 4,
            monitored: (population / 3).max(1),
            weeks,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the campus configuration, the generated dataset is internally
    /// consistent: stays are disjoint and ordered per person, every connectivity event
    /// belongs to a simulated person and happens while that person is inside the
    /// building (within the AP coverage of the room they occupy), and predictability
    /// measurements stay within [0, 1].
    #[test]
    fn campus_generation_is_internally_consistent(config in arb_campus()) {
        let output = Simulator::new(1).run_campus(&config);
        let space = &output.space;

        // Ground-truth stays: ordered, disjoint, positive duration.
        for record in &output.people {
            let stays = output.ground_truth.stays_of(&record.mac);
            for window in stays.windows(2) {
                prop_assert!(window[0].interval.end <= window[1].interval.start);
            }
            for stay in stays {
                prop_assert!(stay.duration() > 0);
                prop_assert!(stay.room.index() < space.num_rooms());
            }
            prop_assert!((0.0..=1.0).contains(&record.measured_predictability));
        }

        // Connectivity events: known device, known AP, and the AP covers the room the
        // person is in at that instant.
        for event in output.events.iter().take(400) {
            let person = output.person(&event.mac);
            prop_assert!(person.is_some(), "event from unknown device {}", event.mac);
            let ap = space.ap_id(&event.ap);
            prop_assert!(ap.is_some(), "event on unknown AP {}", event.ap);
            let room = output.ground_truth.room_at(&event.mac, event.t);
            prop_assert!(room.is_some(), "event while outside the building");
            let room = room.unwrap();
            let region = ap.unwrap().region();
            prop_assert!(
                space.rooms_in_region(region).contains(&room),
                "event attributed to an AP that does not cover room {room}"
            );
        }

        // The store ingests everything the simulator produced.
        let store = output.build_store();
        prop_assert_eq!(store.num_events(), output.events.len());
        prop_assert!(store.num_devices() <= output.people.len());
    }

    /// Scenario generation produces every Table-4 profile and only rooms/APs of its
    /// own space, for every scenario kind and any seed.
    #[test]
    fn scenarios_generate_all_profiles(seed in any::<u64>(), kind_idx in 0usize..4) {
        let kind = ScenarioKind::ALL[kind_idx];
        let config = ScenarioConfig::new(kind).with_days(3).with_scale(0.15).with_seed(seed);
        let output = Simulator::new(3).run_scenario(&config);
        for profile in kind.profiles() {
            prop_assert!(
                output.people.iter().any(|p| p.profile == profile),
                "{kind} missing {profile}"
            );
        }
        for event in output.events.iter().take(200) {
            prop_assert!(output.space.ap_id(&event.ap).is_some());
        }
        // Workloads only reference simulated devices.
        let workload = locater_sim::university_workload(&output, 3, seed);
        for query in &workload.queries {
            prop_assert!(output.person(&query.mac).is_some());
        }
    }
}
