//! The request executor: one [`ServerState::execute`] path shared by every
//! protocol front end (TCP workers, the stdin REPL, one-shot CLI requests).
//!
//! The executor owns the [`ShardedLocaterService`] plus the serving-layer
//! counters ([`WireStats`] uptime, in-flight/queued gauges, rejection
//! counters), so `stats` reports the same numbers no matter which transport
//! asked.

use locater_core::system::{Location, ShardedLocaterService};
use locater_events::clock::Timestamp;
use locater_proto::{
    WireCompactionStats, WireError, WireRequest, WireResponse, WireStats, WireWalStats,
    PROTOCOL_VERSION,
};
use locater_space::{AccessPointId, Space};
use locater_store::RecoveryReport;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Ingesting this MAC panics inside the executor. The chaos tests use it to
/// prove that a worker panic is isolated into a typed [`WireError::Internal`]
/// response instead of wedging the connection or poisoning server locks.
#[doc(hidden)]
pub const CHAOS_PANIC_MAC: &str = "chaos:panic";

/// Ingesting this MAC stalls inside the executor for a moment before
/// applying. The dedup tests use it to hold a request id in its in-flight
/// window long enough for a concurrent duplicate of the same id to arrive.
/// (Colon-free on purpose: unlike [`CHAOS_PANIC_MAC`], this identifier
/// continues into a real ingest, and a colon would trip strict hardware-MAC
/// syntax validation.)
#[doc(hidden)]
pub const CHAOS_STALL_MAC: &str = "chaos-stall";

/// Default bound on how many acknowledged ingest request ids the server
/// remembers for replay deduplication ([`ServerState::with_dedup_capacity`]
/// overrides it — the server sizes the window off its admission limit). Old
/// entries age out in insertion order; a client retrying within this window
/// gets the original ack back instead of a second apply.
const DEDUP_CAPACITY: usize = 1024;

/// One request id's place in the replay-dedup window.
#[derive(Debug, Clone)]
enum DedupSlot {
    /// A worker claimed the id and is executing it right now. Concurrent
    /// arrivals of the same id park on the marker instead of executing a
    /// second apply.
    InFlight,
    /// The id completed with this ack; retries replay it verbatim.
    /// (Boxed: the slot map holds up to the whole window's worth of acks.)
    Done(Box<WireResponse>),
}

/// The bounded replay cache: per-request-id slots plus the insertion order
/// of *completed* acks, so eviction is FIFO over completed entries only —
/// an in-flight marker is never evicted (the worker that planted it always
/// completes or removes it).
#[derive(Debug, Default)]
struct DedupCache {
    slots: HashMap<u64, DedupSlot>,
    order: VecDeque<u64>,
}

/// What [`ServerState::claim_dedup`] decided for a request id.
enum DedupClaim {
    /// The caller owns the id: execute the request, then resolve the marker
    /// with [`ServerState::complete_dedup`].
    Execute,
    /// The id already completed (possibly while this call waited out an
    /// in-flight marker): answer with the original ack, apply nothing.
    Replay(Box<WireResponse>),
}

/// A live service plus the serving-layer bookkeeping around it.
///
/// Front ends funnel every request through [`execute`](Self::execute); the
/// TCP server additionally drives the admission counters
/// ([`try_admit`](Self::try_admit), [`begin_execution`](Self::begin_execution),
/// [`finish_execution`](Self::finish_execution)) so `stats` can report
/// in-flight/queued gauges and the load harness can assert that backpressure
/// engaged.
#[derive(Debug)]
pub struct ServerState {
    service: ShardedLocaterService,
    started: Instant,
    requests_served: AtomicU64,
    in_flight: AtomicUsize,
    queued: AtomicUsize,
    rejected_overloaded: AtomicU64,
    rejected_shutting_down: AtomicU64,
    panics: AtomicU64,
    degraded: AtomicU64,
    deduped: AtomicU64,
    dedup_evicted: AtomicU64,
    dedup: Mutex<DedupCache>,
    /// Signalled whenever an in-flight dedup marker resolves, waking
    /// duplicates parked in [`claim_dedup`](Self::claim_dedup).
    dedup_done: Condvar,
    dedup_capacity: usize,
    draining: AtomicBool,
    drain_snapshot: Option<String>,
    /// Default retention for `compact` requests that carry no horizon of
    /// their own (`serve --retain`); `None` means such requests are rejected.
    retain: Option<Timestamp>,
    /// Where compaction persists its cold tiers (`serve --spill-dir`);
    /// `None` keeps summaries in memory only and discards spills.
    spill_dir: Option<PathBuf>,
}

impl ServerState {
    /// Wraps a live service. `drain_snapshot` is the path the store is
    /// persisted to when a graceful drain completes (`None` to skip).
    pub fn new(service: ShardedLocaterService, drain_snapshot: Option<String>) -> Self {
        ServerState {
            service,
            started: Instant::now(),
            requests_served: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_shutting_down: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            dedup_evicted: AtomicU64::new(0),
            dedup: Mutex::new(DedupCache::default()),
            dedup_done: Condvar::new(),
            dedup_capacity: DEDUP_CAPACITY,
            draining: AtomicBool::new(false),
            drain_snapshot,
            retain: None,
            spill_dir: None,
        }
    }

    /// Configures retention: the default `retain` for compact requests that
    /// carry none, and the directory cold tiers are persisted into.
    pub fn with_retention(mut self, retain: Option<Timestamp>, spill_dir: Option<PathBuf>) -> Self {
        self.retain = retain;
        self.spill_dir = spill_dir;
        self
    }

    /// The configured default retention, if any.
    pub fn retain(&self) -> Option<Timestamp> {
        self.retain
    }

    /// Sizes the replay-dedup window. The TCP server passes a multiple of
    /// its admission limit: with a window no smaller than the number of
    /// requests that can be in the building at once, an id acked moments ago
    /// cannot be evicted while its client is still inside the retry backoff
    /// (evictions under load are visible as `dedup_evicted` in `stats`).
    /// Clamped to at least one entry.
    pub fn with_dedup_capacity(mut self, capacity: usize) -> Self {
        self.dedup_capacity = capacity.max(1);
        self
    }

    /// Runs one scheduled compaction tick against the configured retention
    /// (the `--compact-interval` timer calls this). No-op without `--retain`.
    pub fn compaction_tick(&self) -> Result<(), String> {
        let Some(retain) = self.retain else {
            return Ok(());
        };
        self.service
            .compact_all(retain, self.spill_dir.as_deref())
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    /// The wrapped service.
    pub fn service(&self) -> &ShardedLocaterService {
        &self.service
    }

    /// `true` once a graceful drain has been requested (by a `shutdown`
    /// request or SIGTERM); new requests are rejected from then on.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Starts a graceful drain (idempotent).
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Executes one request against the service. Every failure is a
    /// structured [`WireResponse::Error`]; this never panics on user input —
    /// even a bug-induced panic inside the service is caught and isolated
    /// into [`WireError::Internal`].
    pub fn execute(&self, request: &WireRequest) -> WireResponse {
        self.execute_with_budget(request, false)
    }

    /// [`execute`](Self::execute) with an explicit time-budget verdict from
    /// the caller. When `over_deadline` is true, `Locate` requests degrade
    /// to the coarse-only answer (marked `degraded: true` on the wire)
    /// instead of spending the fine-grained budget the request no longer
    /// has; every other request type runs normally, since partial ingest or
    /// compaction would be worse than late ingest or compaction.
    pub fn execute_with_budget(&self, request: &WireRequest, over_deadline: bool) -> WireResponse {
        let response = match Self::dedup_key(request) {
            Some(id) => match self.claim_dedup(id) {
                DedupClaim::Replay(cached) => *cached,
                DedupClaim::Execute => {
                    let response = self.execute_guarded(request, over_deadline);
                    self.complete_dedup(id, &response);
                    response
                }
            },
            None => self.execute_guarded(request, over_deadline),
        };
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        response
    }

    /// The replay-dedup key: only ingest requests carry one, and only when
    /// the client opted in by sending a `request_id`.
    fn dedup_key(request: &WireRequest) -> Option<u64> {
        match request {
            WireRequest::Ingest { request_id, .. }
            | WireRequest::IngestBatch { request_id, .. } => *request_id,
            _ => None,
        }
    }

    /// Resolves a request id against the replay window in **one** lock
    /// acquisition — check and claim are atomic, so two retries of the same
    /// id can never both apply, however they interleave. A completed id
    /// replays its original ack (the client is retrying an ingest the
    /// server already applied; the ack was lost on the wire). An unseen id
    /// is claimed with an in-flight marker; the caller must resolve it with
    /// [`complete_dedup`](Self::complete_dedup). An id some other worker is
    /// executing right now parks until that worker resolves the marker,
    /// then replays its ack — or, if it resolved to an error (which removes
    /// the marker: nothing was applied, nothing to replay), claims the id
    /// and re-executes.
    fn claim_dedup(&self, id: u64) -> DedupClaim {
        let mut cache = self.dedup.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match cache.slots.get(&id) {
                Some(DedupSlot::Done(response)) => {
                    self.deduped.fetch_add(1, Ordering::Relaxed);
                    return DedupClaim::Replay(response.clone());
                }
                Some(DedupSlot::InFlight) => {
                    cache = self
                        .dedup_done
                        .wait(cache)
                        .unwrap_or_else(|p| p.into_inner());
                }
                None => {
                    cache.slots.insert(id, DedupSlot::InFlight);
                    return DedupClaim::Execute;
                }
            }
        }
    }

    /// Resolves an in-flight marker planted by [`claim_dedup`](Self::claim_dedup)
    /// and wakes every duplicate parked on it. Only acks are remembered for
    /// replay: a failed ingest applied nothing, so its marker is dropped and
    /// a retry after an error re-executes instead of replaying the failure.
    fn complete_dedup(&self, id: u64, response: &WireResponse) {
        {
            let mut cache = self.dedup.lock().unwrap_or_else(|p| p.into_inner());
            if matches!(response, WireResponse::Error(_)) {
                cache.slots.remove(&id);
            } else {
                self.remember_locked(&mut cache, id, response.clone());
            }
        }
        self.dedup_done.notify_all();
    }

    /// Inserts a completed ack under the (held) dedup lock, then evicts the
    /// oldest completed entries beyond the window. Every eviction bumps the
    /// `dedup_evicted` gauge — a nonzero value in `stats` means retries can
    /// outlive the window under the current load.
    fn remember_locked(&self, cache: &mut DedupCache, id: u64, response: WireResponse) {
        let previous = cache.slots.insert(id, DedupSlot::Done(Box::new(response)));
        if !matches!(previous, Some(DedupSlot::Done(_))) {
            cache.order.push_back(id);
        }
        while cache.order.len() > self.dedup_capacity {
            if let Some(evicted) = cache.order.pop_front() {
                cache.slots.remove(&evicted);
                self.dedup_evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Re-seeds the replay window from crash recovery, restoring dedup
    /// across a restart: every durable ingest that carried a client request
    /// id gets its ack reconstructed, so a client retrying an ingest whose
    /// ack was lost to the crash is answered instead of re-applied. The
    /// reconstructed `device_epoch` is the *post-recovery* epoch (the
    /// pre-crash value died with the process, and recovery rebuilt the
    /// device's state wholesale anyway). Ids whose device or access point
    /// no longer resolves (a checkpoint from a different space) are skipped,
    /// not errors. Returns how many acks were seeded.
    pub fn seed_dedup_from_recovery(&self, report: &RecoveryReport) -> usize {
        let space = self.service.space();
        let mut seeded = 0;
        let mut cache = self.dedup.lock().unwrap_or_else(|p| p.into_inner());
        for acked in &report.acked_ingests {
            let Some(device) = self.service.device_id(&acked.mac) else {
                continue;
            };
            let ap = AccessPointId::new(acked.ap);
            if ap.index() >= space.num_access_points() {
                continue;
            }
            let response = WireResponse::Ingested {
                mac: acked.mac.clone(),
                t: acked.t,
                ap: space.access_point(ap).name.clone(),
                device_epoch: self.service.device_epoch(device),
            };
            self.remember_locked(&mut cache, acked.request_id, response);
            seeded += 1;
        }
        seeded
    }

    /// Runs the request with a panic fence around it: a panic anywhere in
    /// the service becomes a typed `Internal` error (retryable — the client
    /// cannot know how far the request got) and bumps the `panics` counter,
    /// instead of unwinding through the worker and poisoning shared locks.
    fn execute_guarded(&self, request: &WireRequest, over_deadline: bool) -> WireResponse {
        catch_unwind(AssertUnwindSafe(|| {
            self.execute_inner(request, over_deadline)
        }))
        .unwrap_or_else(|payload| {
            self.panics.fetch_add(1, Ordering::Relaxed);
            WireResponse::Error(WireError::Internal {
                message: format!("worker panicked: {}", panic_message(&payload)),
            })
        })
    }

    fn execute_inner(&self, request: &WireRequest, over_deadline: bool) -> WireResponse {
        match request {
            WireRequest::Ping => WireResponse::Pong {
                version: PROTOCOL_VERSION,
            },
            WireRequest::Ingest {
                mac,
                t,
                ap,
                request_id,
            } => {
                if mac == CHAOS_PANIC_MAC {
                    panic!("injected chaos panic (mac {CHAOS_PANIC_MAC})");
                }
                if mac == CHAOS_STALL_MAC {
                    std::thread::sleep(std::time::Duration::from_millis(150));
                }
                match self.service.ingest_tagged(mac, *t, ap, *request_id) {
                    Ok(_) => {
                        let device = self
                            .service
                            .device_id(mac)
                            .expect("ingest interned the device");
                        WireResponse::Ingested {
                            mac: mac.clone(),
                            t: *t,
                            ap: ap.clone(),
                            device_epoch: self.service.device_epoch(device),
                        }
                    }
                    Err(e) => WireResponse::Error(e.into()),
                }
            }
            WireRequest::IngestBatch {
                events,
                request_id: _,
            } => match self.service.ingest_batch(events.iter()) {
                Ok(appended) => WireResponse::IngestedBatch { appended },
                Err(e) => WireResponse::Error(e.into()),
            },
            WireRequest::Locate { .. } => {
                let locate = request.to_locate().expect("Locate variant");
                if over_deadline {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    match self.service.locate_coarse(&locate) {
                        Ok(response) => WireResponse::located_degraded(&response, true),
                        Err(e) => WireResponse::Error(e.into()),
                    }
                } else {
                    match self.service.locate(&locate) {
                        Ok(response) => WireResponse::located(&response),
                        Err(e) => WireResponse::Error(e.into()),
                    }
                }
            }
            WireRequest::Stats => WireResponse::Stats(self.stats()),
            WireRequest::Snapshot { path } => match self.service.save_snapshot(path) {
                Ok(()) => WireResponse::SnapshotSaved {
                    path: path.clone(),
                    bytes: std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
                },
                Err(e) => WireResponse::Error(WireError::Internal {
                    message: e.to_string(),
                }),
            },
            WireRequest::Compact { retain, horizon } => {
                let spill = self.spill_dir.as_deref();
                let outcome = match (retain.or(self.retain), horizon) {
                    (Some(retain), _) => self.service.compact_all(retain, spill),
                    (None, Some(horizon)) => self.service.compact_to(*horizon, spill),
                    (None, None) => {
                        return WireResponse::Error(WireError::BadRequest {
                            message: "compact needs a retain or horizon (or start the server \
                                      with --retain)"
                                .to_string(),
                        })
                    }
                };
                match outcome {
                    Ok(status) => WireResponse::Compacted(WireCompactionStats {
                        runs: status.runs,
                        evicted_events: status.evicted_events,
                        evicted_segments: status.evicted_segments,
                        last_cut: status.last_cut,
                        summary_rows: status.summary_rows,
                    }),
                    Err(e) => WireResponse::Error(WireError::Internal {
                        message: e.to_string(),
                    }),
                }
            }
            WireRequest::Shutdown => {
                self.request_drain();
                WireResponse::ShuttingDown
            }
        }
    }

    /// One consistent statistics sweep: store totals are sums of the
    /// per-shard counters (the header can never disagree with the lines),
    /// plus the serving-layer gauges.
    pub fn stats(&self) -> WireStats {
        let per_shard: Vec<_> = self
            .service
            .shard_stats()
            .into_iter()
            .map(Into::into)
            .collect();
        WireStats {
            version: PROTOCOL_VERSION,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            events: per_shard
                .iter()
                .map(|s: &locater_proto::WireShardStats| s.events)
                .sum(),
            devices: self.service.num_devices(),
            shards: self.service.num_shards(),
            edges: per_shard.iter().map(|s| s.edges).sum(),
            live_edges: per_shard.iter().map(|s| s.live_edges).sum(),
            samples: per_shard.iter().map(|s| s.samples).sum(),
            live_samples: per_shard.iter().map(|s| s.live_samples).sum(),
            index_ap_lists: per_shard.iter().map(|s| s.index_ap_lists).sum(),
            index_buckets: per_shard.iter().map(|s| s.index_buckets).sum(),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_shutting_down: self.rejected_shutting_down.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            dedup_evicted: self.dedup_evicted.load(Ordering::Relaxed),
            resident_bytes: per_shard.iter().map(|s| s.resident_bytes).sum(),
            head_segments: per_shard.iter().map(|s| s.head_segments).sum(),
            sealed_segments: per_shard.iter().map(|s| s.sealed_segments).sum(),
            compaction: {
                let status = self.service.compaction_status();
                WireCompactionStats {
                    runs: status.runs,
                    evicted_events: status.evicted_events,
                    evicted_segments: status.evicted_segments,
                    last_cut: status.last_cut,
                    summary_rows: status.summary_rows,
                }
            },
            per_shard,
            wal: self.service.wal_status().map(|wal| WireWalStats {
                dir: wal.dir,
                fsync: wal.fsync,
                segments: wal.segments,
                frames: wal.frames,
                bytes: wal.bytes,
                last_checkpoint_age_ms: wal.last_checkpoint_age_ms,
                checkpoints: wal.checkpoints,
            }),
        }
    }

    /// Admission control: admits the request (incrementing the queued gauge)
    /// unless `queued + in_flight` has reached `limit`, in which case the
    /// caller must answer with the returned [`WireError::Overloaded`] —
    /// explicit backpressure, never a silent drop. The check is approximate
    /// under concurrent readers (it may overshoot by at most the number of
    /// connections), which is fine for a load-shedding bound.
    pub fn try_admit(&self, limit: usize) -> Result<(), WireError> {
        let queued = self.queued.load(Ordering::Relaxed);
        let in_flight = self.in_flight.load(Ordering::Relaxed);
        if queued + in_flight >= limit {
            self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
            Err(WireError::Overloaded {
                in_flight,
                queued,
                limit,
            })
        } else {
            self.queued.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    /// Counts one request turned away because the service is draining.
    pub fn reject_shutting_down(&self) -> WireError {
        self.rejected_shutting_down.fetch_add(1, Ordering::Relaxed);
        WireError::ShuttingDown
    }

    /// Moves one admitted request from the queued gauge to the in-flight
    /// gauge (called by a worker as it picks the request up).
    pub fn begin_execution(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops the in-flight gauge after [`begin_execution`](Self::begin_execution).
    pub fn finish_execution(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests admitted but not yet executing.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Requests executing right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Runs the graceful-drain epilogue: checkpoints the WAL (when the
    /// service has one — a clean shutdown leaves an empty tail, so the next
    /// boot replays nothing) and writes the configured drain snapshot (if
    /// any). Failures are *recorded* in the summary, never swallowed and
    /// never aborting the other step — a failed drain snapshot must stay
    /// visible to the operator. Called once by the server after the drain
    /// completes; the REPL front end calls it on `shutdown` too.
    pub fn finish_drain(&self) -> DrainSummary {
        let checkpoint = match self.service.checkpoint() {
            Ok(None) => None,
            Ok(Some(bytes)) => Some(Ok(bytes)),
            Err(e) => Some(Err(e.to_string())),
        };
        let snapshot = self.drain_snapshot.as_ref().map(|path| {
            self.service
                .save_snapshot(path)
                .map(|()| {
                    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                    (path.clone(), bytes)
                })
                .map_err(|e| format!("{path}: {e}"))
        });
        DrainSummary {
            checkpoint,
            snapshot,
        }
    }
}

/// Best-effort rendering of a panic payload (`&str` and `String` payloads
/// cover `panic!` and `expect`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// What the graceful-drain epilogue did: the WAL checkpoint and the drain
/// snapshot, each `None` when not configured, `Err` with the rendered cause
/// when attempted and failed. The server surfaces failures in its final
/// report so the process can exit non-zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DrainSummary {
    /// WAL checkpoint outcome: `Ok(bytes)` on success.
    pub checkpoint: Option<Result<u64, String>>,
    /// Drain snapshot outcome: `Ok((path, bytes))` on success.
    pub snapshot: Option<Result<(String, u64), String>>,
}

impl DrainSummary {
    /// `true` when any attempted drain step failed.
    pub fn has_failure(&self) -> bool {
        matches!(self.checkpoint, Some(Err(_))) || matches!(self.snapshot, Some(Err(_)))
    }

    /// All failure causes joined into one line, `None` when the drain was
    /// clean — the short form for front ends that exit with a single message.
    pub fn failure_message(&self) -> Option<String> {
        let mut causes: Vec<String> = Vec::new();
        if let Some(Err(e)) = &self.checkpoint {
            causes.push(format!("wal checkpoint failed: {e}"));
        }
        if let Some(Err(e)) = &self.snapshot {
            causes.push(format!("drain snapshot failed: {e}"));
        }
        (!causes.is_empty()).then(|| causes.join("; "))
    }
}

/// Human-readable description of a semantic location (shared by the REPL and
/// the one-shot `locate` command).
pub fn describe_location(space: &Space, location: &Location) -> String {
    match location {
        Location::Outside => "outside the building".to_string(),
        Location::Region(region) => format!(
            "inside, region {region} (AP {}), room undetermined",
            space.access_point(space.ap_of_region(*region)).name
        ),
        Location::Room { room, region } => format!(
            "room {} (region {region}, AP {})",
            space.room(*room).name,
            space.access_point(space.ap_of_region(*region)).name
        ),
    }
}

/// Renders a response as the legacy human-readable REPL text. The request is
/// needed for context (e.g. `locate` echoes the queried MAC); the output for
/// ingest/locate/stats/error lines is byte-compatible with the pre-protocol
/// REPL, with `stats` gaining one trailing `server:` line.
pub fn render_response(space: &Space, request: &WireRequest, response: &WireResponse) -> String {
    use std::fmt::Write as _;
    match response {
        WireResponse::Pong { version } => format!("pong (protocol v{version})"),
        WireResponse::Ingested {
            mac,
            t,
            ap,
            device_epoch,
        } => format!("ingested {mac} @ {t} via {ap} (device epoch {device_epoch})"),
        WireResponse::IngestedBatch { appended } => format!("ingested {appended} events"),
        WireResponse::Located {
            answer,
            device_epoch,
            events_seen,
            degraded,
        } => {
            let who = match request {
                WireRequest::Locate { mac: Some(mac), .. } => mac.clone(),
                _ => format!("device {}", answer.device.0),
            };
            format!(
                "{who} @ {}: {} (decided by {:?}, confidence {:.2}, epoch {device_epoch}, {events_seen} events){}",
                locater_events::clock::format_timestamp(answer.t),
                describe_location(space, &answer.location),
                answer.coarse_method,
                answer.confidence,
                if *degraded {
                    " [degraded: coarse only]"
                } else {
                    ""
                }
            )
        }
        WireResponse::Stats(stats) => {
            let mut report = format!(
                "{} events, {} devices across {} shard(s); affinity cache: {}/{} edges live, {}/{} samples live; co-location index: {} AP lists, {} buckets",
                stats.events,
                stats.devices,
                stats.shards,
                stats.live_edges,
                stats.edges,
                stats.live_samples,
                stats.samples,
                stats.index_ap_lists,
                stats.index_buckets
            );
            for shard in &stats.per_shard {
                let _ = write!(
                    report,
                    "\nshard {}: {} events, {} devices; cache: {}/{} edges live, {}/{} samples live; index: {} AP lists, {} buckets",
                    shard.shard,
                    shard.events,
                    shard.owned_devices,
                    shard.live_edges,
                    shard.edges,
                    shard.live_samples,
                    shard.samples,
                    shard.index_ap_lists,
                    shard.index_buckets
                );
            }
            let _ = write!(
                report,
                "\nserver: protocol v{}, up {}ms; {} in flight, {} queued, {} served; rejected: {} overloaded, {} shutting-down; faults: {} panic(s), {} degraded, {} deduped, {} dedup-evicted",
                stats.version,
                stats.uptime_ms,
                stats.in_flight,
                stats.queued,
                stats.requests_served,
                stats.rejected_overloaded,
                stats.rejected_shutting_down,
                stats.panics,
                stats.degraded,
                stats.deduped,
                stats.dedup_evicted
            );
            let _ = write!(
                report,
                "\ntiers: {} head + {} sealed segment(s), ~{} resident bytes; compaction: {} run(s), {} events evicted, {} summary rows{}",
                stats.head_segments,
                stats.sealed_segments,
                stats.resident_bytes,
                stats.compaction.runs,
                stats.compaction.evicted_events,
                stats.compaction.summary_rows,
                match stats.compaction.last_cut {
                    Some(cut) => format!(", last cut @ {cut}"),
                    None => String::new(),
                }
            );
            if let Some(wal) = &stats.wal {
                let _ = write!(
                    report,
                    "\nwal: {} (fsync={}); {} frames in {} segment(s), {} bytes; last checkpoint {}ms ago ({} since boot)",
                    wal.dir,
                    wal.fsync,
                    wal.frames,
                    wal.segments,
                    wal.bytes,
                    wal.last_checkpoint_age_ms,
                    wal.checkpoints
                );
            }
            report
        }
        WireResponse::SnapshotSaved { path, bytes } => format!("saved {path} ({bytes} bytes)"),
        WireResponse::Compacted(c) => format!(
            "compacted: {} run(s) since boot, {} events in {} segment(s) evicted, {} summary rows{}",
            c.runs,
            c.evicted_events,
            c.evicted_segments,
            c.summary_rows,
            match c.last_cut {
                Some(cut) => format!(", last cut @ {cut}"),
                None => String::new(),
            }
        ),
        WireResponse::ShuttingDown => "shutting down: draining in-flight requests".to_string(),
        WireResponse::Error(e) => format!("error: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_core::system::LocaterConfig;
    use locater_proto::PROTOCOL_VERSION;
    use locater_space::SpaceBuilder;
    use locater_store::EventStore;

    fn state() -> ServerState {
        let space = SpaceBuilder::new("exec-test")
            .add_access_point("wap1", &["101", "102"])
            .build()
            .unwrap();
        ServerState::new(
            locater_core::system::ShardedLocaterService::new(
                EventStore::new(space),
                LocaterConfig::default(),
                2,
            ),
            None,
        )
    }

    #[test]
    fn execute_covers_every_request_variant() {
        let state = state();
        assert_eq!(
            state.execute(&WireRequest::Ping),
            WireResponse::Pong {
                version: PROTOCOL_VERSION
            }
        );
        let ingest = WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: None,
        };
        assert!(matches!(
            state.execute(&ingest),
            WireResponse::Ingested {
                device_epoch: 1,
                ..
            }
        ));
        let locate = WireRequest::Locate {
            mac: Some("aa".into()),
            device: None,
            t: 1_000,
            fine_mode: None,
            cache: None,
        };
        assert!(matches!(
            state.execute(&locate),
            WireResponse::Located { .. }
        ));
        let ghost = WireRequest::Locate {
            mac: Some("ghost".into()),
            device: None,
            t: 1_000,
            fine_mode: None,
            cache: None,
        };
        assert_eq!(
            state.execute(&ghost),
            WireResponse::Error(WireError::UnknownDevice {
                mac: "ghost".into()
            })
        );
        let WireResponse::Stats(stats) = state.execute(&WireRequest::Stats) else {
            panic!("stats request answers with stats");
        };
        assert_eq!(stats.events, 1);
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.requests_served, 4);
        // Without a configured or per-request horizon, compaction is refused.
        assert!(matches!(
            state.execute(&WireRequest::Compact {
                retain: None,
                horizon: None
            }),
            WireResponse::Error(WireError::BadRequest { .. })
        ));
        // With one, it answers with the cumulative gauges (nothing evictable
        // here: all history is within the retention).
        assert_eq!(
            state.execute(&WireRequest::Compact {
                retain: Some(1_000_000),
                horizon: None
            }),
            WireResponse::Compacted(WireCompactionStats::default())
        );
        assert!(!state.is_draining());
        assert_eq!(
            state.execute(&WireRequest::Shutdown),
            WireResponse::ShuttingDown
        );
        assert!(state.is_draining());
    }

    #[test]
    fn admission_control_rejects_at_the_limit() {
        let state = state();
        assert!(state.try_admit(2).is_ok());
        assert!(state.try_admit(2).is_ok());
        let err = state.try_admit(2).unwrap_err();
        assert!(matches!(
            err,
            WireError::Overloaded {
                queued: 2,
                limit: 2,
                ..
            }
        ));
        state.begin_execution();
        assert_eq!((state.queued(), state.in_flight()), (1, 1));
        // Still at the limit: queued + in-flight counts.
        assert!(state.try_admit(2).is_err());
        state.finish_execution();
        assert!(state.try_admit(2).is_ok());
        let stats = state.stats();
        assert_eq!(stats.rejected_overloaded, 2);
    }

    #[test]
    fn renders_legacy_repl_text() {
        let state = state();
        state.execute(&WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: None,
        });
        let space = state.service().space();
        let request = WireRequest::Locate {
            mac: Some("aa".into()),
            device: None,
            t: 1_000,
            fine_mode: None,
            cache: None,
        };
        let rendered = render_response(&space, &request, &state.execute(&request));
        assert!(rendered.starts_with("aa @ "), "rendered: {rendered}");
        assert!(rendered.contains("confidence"));
        let stats = render_response(
            &space,
            &WireRequest::Stats,
            &state.execute(&WireRequest::Stats),
        );
        assert!(stats.contains("1 events, 1 devices across 2 shard(s)"));
        assert!(stats.contains("shard 0:"));
        assert!(stats.contains("server: protocol v3"));
        assert!(stats.contains("rejected: 0 overloaded, 0 shutting-down"));
        assert!(stats.contains("faults: 0 panic(s), 0 degraded, 0 deduped"));
        assert!(
            stats.contains("tiers: 1 head + 0 sealed segment(s)"),
            "stats: {stats}"
        );
        assert!(stats.contains("compaction: 0 run(s)"));
    }

    #[test]
    fn replayed_ingest_request_ids_are_idempotent() {
        let state = state();
        let ingest = WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: Some(42),
        };
        let first = state.execute(&ingest);
        assert!(matches!(first, WireResponse::Ingested { .. }));
        // The retry replays the original ack byte-for-byte and applies
        // nothing: still one event, and the dedup counter records the hit.
        let retry = state.execute(&ingest);
        assert_eq!(retry, first);
        let stats = state.stats();
        assert_eq!(stats.events, 1);
        assert_eq!(stats.deduped, 1);
        // A different id is a different request, even for identical bytes
        // (the service itself then rejects the duplicate (mac, t) pair or
        // applies it, per its own semantics — here it applies).
        let other = WireRequest::Ingest {
            mac: "bb".into(),
            t: 2_000,
            ap: "wap1".into(),
            request_id: Some(43),
        };
        assert!(matches!(
            state.execute(&other),
            WireResponse::Ingested { .. }
        ));
        assert_eq!(state.stats().events, 2);
    }

    #[test]
    fn concurrent_duplicates_of_one_id_apply_once() {
        let state = state();
        let stall = WireRequest::Ingest {
            mac: CHAOS_STALL_MAC.into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: Some(9),
        };
        // Two connections race the same request id; whichever claims first
        // stalls inside the executor long enough for the other to arrive
        // while the id is in flight. The loser must park on the in-flight
        // marker and replay the winner's ack — never execute a second apply
        // (the original check-then-execute-then-remember flow lost exactly
        // this race).
        let (first, second) = std::thread::scope(|scope| {
            let a = scope.spawn(|| state.execute(&stall));
            let b = scope.spawn(|| state.execute(&stall));
            (a.join().unwrap(), b.join().unwrap())
        });
        assert!(
            matches!(first, WireResponse::Ingested { .. }),
            "got {first:?} / {second:?}"
        );
        assert_eq!(first, second, "the duplicate replays the original ack");
        let stats = state.stats();
        assert_eq!(stats.events, 1, "exactly one apply");
        assert_eq!(stats.deduped, 1, "exactly one replay");
    }

    #[test]
    fn dedup_window_eviction_is_fifo_and_counted() {
        let state = state().with_dedup_capacity(2);
        for (i, mac) in ["aa", "bb", "cc"].iter().enumerate() {
            let response = state.execute(&WireRequest::Ingest {
                mac: (*mac).into(),
                t: 1_000 + i as i64,
                ap: "wap1".into(),
                request_id: Some(i as u64 + 1),
            });
            assert!(matches!(response, WireResponse::Ingested { .. }));
        }
        // Three acks through a two-entry window: the oldest id aged out.
        assert_eq!(state.stats().dedup_evicted, 1);
        // A retry of the evicted id re-executes (the service applies a
        // second event — the window was too small for this retry, which is
        // exactly what the gauge is there to surface)…
        state.execute(&WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: Some(1),
        });
        assert_eq!(state.stats().events, 4);
        assert_eq!(state.stats().deduped, 0);
        // …while a retry of an id still inside the window replays.
        state.execute(&WireRequest::Ingest {
            mac: "cc".into(),
            t: 1_002,
            ap: "wap1".into(),
            request_id: Some(3),
        });
        assert_eq!(state.stats().events, 4);
        assert_eq!(state.stats().deduped, 1);
    }

    #[test]
    fn recovery_seeded_ids_replay_across_a_restart() {
        use locater_store::AckedIngest;
        let state = state();
        // The "pre-crash" ingest: durable in the store, but its ack never
        // reached the client.
        state.execute(&WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: None,
        });
        let report = RecoveryReport {
            checkpoint_loaded: false,
            base_events: 0,
            replayed: 1,
            skipped: 0,
            shards: 1,
            segments: 1,
            torn: Vec::new(),
            acked_ingests: vec![
                AckedIngest {
                    request_id: 42,
                    mac: "aa".into(),
                    t: 1_000,
                    ap: 0,
                },
                // Tokens whose device or AP no longer resolves (a WAL from
                // a different space) are skipped, not errors.
                AckedIngest {
                    request_id: 43,
                    mac: "ghost".into(),
                    t: 1_000,
                    ap: 0,
                },
                AckedIngest {
                    request_id: 44,
                    mac: "aa".into(),
                    t: 1_000,
                    ap: 7,
                },
            ],
        };
        assert_eq!(state.seed_dedup_from_recovery(&report), 1);
        // The client's retry of the durable-but-unacked ingest replays the
        // reconstructed ack instead of applying a second event.
        let retry = state.execute(&WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: Some(42),
        });
        let WireResponse::Ingested { mac, t, ap, .. } = retry else {
            panic!("seeded id must replay an ack, got {retry:?}");
        };
        assert_eq!((mac.as_str(), t, ap.as_str()), ("aa", 1_000, "wap1"));
        let stats = state.stats();
        assert_eq!(stats.events, 1);
        assert_eq!(stats.deduped, 1);
    }

    #[test]
    fn failed_ingests_are_not_remembered_for_replay() {
        let state = state();
        let bad = WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "no-such-ap".into(),
            request_id: Some(7),
        };
        assert!(matches!(state.execute(&bad), WireResponse::Error(_)));
        // Retrying the id after a failure re-executes (nothing was applied,
        // so there is nothing to replay) — with a fixed request it succeeds.
        let fixed = WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: Some(7),
        };
        assert!(matches!(
            state.execute(&fixed),
            WireResponse::Ingested { .. }
        ));
        assert_eq!(state.stats().deduped, 0);
    }

    #[test]
    fn worker_panics_become_internal_errors() {
        let state = state();
        let boom = WireRequest::Ingest {
            mac: CHAOS_PANIC_MAC.into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: None,
        };
        let response = state.execute(&boom);
        let WireResponse::Error(error) = response else {
            panic!("panic must surface as a typed error, got {response:?}");
        };
        assert!(matches!(error, WireError::Internal { .. }));
        assert!(error.retryable(), "internal errors are retryable");
        // The executor is still healthy afterwards.
        assert_eq!(
            state.execute(&WireRequest::Ping),
            WireResponse::Pong {
                version: PROTOCOL_VERSION
            }
        );
        let stats = state.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.events, 0);
    }

    #[test]
    fn over_deadline_locates_degrade_to_coarse_answers() {
        let state = state();
        state.execute(&WireRequest::Ingest {
            mac: "aa".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: None,
        });
        let locate = WireRequest::Locate {
            mac: Some("aa".into()),
            device: None,
            t: 1_000,
            fine_mode: None,
            cache: None,
        };
        // Within budget: the normal (possibly fine-grained) answer.
        assert!(matches!(
            state.execute_with_budget(&locate, false),
            WireResponse::Located {
                degraded: false,
                ..
            }
        ));
        // Over budget: a coarse-only answer, flagged degraded on the wire.
        let degraded = state.execute_with_budget(&locate, true);
        let WireResponse::Located {
            answer,
            degraded: true,
            ..
        } = &degraded
        else {
            panic!("over-deadline locate must answer degraded, got {degraded:?}");
        };
        assert!(!matches!(answer.location, Location::Room { .. }));
        assert_eq!(state.stats().degraded, 1);
        // Ingest never degrades: over-deadline ingest still applies fully.
        let response = state.execute_with_budget(
            &WireRequest::Ingest {
                mac: "bb".into(),
                t: 2_000,
                ap: "wap1".into(),
                request_id: None,
            },
            true,
        );
        assert!(matches!(response, WireResponse::Ingested { .. }));
        assert_eq!(state.stats().events, 2);
    }
}
