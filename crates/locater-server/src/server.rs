//! The std-net TCP front door.
//!
//! ## Architecture
//!
//! ```text
//! accept thread ──► one reader thread per connection
//!                        │  decode + admission control
//!                        ▼
//!                per-connection FIFO of jobs (Exec | Ready)
//!                        │  connection enters the global ready queue
//!                        ▼
//!                worker pool (thread per core by default)
//!                        │  one job per pickup, per-connection serial
//!                        ▼
//!                response line written back on the same socket
//! ```
//!
//! * **Pipelining with strict ordering** — a client may write many request
//!   lines before reading; responses come back in request order because each
//!   connection's jobs form a FIFO and rejections (`overloaded`,
//!   `shutting_down`, parse errors) are enqueued as pre-computed `Ready`
//!   responses occupying their slot in the same FIFO.
//! * **Per-connection serial execution** — a connection is in the ready queue
//!   at most once and a worker takes one job per pickup, so one connection's
//!   requests execute in order (ingest-then-locate over one socket behaves
//!   exactly like the same calls on an in-process service) while different
//!   connections execute concurrently.
//! * **Admission control** — `queued + in_flight` is bounded by
//!   [`ServerConfig::admission_limit`]; excess requests get an explicit
//!   [`WireError::Overloaded`] response, never a silent drop.
//! * **Graceful drain** — a `shutdown` request (or SIGTERM via
//!   [`install_sigterm_drain`]) stops admission, lets in-flight requests
//!   finish, flushes their responses, closes connections, writes the
//!   configured drain snapshot, and returns a [`ServerReport`].

use crate::exec::{DrainSummary, ServerState};
use locater_proto::{decode_request, encode_response, WireRequest, WireResponse};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poison instead of propagating the panic.
///
/// The executor fences request panics with `catch_unwind`, but a defect in
/// the serving layer itself could still unwind while holding a lock. Every
/// structure guarded here (connection FIFOs, the ready queue, the connection
/// registry) is mutated in small all-or-nothing steps, so the inner value is
/// structurally valid even after a panicked holder — serving must continue,
/// not cascade the panic through every thread that touches the lock next.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests; `0` means one per core (minimum 2).
    pub workers: usize,
    /// Bound on `queued + in_flight` requests; beyond it new requests are
    /// rejected with [`locater_proto::WireError::Overloaded`].
    pub admission_limit: usize,
    /// A connection idle (no request line) for this long is closed; also the
    /// per-response write timeout guarding against stuck clients.
    pub idle_timeout: Duration,
    /// Time budget from admission to execution pickup. A `Locate` picked up
    /// past its deadline degrades to the coarse-only answer (flagged
    /// `degraded: true` on the wire) instead of spending a fine-grained
    /// budget the request no longer has; other request types run in full
    /// regardless. `None` disables deadline-based degradation.
    pub deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            admission_limit: 1024,
            idle_timeout: Duration::from_secs(60),
            deadline: None,
        }
    }
}

/// What happened over the server's lifetime, returned by [`Server::join`]
/// after a graceful drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReport {
    /// Requests executed to completion (successes and error responses).
    pub requests_served: u64,
    /// Requests rejected by admission control.
    pub rejected_overloaded: u64,
    /// Requests rejected because the drain had started.
    pub rejected_shutting_down: u64,
    /// Connections accepted.
    pub connections: u64,
    /// What the drain epilogue did (WAL checkpoint, drain snapshot) —
    /// including any failure, which the front end must surface with a
    /// non-zero exit instead of losing the rest of the report.
    pub drain: DrainSummary,
}

/// One pending unit of work on a connection: either a request to execute or a
/// pre-computed response (rejections, parse errors) holding its ordered slot.
// Sized by `WireResponse` (see the allow there); a queue slot is short-lived.
#[allow(clippy::large_enum_variant)]
enum Pending {
    /// A request to execute, stamped with its admission time so the worker
    /// that picks it up can tell whether the deadline budget is spent.
    Exec(WireRequest, Instant),
    Ready(WireResponse),
}

#[derive(Default)]
struct ConnQueue {
    jobs: VecDeque<Pending>,
    /// Whether the connection currently sits in the ready queue or is held by
    /// a worker — at most one of either, guaranteeing serial execution.
    scheduled: bool,
    /// Set on write failure: remaining responses are dropped (the peer is
    /// gone) but admitted work still executes so the gauges stay balanced.
    dead: bool,
}

struct Conn {
    stream: TcpStream,
    queue: Mutex<ConnQueue>,
}

struct Shared {
    state: Arc<ServerState>,
    config: ServerConfig,
    ready: Mutex<VecDeque<Arc<Conn>>>,
    ready_cv: Condvar,
    stop_workers: AtomicBool,
    busy_workers: AtomicUsize,
    conns: Mutex<Vec<Weak<Conn>>>,
    connections: AtomicU64,
}

/// A running TCP server. Construct with [`Server::bind`]; [`Server::join`]
/// blocks until a graceful drain completes.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7474`, or port `0` for an ephemeral
    /// port) and starts the accept thread plus the worker pool.
    pub fn bind(
        state: Arc<ServerState>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            state,
            config,
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            stop_workers: AtomicBool::new(false),
            busy_workers: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            connections: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("locater-accept".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("locater-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Server {
            shared,
            local_addr,
            accept,
            workers,
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared executor (e.g. to read [`ServerState::stats`] in-process).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.shared.state
    }

    /// Blocks until a graceful drain is requested (`shutdown` request or
    /// [`install_sigterm_drain`]), finishes all admitted work, flushes
    /// responses, closes connections, runs the drain epilogue (WAL
    /// checkpoint + drain snapshot), and reports. Epilogue failures are
    /// carried inside [`ServerReport::drain`] rather than replacing the
    /// report — the serving counters survive a failed snapshot write.
    pub fn join(self) -> ServerReport {
        // The accept thread exits once the drain flag is up.
        let _ = self.accept.join();
        let state = &self.shared.state;
        // Phase 1: every admitted request finishes executing. Readers are
        // already rejecting new work with `shutting_down`.
        while state.queued() > 0 || state.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Phase 2: stop the readers (EOF on the read half) so no further
        // rejection responses are enqueued, then let the workers flush what
        // is already queued.
        for conn in relock(&self.shared.conns).iter() {
            if let Some(conn) = conn.upgrade() {
                let _ = conn.stream.shutdown(Shutdown::Read);
            }
        }
        loop {
            let ready_empty = relock(&self.shared.ready).is_empty();
            if ready_empty && self.shared.busy_workers.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Phase 3: stop the workers and persist the drain snapshot.
        self.shared.stop_workers.store(true, Ordering::SeqCst);
        self.shared.ready_cv.notify_all();
        for worker in self.workers {
            let _ = worker.join();
        }
        let stats = state.stats();
        let drain = state.finish_drain();
        ServerReport {
            requests_served: stats.requests_served,
            rejected_overloaded: stats.rejected_overloaded,
            rejected_shutting_down: stats.rejected_shutting_down,
            connections: self.shared.connections.load(Ordering::Relaxed),
            drain,
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    listener
        .set_nonblocking(true)
        .expect("listener supports nonblocking accept");
    loop {
        if shared.state.is_draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(shared.config.idle_timeout));
                let conn = Arc::new(Conn {
                    stream,
                    queue: Mutex::new(ConnQueue::default()),
                });
                shared.connections.fetch_add(1, Ordering::Relaxed);
                {
                    let mut conns = relock(&shared.conns);
                    conns.retain(|weak| weak.strong_count() > 0);
                    conns.push(Arc::downgrade(&conn));
                }
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("locater-conn".into())
                    .spawn(move || reader_loop(&shared, &conn));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads request lines off one socket, turning each into a job on the
/// connection's FIFO: decode + admission control happen here so rejections
/// occupy their response slot in order.
fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let Ok(read_half) = conn.stream.try_clone() else {
        return;
    };
    // An idle connection (no complete line within the timeout) is closed.
    let _ = read_half.set_read_timeout(Some(shared.config.idle_timeout));
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let mut line_no = 0u64;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        line_no += 1;
        let state = &shared.state;
        let job = if state.is_draining() {
            Pending::Ready(WireResponse::Error(state.reject_shutting_down()))
        } else {
            match decode_request(&line) {
                Err(e) => Pending::Ready(WireResponse::Error(e.at_line(line_no))),
                Ok(request) => match state.try_admit(shared.config.admission_limit) {
                    Ok(()) => Pending::Exec(request, Instant::now()),
                    Err(e) => Pending::Ready(WireResponse::Error(e)),
                },
            }
        };
        submit(shared, conn, job);
    }
}

/// Appends a job to the connection FIFO and schedules the connection if it is
/// not already in the ready queue or held by a worker.
fn submit(shared: &Shared, conn: &Arc<Conn>, job: Pending) {
    let schedule = {
        let mut queue = relock(&conn.queue);
        queue.jobs.push_back(job);
        !std::mem::replace(&mut queue.scheduled, true)
    };
    if schedule {
        relock(&shared.ready).push_back(Arc::clone(conn));
        shared.ready_cv.notify_one();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let conn = {
            let mut ready = relock(&shared.ready);
            loop {
                if let Some(conn) = ready.pop_front() {
                    break conn;
                }
                if shared.stop_workers.load(Ordering::SeqCst) {
                    return;
                }
                ready = shared
                    .ready_cv
                    .wait_timeout(ready, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
        };
        shared.busy_workers.fetch_add(1, Ordering::SeqCst);
        // One job per pickup: keeps scheduling fair across connections while
        // preserving per-connection execution order.
        let job = relock(&conn.queue).jobs.pop_front();
        let response = match job {
            None => None,
            Some(Pending::Ready(response)) => Some(response),
            Some(Pending::Exec(request, admitted)) => {
                let state = &shared.state;
                state.begin_execution();
                let over_deadline = shared
                    .config
                    .deadline
                    .is_some_and(|budget| admitted.elapsed() > budget);
                let response = state.execute_with_budget(&request, over_deadline);
                state.finish_execution();
                Some(response)
            }
        };
        if let Some(response) = response {
            let dead = relock(&conn.queue).dead;
            if !dead {
                let mut frame = encode_response(&response);
                frame.push('\n');
                let mut write_half = &conn.stream;
                if write_half.write_all(frame.as_bytes()).is_err() {
                    relock(&conn.queue).dead = true;
                }
            }
        }
        let reschedule = {
            let mut queue = relock(&conn.queue);
            if queue.jobs.is_empty() {
                queue.scheduled = false;
                false
            } else {
                true
            }
        };
        if reschedule {
            relock(&shared.ready).push_back(Arc::clone(&conn));
            shared.ready_cv.notify_one();
        }
        shared.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Installs a SIGTERM handler that starts a graceful drain of `state`, so
/// `kill <pid>` behaves exactly like a `shutdown` request. Unix only; safe to
/// call once per process (later calls re-arm the same flag).
#[cfg(unix)]
pub fn install_sigterm_drain(state: &Arc<ServerState>) {
    use std::ffi::c_int;
    static TERM: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_term(_sig: c_int) {
        // Only async-signal-safe work here: flip the flag, nothing else.
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        // `std` links libc; SIGTERM is 15 on every supported Unix.
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }
    let _ = unsafe { signal(15, on_term) };
    let state = Arc::clone(state);
    let _ = std::thread::Builder::new()
        .name("locater-sigterm".into())
        .spawn(move || loop {
            if TERM.load(Ordering::SeqCst) {
                state.request_drain();
                return;
            }
            if state.is_draining() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
}
