//! # locater-server — the network front door
//!
//! A std-only (`std::net`) TCP server exposing a live
//! [`ShardedLocaterService`](locater_core::system::ShardedLocaterService) over
//! the NDJSON wire protocol defined in [`locater_proto`]: one
//! [`WireRequest`](locater_proto::WireRequest) per line in, one
//! [`WireResponse`](locater_proto::WireResponse) per line out, in request
//! order, with pipelining.
//!
//! The crate has two layers:
//!
//! * [`ServerState`] — the transport-independent executor: it owns the
//!   service plus the serving-layer counters and maps every request variant
//!   to a response. The stdin REPL in `locater-cli serve` runs this executor
//!   directly; the TCP server runs it from a worker pool. One protocol, one
//!   executor, N transports.
//! * [`Server`] — the socket machinery: accept thread, one reader thread per
//!   connection, a bounded global ready queue, and a worker pool. Admission
//!   control rejects work beyond [`ServerConfig::admission_limit`] with an
//!   explicit `overloaded` response (backpressure, not silent drops), idle
//!   connections time out, and a `shutdown` request or SIGTERM
//!   ([`install_sigterm_drain`]) triggers a graceful drain that finishes
//!   admitted work, writes the configured drain snapshot, and resolves
//!   [`Server::join`] with a [`ServerReport`].
//!
//! ```no_run
//! use locater_core::system::{LocaterConfig, ShardedLocaterService};
//! use locater_server::{Server, ServerConfig, ServerState};
//! use locater_space::SpaceBuilder;
//! use locater_store::EventStore;
//! use std::sync::Arc;
//!
//! let space = SpaceBuilder::new("demo")
//!     .add_access_point("wap1", &["101"])
//!     .build()
//!     .unwrap();
//! let service = ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 4);
//! let state = Arc::new(ServerState::new(service, None));
//! let server = Server::bind(state, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! let report = server.join(); // blocks until a graceful drain
//! println!("served {} requests", report.requests_served);
//! ```

mod exec;
mod server;

pub use exec::{describe_location, render_response, DrainSummary, ServerState, CHAOS_PANIC_MAC};
#[cfg(unix)]
pub use server::install_sigterm_drain;
pub use server::{Server, ServerConfig, ServerReport};
