//! Loopback integration tests: a real `Server` on `127.0.0.1:0`, driven over
//! TCP with pipelined NDJSON frames, checked against a direct in-process
//! [`ShardedLocaterService`] fed the same interleaving.

use locater_core::system::{LocaterConfig, ShardedLocaterService};
use locater_proto::{
    decode_request, decode_response, encode_request, encode_response, WireError, WireRequest,
    WireResponse,
};
use locater_server::{Server, ServerConfig, ServerState};
use locater_space::{Space, SpaceBuilder};
use locater_store::{EventStore, RawEvent};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn space() -> Space {
    SpaceBuilder::new("net-test")
        .add_access_point("wap1", &["101", "102"])
        .add_access_point("wap2", &["103", "104"])
        .build()
        .unwrap()
}

fn service(shards: usize) -> ShardedLocaterService {
    ShardedLocaterService::new(EventStore::new(space()), LocaterConfig::default(), shards)
}

fn start(shards: usize, config: ServerConfig, drain_snapshot: Option<String>) -> Server {
    let state = Arc::new(ServerState::new(service(shards), drain_snapshot));
    Server::bind(state, "127.0.0.1:0", config).expect("bind loopback")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send_line(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write frame");
    }

    fn send(&mut self, request: &WireRequest) {
        self.send_line(&encode_request(request));
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read frame");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn recv(&mut self) -> WireResponse {
        let line = self.recv_line();
        decode_response(&line).unwrap_or_else(|e| panic!("bad response frame {line:?}: {e}"))
    }
}

fn ingest(mac: &str, t: i64, ap: &str) -> WireRequest {
    WireRequest::Ingest {
        mac: mac.into(),
        t,
        ap: ap.into(),
        request_id: None,
    }
}

fn locate(mac: &str, t: i64) -> WireRequest {
    WireRequest::Locate {
        mac: Some(mac.into()),
        device: None,
        t,
        fine_mode: None,
        cache: None,
    }
}

/// Mirrors the executor's request→response mapping with *direct* service
/// calls, so the served answers are checked against the in-process API, not
/// against the executor checking itself.
fn direct_expected(service: &ShardedLocaterService, request: &WireRequest) -> WireResponse {
    match request {
        WireRequest::Ingest { mac, t, ap, .. } => match service.ingest(mac, *t, ap) {
            Ok(_) => WireResponse::Ingested {
                mac: mac.clone(),
                t: *t,
                ap: ap.clone(),
                device_epoch: service.device_epoch(service.device_id(mac).unwrap()),
            },
            Err(e) => WireResponse::Error(e.into()),
        },
        WireRequest::Locate { .. } => {
            match service.locate(&request.to_locate().expect("locate frame")) {
                Ok(response) => WireResponse::located(&response),
                Err(e) => WireResponse::Error(e.into()),
            }
        }
        other => panic!("script only uses ingest/locate, got {other:?}"),
    }
}

/// The tentpole equivalence check: a pipelined interleaving of ingests and
/// locates over one socket produces responses byte-identical to the frames a
/// direct `ShardedLocaterService` yields for the same interleaving.
#[test]
fn served_answers_are_byte_identical_to_direct_service() {
    let server = start(3, ServerConfig::default(), None);
    let direct = service(3);
    let mut client = Client::connect(&server);

    let script = vec![
        locate("aa:bb:cc:dd:ee:01", 500), // unknown device at first
        ingest("aa:bb:cc:dd:ee:01", 1_000, "wap1"),
        ingest("aa:bb:cc:dd:ee:02", 1_100, "wap2"),
        locate("aa:bb:cc:dd:ee:01", 1_000),
        ingest("aa:bb:cc:dd:ee:01", 4_000, "wap1"),
        locate("aa:bb:cc:dd:ee:01", 2_500), // inside the gap
        locate("aa:bb:cc:dd:ee:02", 1_100),
        ingest("aa:bb:cc:dd:ee:01", 4_100, "wap9"), // unknown AP
        locate("ghost", 2_500),
    ];
    // Pipelined: write every request before reading any response.
    for request in &script {
        client.send(request);
    }
    for request in &script {
        let served = client.recv_line();
        let expected = encode_response(&direct_expected(&direct, request));
        assert_eq!(served, expected, "request: {request:?}");
    }
    assert_eq!(server.state().service().num_events(), direct.num_events());
}

#[test]
fn concurrent_clients_see_their_own_writes() {
    let server = Arc::new(start(4, ServerConfig::default(), None));
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mac = format!("aa:bb:cc:dd:ee:{i:02}");
                let mut client = Client::connect(&server);
                for round in 0..10 {
                    let t = 1_000 + round * 300;
                    client.send(&ingest(&mac, t, "wap1"));
                    match client.recv() {
                        WireResponse::Ingested { device_epoch, .. } => {
                            assert_eq!(device_epoch, round as u64 + 1)
                        }
                        other => panic!("expected ingest ack, got {other:?}"),
                    }
                    client.send(&locate(&mac, t));
                    match client.recv() {
                        WireResponse::Located { answer, .. } => assert!(!answer.is_outside()),
                        other => panic!("expected answer, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("client thread");
    }
    let stats = server.state().stats();
    assert_eq!(stats.events, 40);
    assert_eq!(stats.devices, 4);
    assert_eq!(stats.requests_served, 80);
    assert_eq!(stats.rejected_overloaded, 0);
}

#[test]
fn malformed_frames_get_line_stamped_parse_errors_and_the_connection_survives() {
    let server = start(1, ServerConfig::default(), None);
    let mut client = Client::connect(&server);

    client.send_line("this is not a frame");
    match client.recv() {
        WireResponse::Error(WireError::Parse { line, .. }) => assert_eq!(line, 1),
        other => panic!("expected parse error, got {other:?}"),
    }
    client.send(&WireRequest::Ping);
    assert!(matches!(client.recv(), WireResponse::Pong { .. }));
    client.send_line("{\"Ingest\":{\"mac\": nope}}");
    match client.recv() {
        WireResponse::Error(WireError::Parse { line, column, .. }) => {
            assert_eq!(line, 3, "non-empty lines are numbered");
            assert!(column > 0, "JSON errors carry a byte column");
        }
        other => panic!("expected parse error, got {other:?}"),
    }
    // Blank lines are keepalives, not frames: no response, numbering unchanged.
    client.send_line("");
    client.send(&WireRequest::Ping);
    assert!(matches!(client.recv(), WireResponse::Pong { .. }));
}

#[test]
fn overload_yields_explicit_backpressure_not_silent_drops() {
    // One worker and an admission limit of 1: while a slow batch executes,
    // pipelined pings must be rejected with explicit `overloaded` frames.
    let config = ServerConfig {
        workers: 1,
        admission_limit: 1,
        ..ServerConfig::default()
    };
    let pings = 300usize;
    let mut saw_overload = false;
    for _attempt in 0..5 {
        let server = start(2, config.clone(), None);
        let mut client = Client::connect(&server);
        let events: Vec<RawEvent> = (0..5_000)
            .map(|i| {
                RawEvent::new(
                    format!("aa:bb:cc:00:{:02x}:{:02x}", i / 256 % 256, i % 256),
                    1_000 + i,
                    "wap1",
                )
            })
            .collect();
        client.send(&WireRequest::IngestBatch {
            events,
            request_id: None,
        });
        for _ in 0..pings {
            client.send(&WireRequest::Ping);
        }
        // Responses come back in request order: the batch ack first, then one
        // frame per ping — nothing is dropped.
        assert_eq!(
            client.recv(),
            WireResponse::IngestedBatch { appended: 5_000 }
        );
        let mut pongs = 0usize;
        let mut overloaded = 0usize;
        for _ in 0..pings {
            match client.recv() {
                WireResponse::Pong { .. } => pongs += 1,
                WireResponse::Error(WireError::Overloaded { limit, .. }) => {
                    assert_eq!(limit, 1);
                    overloaded += 1;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(pongs + overloaded, pings);
        let stats = server.state().stats();
        assert_eq!(stats.rejected_overloaded as usize, overloaded);
        if overloaded > 0 {
            saw_overload = true;
            break;
        }
    }
    assert!(
        saw_overload,
        "admission control never engaged across 5 attempts"
    );
}

#[test]
fn graceful_shutdown_drains_and_snapshot_equals_direct_save() {
    let dir = std::env::temp_dir().join(format!("locater-server-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let drained = dir.join("drained.snap").to_string_lossy().to_string();
    let direct_path = dir.join("direct.snap").to_string_lossy().to_string();

    let server = start(2, ServerConfig::default(), Some(drained.clone()));
    let direct = service(2);
    let mut client = Client::connect(&server);

    let events = [
        ("aa:bb:cc:dd:ee:01", 1_000, "wap1"),
        ("aa:bb:cc:dd:ee:02", 1_050, "wap2"),
        ("aa:bb:cc:dd:ee:01", 4_000, "wap1"),
    ];
    for (mac, t, ap) in events {
        client.send(&ingest(mac, t, ap));
        assert!(matches!(client.recv(), WireResponse::Ingested { .. }));
        direct.ingest(mac, t, ap).unwrap();
    }
    client.send(&WireRequest::Shutdown);
    assert_eq!(client.recv(), WireResponse::ShuttingDown);
    // Post-drain requests are rejected, not dropped: the slot is answered.
    client.send(&WireRequest::Ping);
    assert_eq!(client.recv(), WireResponse::Error(WireError::ShuttingDown));
    drop(client);

    let report = server.join();
    assert_eq!(report.requests_served, 4, "3 ingests + shutdown");
    assert_eq!(report.rejected_shutting_down, 1);
    assert_eq!(report.connections, 1);
    assert!(!report.drain.has_failure(), "drain: {:?}", report.drain);
    let (path, bytes) = report
        .drain
        .snapshot
        .expect("drain snapshot attempted")
        .expect("drain snapshot written");
    assert_eq!(path, drained);
    assert!(bytes > 0);

    // The drain snapshot is byte-identical to an uncrashed `snapshot save`
    // from a direct service fed the same events.
    direct.save_snapshot(&direct_path).unwrap();
    assert_eq!(
        std::fs::read(&drained).unwrap(),
        std::fs::read(&direct_path).unwrap()
    );
    // And it restores into a service with the same history.
    let restored =
        ShardedLocaterService::from_snapshot(&drained, LocaterConfig::default(), 2).unwrap();
    assert_eq!(restored.num_events(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_panicking_request_does_not_wedge_the_server() {
    let server = start(1, ServerConfig::default(), None);
    let mut client = Client::connect(&server);
    // The magic chaos MAC panics inside the executor; the panic must come
    // back as a typed internal error, not close or wedge anything.
    client.send(&ingest(locater_server::CHAOS_PANIC_MAC, 1_000, "wap1"));
    match client.recv() {
        WireResponse::Error(WireError::Internal { message }) => {
            assert!(message.contains("panicked"), "message: {message}");
        }
        other => panic!("expected internal error, got {other:?}"),
    }
    // The same connection keeps working…
    client.send(&WireRequest::Ping);
    assert!(matches!(client.recv(), WireResponse::Pong { .. }));
    // …and so does a fresh one (no lock was poisoned by the unwind).
    let mut fresh = Client::connect(&server);
    fresh.send(&ingest("aa:bb:cc:dd:ee:01", 1_000, "wap1"));
    assert!(matches!(fresh.recv(), WireResponse::Ingested { .. }));
    let stats = server.state().stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.events, 1);
}

#[test]
fn ingest_retries_with_request_ids_are_idempotent_across_reconnects() {
    let server = start(2, ServerConfig::default(), None);
    let request = WireRequest::Ingest {
        mac: "aa:bb:cc:dd:ee:01".into(),
        t: 1_000,
        ap: "wap1".into(),
        request_id: Some(99),
    };
    let mut first = Client::connect(&server);
    first.send(&request);
    let ack = first.recv();
    assert!(matches!(ack, WireResponse::Ingested { .. }));
    // The client loses the connection after the ack and retries the exact
    // frame on a new one: the server replays the original ack and applies
    // nothing — one event, not two.
    drop(first);
    let mut second = Client::connect(&server);
    second.send(&request);
    assert_eq!(second.recv(), ack);
    let stats = server.state().stats();
    assert_eq!(stats.events, 1);
    assert_eq!(stats.deduped, 1);
}

#[test]
fn past_deadline_locates_degrade_to_coarse_answers() {
    // A zero deadline means every request is picked up over budget, so every
    // locate must take the degraded coarse-only path — and still answer.
    let config = ServerConfig {
        deadline: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let server = start(2, config, None);
    let mut client = Client::connect(&server);
    client.send(&ingest("aa:bb:cc:dd:ee:01", 1_000, "wap1"));
    assert!(matches!(client.recv(), WireResponse::Ingested { .. }));
    client.send(&locate("aa:bb:cc:dd:ee:01", 1_000));
    match client.recv() {
        WireResponse::Located {
            answer, degraded, ..
        } => {
            assert!(degraded, "zero budget must flag the answer degraded");
            assert!(!answer.is_outside());
        }
        other => panic!("expected a located answer, got {other:?}"),
    }
    assert_eq!(server.state().stats().degraded, 1);
}

#[test]
fn idle_connections_are_closed() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = start(1, config, None);
    let mut client = Client::connect(&server);
    client.send(&WireRequest::Ping);
    assert!(matches!(client.recv(), WireResponse::Pong { .. }));
    // No traffic: the server closes the socket after the idle timeout.
    let mut line = String::new();
    let n = client.reader.read_line(&mut line).expect("clean EOF");
    assert_eq!(n, 0, "expected EOF after idle timeout, got {line:?}");
}

#[test]
fn raw_json_frames_match_typed_constructors() {
    // A hand-written frame (what a non-Rust client would send) decodes to the
    // same request the typed constructor builds.
    let hand_written = r#"{"Locate":{"mac":"aa","t":2500,"cache":"Disabled"}}"#;
    let typed = WireRequest::Locate {
        mac: Some("aa".into()),
        device: None,
        t: 2_500,
        fine_mode: None,
        cache: Some(locater_core::system::CacheMode::Disabled),
    };
    assert_eq!(decode_request(hand_written).unwrap(), typed);

    let server = start(1, ServerConfig::default(), None);
    let mut client = Client::connect(&server);
    client.send_line(r#""Ping""#);
    assert!(matches!(client.recv(), WireResponse::Pong { .. }));
}
