//! Timeline arithmetic.
//!
//! LOCATER does not need a full civil calendar — the coarse-localization gap features
//! only use *time of day*, *day of week* and *duration* (paper §3). We therefore model
//! time as an integer number of seconds ([`Timestamp`]) since a **deployment epoch**
//! that is defined to fall on a Monday at 00:00. The paper's DBH-WIFI dataset starts
//! on Monday, Jan 22nd 2018, which is exactly such an epoch.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds since the deployment epoch (Monday 00:00). Negative values are allowed for
/// interval arithmetic but never produced by ingestion.
pub type Timestamp = i64;

/// Number of seconds in a minute.
pub const SECONDS_PER_MINUTE: Timestamp = 60;
/// Number of seconds in an hour.
pub const SECONDS_PER_HOUR: Timestamp = 3_600;
/// Number of seconds in a day.
pub const SECONDS_PER_DAY: Timestamp = 86_400;
/// Number of seconds in a week.
pub const SECONDS_PER_WEEK: Timestamp = 7 * SECONDS_PER_DAY;

/// Day of the week. The deployment epoch (timestamp 0) is a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DayOfWeek {
    /// Monday (day index 0).
    Monday,
    /// Tuesday (day index 1).
    Tuesday,
    /// Wednesday (day index 2).
    Wednesday,
    /// Thursday (day index 3).
    Thursday,
    /// Friday (day index 4).
    Friday,
    /// Saturday (day index 5).
    Saturday,
    /// Sunday (day index 6).
    Sunday,
}

impl DayOfWeek {
    /// All days, Monday first.
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// Day index in `0..7`, Monday = 0.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Day from its index (`0` = Monday). Indices are taken modulo 7.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index % 7]
    }

    /// `true` for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }
}

impl fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DayOfWeek::Monday => "Mon",
            DayOfWeek::Tuesday => "Tue",
            DayOfWeek::Wednesday => "Wed",
            DayOfWeek::Thursday => "Thu",
            DayOfWeek::Friday => "Fri",
            DayOfWeek::Saturday => "Sat",
            DayOfWeek::Sunday => "Sun",
        };
        write!(f, "{s}")
    }
}

/// Euclidean remainder that is always non-negative, so that pre-epoch timestamps still
/// map to sensible times of day.
#[inline]
fn rem_euclid(value: Timestamp, modulus: Timestamp) -> Timestamp {
    value.rem_euclid(modulus)
}

/// Index of the day this timestamp falls in (day 0 starts at the epoch).
#[inline]
pub fn day_index(t: Timestamp) -> i64 {
    t.div_euclid(SECONDS_PER_DAY)
}

/// Index of the ISO-like week this timestamp falls in (week 0 starts at the epoch).
#[inline]
pub fn week_index(t: Timestamp) -> i64 {
    t.div_euclid(SECONDS_PER_WEEK)
}

/// Seconds elapsed since the last midnight.
#[inline]
pub fn seconds_of_day(t: Timestamp) -> Timestamp {
    rem_euclid(t, SECONDS_PER_DAY)
}

/// Day of week of a timestamp; the epoch is a Monday.
#[inline]
pub fn day_of_week(t: Timestamp) -> DayOfWeek {
    DayOfWeek::from_index(rem_euclid(day_index(t), 7) as usize)
}

/// Timestamp of the midnight starting the day that contains `t`.
#[inline]
pub fn start_of_day(t: Timestamp) -> Timestamp {
    day_index(t) * SECONDS_PER_DAY
}

/// Builds a timestamp from `(day, hour, minute, second)` where `day` counts from the
/// epoch (day 0 = first Monday).
#[inline]
pub fn at(day: i64, hour: i64, minute: i64, second: i64) -> Timestamp {
    day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR + minute * SECONDS_PER_MINUTE + second
}

/// Formats a timestamp as `day N (Dow) HH:MM:SS` for logs and reports.
pub fn format_timestamp(t: Timestamp) -> String {
    let day = day_index(t);
    let dow = day_of_week(t);
    let s = seconds_of_day(t);
    format!(
        "day {day} ({dow}) {:02}:{:02}:{:02}",
        s / SECONDS_PER_HOUR,
        (s % SECONDS_PER_HOUR) / SECONDS_PER_MINUTE,
        s % SECONDS_PER_MINUTE
    )
}

/// Converts minutes to seconds (convenience for threshold parameters such as τ_l/τ_h,
/// which the paper expresses in minutes).
#[inline]
pub const fn minutes(m: i64) -> Timestamp {
    m * 60
}

/// Converts hours to seconds.
#[inline]
pub const fn hours(h: i64) -> Timestamp {
    h * 3_600
}

/// Converts whole days to seconds.
#[inline]
pub const fn days(d: i64) -> Timestamp {
    d * SECONDS_PER_DAY
}

/// Converts whole weeks to seconds.
#[inline]
pub const fn weeks(w: i64) -> Timestamp {
    w * SECONDS_PER_WEEK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday_midnight() {
        assert_eq!(day_of_week(0), DayOfWeek::Monday);
        assert_eq!(seconds_of_day(0), 0);
        assert_eq!(day_index(0), 0);
        assert_eq!(week_index(0), 0);
    }

    #[test]
    fn day_arithmetic() {
        let t = at(9, 13, 4, 35); // day 9 (second Wednesday), 13:04:35
        assert_eq!(day_index(t), 9);
        assert_eq!(week_index(t), 1);
        assert_eq!(day_of_week(t), DayOfWeek::Wednesday);
        assert_eq!(seconds_of_day(t), 13 * 3600 + 4 * 60 + 35);
        assert_eq!(start_of_day(t), 9 * SECONDS_PER_DAY);
    }

    #[test]
    fn negative_timestamps_wrap_correctly() {
        let t = -1; // one second before the epoch: Sunday 23:59:59
        assert_eq!(day_of_week(t), DayOfWeek::Sunday);
        assert_eq!(seconds_of_day(t), SECONDS_PER_DAY - 1);
        assert_eq!(day_index(t), -1);
    }

    #[test]
    fn weekend_detection() {
        assert!(day_of_week(at(5, 10, 0, 0)).is_weekend()); // Saturday
        assert!(day_of_week(at(6, 10, 0, 0)).is_weekend()); // Sunday
        assert!(!day_of_week(at(4, 10, 0, 0)).is_weekend()); // Friday
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(minutes(20), 1_200);
        assert_eq!(hours(3), 10_800);
        assert_eq!(days(2), 172_800);
        assert_eq!(weeks(1), SECONDS_PER_WEEK);
    }

    #[test]
    fn day_of_week_roundtrip_and_display() {
        for (i, d) in DayOfWeek::ALL.iter().enumerate() {
            assert_eq!(DayOfWeek::from_index(i), *d);
            assert_eq!(d.index(), i);
        }
        assert_eq!(DayOfWeek::from_index(8), DayOfWeek::Tuesday);
        assert_eq!(DayOfWeek::Monday.to_string(), "Mon");
        assert_eq!(DayOfWeek::Sunday.to_string(), "Sun");
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(format_timestamp(at(1, 9, 5, 7)), "day 1 (Tue) 09:05:07");
    }
}
