//! Estimation of the per-device validity period `δ(d)`.
//!
//! The paper (Appendix 9.1, "Event validity") notes that δ "can be extracted directly
//! from the WiFi connectivity data": while a device sits in one place, the log shows
//! how often it reconnects, and the typical spacing between those events is how long a
//! single event should be trusted.
//!
//! [`estimate_delta`] implements that idea: it looks at the distribution of
//! inter-event times of a device restricted to *stationary stretches* (consecutive
//! events on the same access point), takes a configurable percentile of it, and clamps
//! the result to a `[min, max]` range so that chatty devices do not get a
//! uselessly-small δ and silent devices do not get an enormous one.

use crate::clock::Timestamp;
use crate::event::EventSeq;
use serde::{Deserialize, Serialize};

/// Configuration for validity-period estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidityConfig {
    /// Fallback δ for devices without enough history, in seconds. Default: 10 minutes.
    pub default_delta: Timestamp,
    /// Lower clamp for the estimate, in seconds. Default: 2 minutes.
    pub min_delta: Timestamp,
    /// Upper clamp for the estimate, in seconds. Default: 30 minutes.
    pub max_delta: Timestamp,
    /// Percentile of the stationary inter-event time distribution to use, in `[0, 1]`.
    /// Default: 0.75.
    pub percentile: f64,
    /// Minimum number of stationary inter-event samples required before trusting the
    /// estimate. Default: 5.
    pub min_samples: usize,
}

impl Default for ValidityConfig {
    fn default() -> Self {
        Self {
            default_delta: 600,
            min_delta: 120,
            max_delta: 1_800,
            percentile: 0.75,
            min_samples: 5,
        }
    }
}

/// Estimates the validity period `δ(d)` of a device from its event sequence.
///
/// Only inter-event times between consecutive events logged by the *same* access point
/// are considered (the device was most likely stationary), and only those below
/// `config.max_delta * 4` (larger spacings are treated as absences, not as connection
/// periodicity).
pub fn estimate_delta(seq: &EventSeq, config: &ValidityConfig) -> Timestamp {
    estimate_delta_events(seq.events(), config)
}

/// [`estimate_delta`] over any time-sorted run of events, without requiring them to
/// live in one contiguous [`EventSeq`] — the segmented store estimates δ by chaining
/// its segments through this entry point.
pub fn estimate_delta_events<'a>(
    events: impl IntoIterator<Item = &'a crate::event::StoredEvent>,
    config: &ValidityConfig,
) -> Timestamp {
    let cap = config.max_delta.saturating_mul(4);
    let mut samples: Vec<Timestamp> = Vec::new();
    let mut prev: Option<&crate::event::StoredEvent> = None;
    for event in events {
        if let Some(p) = prev {
            if p.ap == event.ap {
                let dt = event.t - p.t;
                if dt > 0 && dt <= cap {
                    samples.push(dt);
                }
            }
        }
        prev = Some(event);
    }
    if samples.len() < config.min_samples {
        return config.default_delta;
    }
    samples.sort_unstable();
    let p = config.percentile.clamp(0.0, 1.0);
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx].clamp(config.min_delta, config.max_delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ValidityConfig::default();
        assert!(c.min_delta < c.default_delta);
        assert!(c.default_delta < c.max_delta);
        assert!(c.percentile > 0.0 && c.percentile < 1.0);
    }

    #[test]
    fn sparse_history_falls_back_to_default() {
        let seq = EventSeq::from_pairs(&[(0, 0), (100, 0)]);
        let c = ValidityConfig::default();
        assert_eq!(estimate_delta(&seq, &c), c.default_delta);
        assert_eq!(estimate_delta(&EventSeq::new(), &c), c.default_delta);
    }

    #[test]
    fn regular_reconnections_produce_their_period() {
        // Device reconnects every 5 minutes on the same AP.
        let pairs: Vec<(Timestamp, u32)> = (0..20).map(|i| (i * 300, 0u32)).collect();
        let seq = EventSeq::from_pairs(&pairs);
        let c = ValidityConfig::default();
        assert_eq!(estimate_delta(&seq, &c), 300);
    }

    #[test]
    fn estimate_is_clamped_to_bounds() {
        // Very chatty device: every 10 seconds → clamped up to min_delta.
        let chatty: Vec<(Timestamp, u32)> = (0..50).map(|i| (i * 10, 0u32)).collect();
        let c = ValidityConfig::default();
        assert_eq!(
            estimate_delta(&EventSeq::from_pairs(&chatty), &c),
            c.min_delta
        );

        // Very quiet device: every 40 minutes (below the 4× cap) → clamped to max.
        let quiet: Vec<(Timestamp, u32)> = (0..20).map(|i| (i * 2_400, 0u32)).collect();
        assert_eq!(
            estimate_delta(&EventSeq::from_pairs(&quiet), &c),
            c.max_delta
        );
    }

    #[test]
    fn roaming_pairs_are_ignored() {
        // Alternating APs: no same-AP pair, falls back to default.
        let pairs: Vec<(Timestamp, u32)> = (0..20).map(|i| (i * 300, (i % 2) as u32)).collect();
        let c = ValidityConfig::default();
        assert_eq!(
            estimate_delta(&EventSeq::from_pairs(&pairs), &c),
            c.default_delta
        );
    }

    #[test]
    fn long_absences_do_not_skew_the_estimate() {
        // Regular 5-minute reconnections with one overnight absence.
        let mut pairs: Vec<(Timestamp, u32)> = (0..10).map(|i| (i * 300, 0u32)).collect();
        pairs.extend((0..10).map(|i| (100_000 + i * 300, 0u32)));
        let c = ValidityConfig::default();
        assert_eq!(estimate_delta(&EventSeq::from_pairs(&pairs), &c), 300);
    }
}
