//! # locater-events
//!
//! The *WiFi connectivity data model* substrate of the LOCATER reproduction
//! (paper §2, "WiFi Connectivity Data Model").
//!
//! The raw input to LOCATER is a log of **connectivity events**: tuples
//! `⟨mac address, timestamp, wap⟩` emitted whenever a device associates with an
//! access point, probes the network, changes state, etc. Events are *sporadic*: a
//! device that sits in one room for an hour may produce only a handful of events.
//! This crate models:
//!
//! * [`MacAddress`] / [`Device`] / [`DeviceId`] — devices identified by MAC address,
//!   each with a device-specific **validity period** `δ(d)`: an event at time `t` is
//!   considered valid evidence of the device's region during `(t − δ, t + δ)`,
//!   truncated at the next event of the same device.
//! * [`ConnectivityEvent`] — one log tuple, with the access point interned to an
//!   `AccessPointId` from [`locater_space`].
//! * [`Gap`] — a maximal period during which no event of a device is valid. Gaps are
//!   the *missing values* the coarse-grained localization must repair.
//! * [`Timestamp`] helpers ([`clock`]) — day-of-week / time-of-day arithmetic on the
//!   integer-second timeline used throughout the project.
//! * [`validity`] — estimation of `δ(d)` from the log itself (paper Appendix 9.1).
//!
//! ```
//! use locater_events::{gaps_in, EventSeq, Timestamp};
//! use locater_space::AccessPointId;
//!
//! // Three events of one device on AP 0, with a validity period of 60 s.
//! let seq = EventSeq::from_pairs(&[(100, 0), (220, 0), (1_000, 0)]);
//! let gaps = gaps_in(&seq, 60);
//! // 100 and 220 are within 2δ of each other: no gap. 220 → 1000 leaves one.
//! assert_eq!(gaps.len(), 1);
//! assert_eq!(gaps[0].start, 280);   // 220 + δ
//! assert_eq!(gaps[0].end, 940);     // 1000 - δ
//! assert_eq!(gaps[0].start_ap, AccessPointId::new(0));
//! let _: Timestamp = gaps[0].duration();
//! ```
//!
//! Validity intervals answer "where was the device at `t`?" directly when an
//! event covers `t`, and δ itself is estimated from the log's stationary
//! reconnection rhythm:
//!
//! ```
//! use locater_events::validity::{estimate_delta_events, ValidityConfig};
//! use locater_events::EventSeq;
//!
//! // A device reconnecting every 5 minutes on the same AP...
//! let pairs: Vec<(i64, u32)> = (0..20).map(|i| (i * 300, 0)).collect();
//! let seq = EventSeq::from_pairs(&pairs);
//! // ...earns a 5-minute validity period (clamped to the configured bounds).
//! let delta = estimate_delta_events(seq.events(), &ValidityConfig::default());
//! assert_eq!(delta, 300);
//! // An instant shortly after an event is covered by it; instants past the
//! // last event's validity are not.
//! assert!(seq.covering_event(1_300, delta).is_some());
//! assert_eq!(seq.covering_event(19 * 300 + delta + 1, delta), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod device;
mod error;
mod event;
mod gap;
mod interval;
pub mod validity;

pub use clock::{DayOfWeek, Timestamp, SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_WEEK};
pub use device::{Device, DeviceId, MacAddress};
pub use error::EventError;
pub use event::{ConnectivityEvent, EventId, EventSeq, StoredEvent};
pub use gap::{gap_between, gap_containing, gaps_in, Gap};
pub use interval::Interval;
