//! Gap detection: the "missing values" of the connectivity log.
//!
//! A *gap* (paper §2) is a maximal period during which no connectivity event of a
//! device is valid. Given two consecutive events `e_0` at `t_0` and `e_1` at `t_1`
//! with validity period `δ`, there is a gap between them iff `t_1 − t_0 > 2δ`, and the
//! gap extends over `[t_0 + δ, t_1 − δ]`.

use crate::clock::{self, Timestamp};
use crate::event::{EventSeq, StoredEvent};
use crate::interval::Interval;
use locater_space::{AccessPointId, RegionId};
use serde::{Deserialize, Serialize};

/// A gap `gap_{t0,t1}(d)` in the connectivity log of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gap {
    /// Start of the gap: `t_0 + δ`.
    pub start: Timestamp,
    /// End of the gap: `t_1 − δ`.
    pub end: Timestamp,
    /// Timestamp of the event preceding the gap (`t_0`).
    pub prev_t: Timestamp,
    /// Timestamp of the event following the gap (`t_1`).
    pub next_t: Timestamp,
    /// Access point of the event preceding the gap.
    pub start_ap: AccessPointId,
    /// Access point of the event following the gap.
    pub end_ap: AccessPointId,
}

impl Gap {
    /// Duration of the gap in seconds (`δ(gap)` in the paper's feature list).
    #[inline]
    pub fn duration(&self) -> Timestamp {
        self.end - self.start
    }

    /// The gap as a half-open interval `[start, end)`.
    #[inline]
    pub fn interval(&self) -> Interval {
        Interval::new(self.start, self.end)
    }

    /// `true` if `t` falls inside the gap.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// Region associated with the start of the gap (`gap.g_str`).
    #[inline]
    pub fn start_region(&self) -> RegionId {
        self.start_ap.region()
    }

    /// Region associated with the end of the gap (`gap.g_end`).
    #[inline]
    pub fn end_region(&self) -> RegionId {
        self.end_ap.region()
    }

    /// `true` if the device reappears in the same region it disappeared from.
    #[inline]
    pub fn same_region(&self) -> bool {
        self.start_ap.region() == self.end_ap.region()
    }

    /// Day of week in which the gap starts.
    pub fn start_day(&self) -> crate::clock::DayOfWeek {
        clock::day_of_week(self.start)
    }

    /// Day of week in which the gap ends.
    pub fn end_day(&self) -> crate::clock::DayOfWeek {
        clock::day_of_week(self.end)
    }

    /// `true` if the gap spans more than one calendar day.
    pub fn spans_days(&self) -> bool {
        clock::day_index(self.start) != clock::day_index(self.end)
    }
}

/// The gap between two *consecutive* events of one device, if their spacing exceeds
/// `2δ` (the segmented store uses this to detect gaps across segment boundaries
/// without materializing the full sequence).
pub fn gap_between(prev: &StoredEvent, next: &StoredEvent, delta: Timestamp) -> Option<Gap> {
    if next.t - prev.t > 2 * delta {
        Some(Gap {
            start: prev.t + delta,
            end: next.t - delta,
            prev_t: prev.t,
            next_t: next.t,
            start_ap: prev.ap,
            end_ap: next.ap,
        })
    } else {
        None
    }
}

/// Detects all gaps in a device's event sequence, given its validity period `delta`
/// (`GAP(d_i)` in the paper).
pub fn gaps_in(seq: &EventSeq, delta: Timestamp) -> Vec<Gap> {
    seq.consecutive_pairs()
        .filter_map(|(prev, next)| gap_between(prev, next, delta))
        .collect()
}

/// Finds the gap containing `at`, if `at` falls in one. Returns `None` both when `at`
/// is covered by an event's validity interval and when it lies before the first /
/// after the last event of the sequence (those "open" periods are treated by the
/// coarse localizer as outside-the-building rather than as gaps).
pub fn gap_containing(seq: &EventSeq, at: Timestamp, delta: Timestamp) -> Option<Gap> {
    let events = seq.events();
    if events.is_empty() {
        return None;
    }
    // Find the last event with t <= at and pair it with the next event.
    let pos = events.partition_point(|e| e.t <= at);
    if pos == 0 || pos >= events.len() {
        return None;
    }
    let gap = gap_between(&events[pos - 1], &events[pos], delta)?;
    gap.contains(at).then_some(gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::at;

    #[test]
    fn no_gap_when_events_are_close() {
        let seq = EventSeq::from_pairs(&[(100, 0), (200, 0), (290, 1)]);
        assert!(gaps_in(&seq, 60).is_empty());
    }

    #[test]
    fn gap_boundaries_follow_definition() {
        let seq = EventSeq::from_pairs(&[(1_000, 2), (5_000, 3)]);
        let gaps = gaps_in(&seq, 300);
        assert_eq!(gaps.len(), 1);
        let g = gaps[0];
        assert_eq!(g.start, 1_300);
        assert_eq!(g.end, 4_700);
        assert_eq!(g.prev_t, 1_000);
        assert_eq!(g.next_t, 5_000);
        assert_eq!(g.duration(), 3_400);
        assert_eq!(g.start_ap, AccessPointId::new(2));
        assert_eq!(g.end_ap, AccessPointId::new(3));
        assert!(!g.same_region());
        assert_eq!(g.interval(), Interval::new(1_300, 4_700));
    }

    #[test]
    fn boundary_case_exactly_two_delta_is_not_a_gap() {
        let seq = EventSeq::from_pairs(&[(0, 0), (600, 0)]);
        assert!(gaps_in(&seq, 300).is_empty());
        let seq2 = EventSeq::from_pairs(&[(0, 0), (601, 0)]);
        assert_eq!(gaps_in(&seq2, 300).len(), 1);
    }

    #[test]
    fn multiple_gaps_in_one_sequence() {
        let seq = EventSeq::from_pairs(&[(0, 0), (10_000, 1), (10_100, 1), (30_000, 0)]);
        let gaps = gaps_in(&seq, 600);
        assert_eq!(gaps.len(), 2);
        assert_eq!(gaps[0].prev_t, 0);
        assert_eq!(gaps[0].next_t, 10_000);
        assert_eq!(gaps[1].prev_t, 10_100);
        assert_eq!(gaps[1].next_t, 30_000);
    }

    #[test]
    fn gap_containing_finds_the_right_gap() {
        let seq = EventSeq::from_pairs(&[(0, 0), (10_000, 1), (20_000, 2)]);
        let delta = 600;
        let g = gap_containing(&seq, 5_000, delta).unwrap();
        assert_eq!(g.prev_t, 0);
        assert_eq!(g.next_t, 10_000);
        let g = gap_containing(&seq, 15_000, delta).unwrap();
        assert_eq!(g.prev_t, 10_000);
        // Covered instants are not in a gap.
        assert!(gap_containing(&seq, 300, delta).is_none());
        assert!(gap_containing(&seq, 10_200, delta).is_none());
        // Outside the observed span: no gap.
        assert!(gap_containing(&seq, -5_000, delta).is_none());
        assert!(gap_containing(&seq, 50_000, delta).is_none());
        // Empty sequence.
        assert!(gap_containing(&EventSeq::new(), 100, delta).is_none());
    }

    #[test]
    fn same_region_gap() {
        let seq = EventSeq::from_pairs(&[(0, 5), (10_000, 5)]);
        let g = gaps_in(&seq, 100)[0];
        assert!(g.same_region());
        assert_eq!(g.start_region(), g.end_region());
    }

    #[test]
    fn calendar_features_of_gaps() {
        // Gap starting Tuesday 23:00 and ending Wednesday 01:00 spans two days.
        let seq = EventSeq::from_pairs(&[(at(1, 22, 50, 0), 0), (at(2, 1, 10, 0), 0)]);
        let g = gaps_in(&seq, clock::minutes(10))[0];
        assert_eq!(g.start_day(), crate::clock::DayOfWeek::Tuesday);
        assert_eq!(g.end_day(), crate::clock::DayOfWeek::Wednesday);
        assert!(g.spans_days());

        let seq2 = EventSeq::from_pairs(&[(at(1, 9, 0, 0), 0), (at(1, 11, 0, 0), 0)]);
        let g2 = gaps_in(&seq2, clock::minutes(10))[0];
        assert!(!g2.spans_days());
    }
}
