//! Half-open time intervals.

use crate::clock::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open time interval `[start, end)` on the integer-second timeline.
///
/// Used for event validity intervals, gaps, ground-truth occupancy records and
/// history windows. An interval with `end <= start` is considered empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl Interval {
    /// Creates an interval `[start, end)`.
    #[inline]
    pub const fn new(start: Timestamp, end: Timestamp) -> Self {
        Self { start, end }
    }

    /// Length of the interval in seconds (0 for empty intervals).
    #[inline]
    pub fn duration(&self) -> Timestamp {
        (self.end - self.start).max(0)
    }

    /// `true` if the interval contains no instant.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// `true` if `t` lies in `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// `true` if the two intervals share at least one instant.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The overlapping portion of the two intervals, or `None` if disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Interval::new(start, end))
        } else {
            None
        }
    }

    /// Number of seconds shared by the two intervals.
    pub fn overlap_duration(&self, other: &Interval) -> Timestamp {
        self.intersection(other).map_or(0, |i| i.duration())
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Midpoint of the interval (integer division).
    pub fn midpoint(&self) -> Timestamp {
        self.start + (self.end - self.start) / 2
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let i = Interval::new(10, 20);
        assert_eq!(i.duration(), 10);
        assert!(!i.is_empty());
        assert!(i.contains(10));
        assert!(i.contains(19));
        assert!(!i.contains(20));
        assert!(!i.contains(9));
        assert_eq!(i.midpoint(), 15);
        assert_eq!(i.to_string(), "[10, 20)");
    }

    #[test]
    fn empty_intervals() {
        assert!(Interval::new(5, 5).is_empty());
        assert!(Interval::new(7, 3).is_empty());
        assert_eq!(Interval::new(7, 3).duration(), 0);
        assert!(!Interval::new(5, 5).contains(5));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        let c = Interval::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching endpoints do not overlap
        assert_eq!(a.intersection(&b), Some(Interval::new(5, 10)));
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.overlap_duration(&b), 5);
        assert_eq!(a.overlap_duration(&c), 0);
    }

    #[test]
    fn hull_contains_both() {
        let a = Interval::new(0, 5);
        let b = Interval::new(10, 12);
        assert_eq!(a.hull(&b), Interval::new(0, 12));
        assert_eq!(b.hull(&a), Interval::new(0, 12));
    }
}
