//! Error type for the connectivity data model.

use std::fmt;

/// Errors produced while parsing or validating connectivity data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventError {
    /// A device identifier was empty or a malformed hardware MAC address.
    InvalidMac(String),
    /// A timestamp was outside the acceptable range (e.g. negative at ingestion).
    InvalidTimestamp(i64),
    /// A validity period was non-positive.
    InvalidValidity(i64),
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::InvalidMac(raw) => write!(f, "invalid device identifier: {raw:?}"),
            EventError::InvalidTimestamp(t) => write!(f, "invalid timestamp: {t}"),
            EventError::InvalidValidity(d) => {
                write!(f, "invalid validity period (must be positive): {d}")
            }
        }
    }
}

impl std::error::Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(EventError::InvalidMac("x:".into())
            .to_string()
            .contains("x:"));
        assert!(EventError::InvalidTimestamp(-5).to_string().contains("-5"));
        assert!(EventError::InvalidValidity(0)
            .to_string()
            .contains("positive"));
    }
}
