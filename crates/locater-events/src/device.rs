//! Devices and MAC addresses.

use crate::clock::Timestamp;
use crate::error::EventError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a device (`d_i ∈ D` in the paper), assigned by the event store
/// in order of first appearance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Creates an id from its raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Raw index backing this id.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device#{}", self.0)
    }
}

/// A normalized MAC address (or, more generally, a device identifier string as it
/// appears in the connectivity log).
///
/// Real association logs identify devices by their 48-bit MAC address; anonymized
/// datasets (like the one used in the paper) may replace them with opaque hashes such
/// as `7fbh…`. `MacAddress` therefore accepts any non-empty identifier, normalizes it
/// to lowercase with trimmed whitespace, and validates proper `xx:xx:xx:xx:xx:xx`
/// syntax only when the string looks like a colon-separated hardware address.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MacAddress(String);

impl MacAddress {
    /// Parses and normalizes a device identifier.
    pub fn parse(raw: &str) -> Result<Self, EventError> {
        let normalized = raw.trim().to_ascii_lowercase();
        if normalized.is_empty() {
            return Err(EventError::InvalidMac(raw.to_string()));
        }
        if normalized.contains(':') {
            let octets: Vec<&str> = normalized.split(':').collect();
            let valid = octets.len() == 6
                && octets
                    .iter()
                    .all(|o| o.len() == 2 && o.chars().all(|c| c.is_ascii_hexdigit()));
            if !valid {
                return Err(EventError::InvalidMac(raw.to_string()));
            }
        }
        Ok(Self(normalized))
    }

    /// The normalized identifier string.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// `true` if the identifier is a syntactically valid colon-separated hardware MAC.
    pub fn is_hardware_mac(&self) -> bool {
        self.0.contains(':')
    }

    /// Whether the hardware address has the locally-administered bit set, which is how
    /// modern mobile OSes mark randomized (privacy) MAC addresses. Returns `false` for
    /// opaque identifiers.
    pub fn is_randomized(&self) -> bool {
        if !self.is_hardware_mac() {
            return false;
        }
        u8::from_str_radix(&self.0[0..2], 16)
            .map(|first| first & 0b10 != 0)
            .unwrap_or(false)
    }
}

impl fmt::Display for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::str::FromStr for MacAddress {
    type Err = EventError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// A device observed in the connectivity log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Dense identifier assigned by the store.
    pub id: DeviceId,
    /// The device's MAC address / log identifier.
    pub mac: MacAddress,
    /// Validity period `δ(d)` in seconds: how long one connectivity event is taken as
    /// evidence of the device's location, on each side of the event timestamp.
    pub delta: Timestamp,
}

impl Device {
    /// Creates a device with the given validity period.
    pub fn new(id: DeviceId, mac: MacAddress, delta: Timestamp) -> Self {
        Self { id, mac, delta }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.mac, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes_case_and_whitespace() {
        let mac = MacAddress::parse("  AA:BB:CC:DD:EE:0F ").unwrap();
        assert_eq!(mac.as_str(), "aa:bb:cc:dd:ee:0f");
        assert!(mac.is_hardware_mac());
    }

    #[test]
    fn parse_accepts_opaque_identifiers() {
        let mac = MacAddress::parse("7fbh-anon-123").unwrap();
        assert_eq!(mac.as_str(), "7fbh-anon-123");
        assert!(!mac.is_hardware_mac());
        assert!(!mac.is_randomized());
    }

    #[test]
    fn parse_rejects_empty_and_malformed_hardware_macs() {
        assert!(MacAddress::parse("").is_err());
        assert!(MacAddress::parse("   ").is_err());
        assert!(MacAddress::parse("aa:bb:cc").is_err());
        assert!(MacAddress::parse("aa:bb:cc:dd:ee:gg").is_err());
        assert!(MacAddress::parse("aaa:bb:cc:dd:ee:ff").is_err());
    }

    #[test]
    fn randomized_mac_detection_uses_local_bit() {
        assert!(MacAddress::parse("02:00:00:00:00:01")
            .unwrap()
            .is_randomized());
        assert!(MacAddress::parse("da:a1:19:00:00:01")
            .unwrap()
            .is_randomized());
        assert!(!MacAddress::parse("00:16:3e:00:00:01")
            .unwrap()
            .is_randomized());
    }

    #[test]
    fn from_str_matches_parse() {
        let a: MacAddress = "AA:BB:CC:DD:EE:FF".parse().unwrap();
        let b = MacAddress::parse("aa:bb:cc:dd:ee:ff").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn device_display_contains_mac_and_id() {
        let d = Device::new(
            DeviceId::new(3),
            MacAddress::parse("aa:bb:cc:dd:ee:ff").unwrap(),
            600,
        );
        assert_eq!(d.to_string(), "aa:bb:cc:dd:ee:ff (device#3)");
        assert_eq!(d.delta, 600);
    }

    #[test]
    fn device_id_display_and_index() {
        assert_eq!(DeviceId::new(9).to_string(), "device#9");
        assert_eq!(DeviceId::new(9).index(), 9);
    }
}
