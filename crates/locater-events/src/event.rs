//! Connectivity events and per-device event sequences.

use crate::clock::Timestamp;
use crate::device::DeviceId;
use crate::interval::Interval;
use locater_space::{AccessPointId, RegionId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a connectivity event (`eid` in the paper), unique within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EventId(pub u64);

impl EventId {
    /// Creates an event id from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One tuple of the connectivity events table `E`: device `d` connected to access
/// point `wap` at time `t` (paper §2, Fig. 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectivityEvent {
    /// Event identifier.
    pub id: EventId,
    /// Device that produced the event.
    pub device: DeviceId,
    /// Timestamp of the association event.
    pub t: Timestamp,
    /// Access point that logged the event.
    pub ap: AccessPointId,
}

impl ConnectivityEvent {
    /// Creates an event.
    pub fn new(id: EventId, device: DeviceId, t: Timestamp, ap: AccessPointId) -> Self {
        Self { id, device, t, ap }
    }

    /// The region this event places the device in.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.ap.region()
    }
}

/// Compact per-device representation of an event (the device id is implied by the
/// sequence the event is stored in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredEvent {
    /// Event identifier.
    pub id: EventId,
    /// Timestamp of the association event.
    pub t: Timestamp,
    /// Access point that logged the event.
    pub ap: AccessPointId,
}

impl StoredEvent {
    /// Creates a stored event.
    pub fn new(id: EventId, t: Timestamp, ap: AccessPointId) -> Self {
        Self { id, t, ap }
    }

    /// The region this event places the device in.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.ap.region()
    }
}

/// A time-sorted sequence of events of a single device (`E(d_i)` in the paper).
///
/// The sequence is the unit the gap-detection and validity logic operates on.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSeq {
    events: Vec<StoredEvent>,
}

impl EventSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sequence from `(timestamp, ap raw id)` pairs, sorting them by time.
    /// Event ids are assigned positionally. Intended for tests and examples.
    pub fn from_pairs(pairs: &[(Timestamp, u32)]) -> Self {
        let mut events: Vec<StoredEvent> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(t, ap))| {
                StoredEvent::new(EventId::new(i as u64), t, AccessPointId::new(ap))
            })
            .collect();
        events.sort_by_key(|e| e.t);
        Self { events }
    }

    /// Appends an event, keeping the sequence sorted by `(t, id)`. Appending in
    /// timestamp order is O(1); out-of-order events are inserted at the right
    /// position. The event id breaks timestamp ties, so the sequence is a pure
    /// function of the event *set* — any backfill/splice order yields the same
    /// bytes (normal ingestion assigns monotone ids, for which `(t, id)` order
    /// coincides with the old insertion order).
    pub fn push(&mut self, event: StoredEvent) {
        let key = (event.t, event.id);
        match self.events.last() {
            Some(last) if (last.t, last.id) > key => {
                let pos = self.events.partition_point(|e| (e.t, e.id) <= key);
                self.events.insert(pos, event);
            }
            _ => self.events.push(event),
        }
    }

    /// Number of events in the sequence.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the device has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, sorted by time.
    pub fn events(&self) -> &[StoredEvent] {
        &self.events
    }

    /// First event, if any.
    pub fn first(&self) -> Option<&StoredEvent> {
        self.events.first()
    }

    /// Last event, if any.
    pub fn last(&self) -> Option<&StoredEvent> {
        self.events.last()
    }

    /// Events with `t` in `[range.start, range.end)`, as a sub-slice.
    pub fn in_range(&self, range: Interval) -> &[StoredEvent] {
        let lo = self.events.partition_point(|e| e.t < range.start);
        let hi = self.events.partition_point(|e| e.t < range.end);
        &self.events[lo..hi]
    }

    /// Index of the last event with `t <= at`, if any.
    pub fn index_at_or_before(&self, at: Timestamp) -> Option<usize> {
        let pos = self.events.partition_point(|e| e.t <= at);
        pos.checked_sub(1)
    }

    /// The validity interval of the event at `index`, given validity period `delta`:
    /// `(t − δ, t + δ)` truncated at the timestamp of the next event of the device
    /// (paper §2, Fig. 2).
    pub fn validity_interval(&self, index: usize, delta: Timestamp) -> Interval {
        let event = &self.events[index];
        let end = match self.events.get(index + 1) {
            Some(next) => next.t.min(event.t + delta),
            None => event.t + delta,
        };
        Interval::new(event.t - delta, end)
    }

    /// The event whose validity interval covers `at` (the latest such event if several
    /// overlap), together with its index.
    pub fn covering_event(&self, at: Timestamp, delta: Timestamp) -> Option<(usize, &StoredEvent)> {
        // Candidate: last event with t <= at, or the next event if `at` falls in its
        // backward validity window.
        if self.events.is_empty() {
            return None;
        }
        let pos = self.events.partition_point(|e| e.t <= at);
        if pos < self.events.len() {
            let next = &self.events[pos];
            // `at` may be covered by the *next* event's backward validity.
            if self.validity_interval(pos, delta).contains(at) {
                // Prefer the earlier event if it also covers `at`? Paper picks the
                // event whose interval contains t_q; when both do, the later event is
                // the most recent evidence, but its interval starts before the earlier
                // event ends only when events are < δ apart, in which case both APs
                // are equally valid. We prefer the earlier (already-seen) event below
                // and fall back to this one.
                if pos == 0 || !self.validity_interval(pos - 1, delta).contains(at) {
                    return Some((pos, next));
                }
            }
        }
        let idx = pos.checked_sub(1)?;
        if self.validity_interval(idx, delta).contains(at) {
            Some((idx, &self.events[idx]))
        } else {
            None
        }
    }

    /// Iterates over consecutive event pairs `(e_k, e_{k+1})`.
    pub fn consecutive_pairs(&self) -> impl Iterator<Item = (&StoredEvent, &StoredEvent)> {
        self.events.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Time span `[first.t, last.t]` covered by the sequence, if non-empty.
    pub fn span(&self) -> Option<Interval> {
        match (self.first(), self.last()) {
            (Some(f), Some(l)) => Some(Interval::new(f.t, l.t + 1)),
            _ => None,
        }
    }

    /// Approximate heap footprint of the sequence in bytes (allocated
    /// capacity, not just live length — the operator-facing residency gauge).
    pub fn approx_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<StoredEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_by_time() {
        let seq = EventSeq::from_pairs(&[(300, 1), (100, 0), (200, 2)]);
        let ts: Vec<Timestamp> = seq.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![100, 200, 300]);
        assert_eq!(seq.len(), 3);
        assert!(!seq.is_empty());
    }

    #[test]
    fn push_keeps_order_for_out_of_order_events() {
        let mut seq = EventSeq::new();
        seq.push(StoredEvent::new(
            EventId::new(0),
            100,
            AccessPointId::new(0),
        ));
        seq.push(StoredEvent::new(
            EventId::new(1),
            300,
            AccessPointId::new(1),
        ));
        seq.push(StoredEvent::new(
            EventId::new(2),
            200,
            AccessPointId::new(2),
        ));
        let ts: Vec<Timestamp> = seq.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn in_range_returns_subslice() {
        let seq = EventSeq::from_pairs(&[(100, 0), (200, 0), (300, 0), (400, 0)]);
        let mid = seq.in_range(Interval::new(150, 350));
        assert_eq!(mid.len(), 2);
        assert_eq!(mid[0].t, 200);
        assert_eq!(mid[1].t, 300);
        assert!(seq.in_range(Interval::new(500, 600)).is_empty());
        assert_eq!(seq.in_range(Interval::new(100, 101)).len(), 1);
    }

    #[test]
    fn validity_interval_truncates_at_next_event() {
        // Mirrors Fig. 2: e1's validity ends at t2 because t2 - t1 < δ.
        let seq = EventSeq::from_pairs(&[(1_000, 0), (1_030, 0), (5_000, 1)]);
        let delta = 60;
        assert_eq!(seq.validity_interval(0, delta), Interval::new(940, 1_030));
        assert_eq!(seq.validity_interval(1, delta), Interval::new(970, 1_090));
        assert_eq!(seq.validity_interval(2, delta), Interval::new(4_940, 5_060));
    }

    #[test]
    fn covering_event_finds_valid_event() {
        let seq = EventSeq::from_pairs(&[(1_000, 3), (2_000, 4)]);
        let delta = 100;
        // Covered by first event's forward validity.
        let (i, e) = seq.covering_event(1_050, delta).unwrap();
        assert_eq!(i, 0);
        assert_eq!(e.ap, AccessPointId::new(3));
        // Covered by second event's backward validity.
        let (i, e) = seq.covering_event(1_950, delta).unwrap();
        assert_eq!(i, 1);
        assert_eq!(e.ap, AccessPointId::new(4));
        // In the gap: not covered.
        assert!(seq.covering_event(1_500, delta).is_none());
        // Before all events but within backward validity of the first.
        assert!(seq.covering_event(950, delta).is_some());
        // Way before anything.
        assert!(seq.covering_event(0, delta).is_none());
    }

    #[test]
    fn covering_event_prefers_earlier_when_overlapping() {
        let seq = EventSeq::from_pairs(&[(1_000, 3), (1_050, 4)]);
        let delta = 200;
        // 1010 is covered by both; the earlier event wins.
        let (i, _) = seq.covering_event(1_010, delta).unwrap();
        assert_eq!(i, 0);
        // 1060 is after the second event: second event covers it.
        let (i, _) = seq.covering_event(1_060, delta).unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn index_at_or_before_and_span() {
        let seq = EventSeq::from_pairs(&[(100, 0), (200, 0)]);
        assert_eq!(seq.index_at_or_before(50), None);
        assert_eq!(seq.index_at_or_before(100), Some(0));
        assert_eq!(seq.index_at_or_before(150), Some(0));
        assert_eq!(seq.index_at_or_before(500), Some(1));
        assert_eq!(seq.span(), Some(Interval::new(100, 201)));
        assert_eq!(EventSeq::new().span(), None);
    }

    #[test]
    fn consecutive_pairs_are_adjacent() {
        let seq = EventSeq::from_pairs(&[(1, 0), (2, 0), (3, 0)]);
        let pairs: Vec<(Timestamp, Timestamp)> =
            seq.consecutive_pairs().map(|(a, b)| (a.t, b.t)).collect();
        assert_eq!(pairs, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn event_region_is_ap_region() {
        let e = ConnectivityEvent::new(EventId::new(1), DeviceId::new(0), 5, AccessPointId::new(7));
        assert_eq!(e.region(), AccessPointId::new(7).region());
        let s = StoredEvent::new(EventId::new(1), 5, AccessPointId::new(7));
        assert_eq!(s.region(), e.region());
        assert_eq!(EventId::new(3).to_string(), "e3");
    }
}
