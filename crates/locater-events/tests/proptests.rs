//! Property-based tests for the connectivity data model invariants.

use locater_events::{clock, gaps_in, EventSeq, Interval};
use proptest::prelude::*;

fn arb_event_times() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..2_000_000, 1..200)
}

proptest! {
    /// Gaps never overlap event validity: every gap lies strictly between the
    /// timestamps of its bounding events, shrunk by delta on both sides.
    #[test]
    fn gaps_lie_between_their_bounding_events(times in arb_event_times(), delta in 1i64..3_600) {
        let pairs: Vec<(i64, u32)> = times.iter().map(|&t| (t, 0u32)).collect();
        let seq = EventSeq::from_pairs(&pairs);
        for gap in gaps_in(&seq, delta) {
            prop_assert_eq!(gap.start, gap.prev_t + delta);
            prop_assert_eq!(gap.end, gap.next_t - delta);
            prop_assert!(gap.duration() > 0);
            prop_assert!(gap.start > gap.prev_t);
            prop_assert!(gap.end < gap.next_t);
        }
    }

    /// The union of validity intervals and gaps covers the whole span between the
    /// first and last event with no overlaps between consecutive gaps.
    #[test]
    fn gaps_are_disjoint_and_ordered(times in arb_event_times(), delta in 1i64..3_600) {
        let pairs: Vec<(i64, u32)> = times.iter().map(|&t| (t, 0u32)).collect();
        let seq = EventSeq::from_pairs(&pairs);
        let gaps = gaps_in(&seq, delta);
        for w in gaps.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Any instant inside a detected gap is reported as uncovered by covering_event,
    /// and any instant covered by an event is never inside a gap.
    #[test]
    fn coverage_and_gaps_are_mutually_exclusive(times in arb_event_times(), delta in 1i64..3_600, probe in 0i64..2_000_000) {
        let pairs: Vec<(i64, u32)> = times.iter().map(|&t| (t, 0u32)).collect();
        let seq = EventSeq::from_pairs(&pairs);
        let covered = seq.covering_event(probe, delta).is_some();
        let in_gap = locater_events::gap_containing(&seq, probe, delta).is_some();
        prop_assert!(!(covered && in_gap), "probe {} both covered and in a gap", probe);
    }

    /// EventSeq::push maintains sorted order regardless of insertion order.
    #[test]
    fn push_maintains_sorted_order(times in arb_event_times()) {
        use locater_events::{EventId, StoredEvent};
        use locater_space::AccessPointId;
        let mut seq = EventSeq::new();
        for (i, &t) in times.iter().enumerate() {
            seq.push(StoredEvent::new(EventId::new(i as u64), t, AccessPointId::new(0)));
        }
        let ts: Vec<i64> = seq.events().iter().map(|e| e.t).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ts, sorted);
    }

    /// Interval intersection is commutative and contained in both operands.
    #[test]
    fn interval_intersection_properties(a in 0i64..1_000, b in 0i64..1_000, c in 0i64..1_000, d in 0i64..1_000) {
        let x = Interval::new(a.min(b), a.max(b));
        let y = Interval::new(c.min(d), c.max(d));
        let xy = x.intersection(&y);
        let yx = y.intersection(&x);
        prop_assert_eq!(xy, yx);
        if let Some(i) = xy {
            prop_assert!(i.start >= x.start && i.end <= x.end);
            prop_assert!(i.start >= y.start && i.end <= y.end);
            prop_assert!(x.overlaps(&y));
        } else {
            prop_assert!(!x.overlaps(&y) || x.is_empty() || y.is_empty());
        }
    }

    /// Day/time decomposition reassembles to the original timestamp.
    #[test]
    fn clock_decomposition_roundtrips(t in 0i64..100_000_000) {
        let day = clock::day_index(t);
        let sod = clock::seconds_of_day(t);
        prop_assert_eq!(day * clock::SECONDS_PER_DAY + sod, t);
        prop_assert!((0..clock::SECONDS_PER_DAY).contains(&sod));
        prop_assert_eq!(clock::day_of_week(t).index(), (day % 7) as usize);
    }
}
