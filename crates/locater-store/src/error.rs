//! Ingestion, loading and snapshot errors.

use locater_events::EventError;
use std::fmt;

/// Errors produced while ingesting connectivity events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The event referenced an access point that is not part of the space metadata.
    UnknownAccessPoint(String),
    /// The device identifier was invalid.
    InvalidDevice(EventError),
    /// The timestamp was negative (events are expected after the deployment epoch).
    InvalidTimestamp(i64),
    /// A CSV / NDJSON line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// 1-based column at which the offending field starts (1 when unknown).
        column: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An ingestion error annotated with the input line it occurred on (the
    /// streaming loaders wrap semantic errors — unknown AP, bad MAC — so a bad
    /// row in a million-line file is locatable).
    AtLine {
        /// 1-based line number of the offending input row.
        line: usize,
        /// The underlying error.
        source: Box<IngestError>,
    },
    /// The write-ahead log append failed, so the event was rejected *before*
    /// mutating the in-memory store (durable ingest never applies an event it
    /// could not log). Carries the rendered [`crate::wal::WalError`] — this
    /// variant stays `Clone`/`Eq` like the rest of the enum.
    Wal(String),
}

impl IngestError {
    /// Wraps an error with the 1-based input line it occurred on. Parse errors
    /// already carrying a position are returned unchanged.
    pub fn at_line(self, line: usize) -> Self {
        match self {
            IngestError::Malformed { .. } | IngestError::AtLine { .. } => self,
            other => IngestError::AtLine {
                line,
                source: Box::new(other),
            },
        }
    }

    /// The 1-based input line this error is attached to, if any.
    pub fn line(&self) -> Option<usize> {
        match self {
            IngestError::Malformed { line, .. } | IngestError::AtLine { line, .. } => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::UnknownAccessPoint(name) => {
                write!(f, "unknown access point in event: {name}")
            }
            IngestError::InvalidDevice(err) => write!(f, "invalid device: {err}"),
            IngestError::InvalidTimestamp(t) => write!(f, "invalid event timestamp: {t}"),
            IngestError::Malformed {
                line,
                column,
                reason,
            } => {
                write!(
                    f,
                    "malformed event at line {line}, column {column}: {reason}"
                )
            }
            IngestError::AtLine { line, source } => write!(f, "line {line}: {source}"),
            IngestError::Wal(reason) => write!(f, "write-ahead log append failed: {reason}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::InvalidDevice(err) => Some(err),
            IngestError::AtLine { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<EventError> for IngestError {
    fn from(err: EventError) -> Self {
        IngestError::InvalidDevice(err)
    }
}

/// Errors produced while reading or writing binary store snapshots (and the
/// streaming loaders' I/O layer).
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a snapshot at all.
    NotASnapshot,
    /// The snapshot was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// The input ended before the declared payload was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum did not match — the file is corrupt.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The payload decoded but violated a structural invariant.
    Corrupt(String),
    /// The store cannot be represented in the snapshot format (e.g. a device
    /// identifier longer than the format's length field allows). Reported at
    /// *write* time so a bad snapshot is never produced.
    Unencodable(String),
    /// The embedded space metadata could not be rebuilt.
    Space(String),
    /// Event ingestion failed while streaming a CSV/NDJSON source.
    Ingest(IngestError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "snapshot I/O error: {err}"),
            StoreError::NotASnapshot => write!(f, "not a LOCATER snapshot (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads up to {supported})"
            ),
            StoreError::Truncated { needed, available } => write!(
                f,
                "truncated snapshot: needed {needed} bytes, only {available} available"
            ),
            StoreError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            StoreError::Corrupt(reason) => write!(f, "corrupt snapshot payload: {reason}"),
            StoreError::Unencodable(reason) => write!(f, "cannot encode snapshot: {reason}"),
            StoreError::Space(reason) => write!(f, "invalid embedded space metadata: {reason}"),
            StoreError::Ingest(err) => write!(f, "ingestion failed: {err}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            StoreError::Ingest(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

impl From<IngestError> for StoreError {
    fn from(err: IngestError) -> Self {
        StoreError::Ingest(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = IngestError::UnknownAccessPoint("wap9".into());
        assert!(e.to_string().contains("wap9"));
        let e = IngestError::InvalidTimestamp(-3);
        assert!(e.to_string().contains("-3"));
        let e: IngestError = EventError::InvalidMac("".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e = IngestError::Malformed {
            line: 7,
            column: 4,
            reason: "missing field".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("column 4"));
        assert_eq!(e.line(), Some(7));
    }

    #[test]
    fn at_line_wraps_semantic_errors_only_once() {
        let e = IngestError::UnknownAccessPoint("wap9".into()).at_line(12);
        assert_eq!(e.line(), Some(12));
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("wap9"));
        assert!(std::error::Error::source(&e).is_some());
        // Re-wrapping keeps the original position.
        let e = e.at_line(99);
        assert_eq!(e.line(), Some(12));
        // Parse errors already carry their position and are left alone.
        let parse = IngestError::Malformed {
            line: 3,
            column: 1,
            reason: "x".into(),
        }
        .at_line(50);
        assert_eq!(parse.line(), Some(3));
    }

    #[test]
    fn store_error_displays_each_variant() {
        assert!(StoreError::NotASnapshot.to_string().contains("magic"));
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = StoreError::Truncated {
            needed: 16,
            available: 4,
        };
        assert!(e.to_string().contains("16"));
        let e = StoreError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        assert!(StoreError::Corrupt("bad".into())
            .to_string()
            .contains("bad"));
        assert!(StoreError::Space("no rooms".into())
            .to_string()
            .contains("no rooms"));
        let e: StoreError = IngestError::InvalidTimestamp(-1).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: StoreError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
    }
}
