//! Ingestion and storage errors.

use locater_events::EventError;
use std::fmt;

/// Errors produced while ingesting connectivity events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The event referenced an access point that is not part of the space metadata.
    UnknownAccessPoint(String),
    /// The device identifier was invalid.
    InvalidDevice(EventError),
    /// The timestamp was negative (events are expected after the deployment epoch).
    InvalidTimestamp(i64),
    /// A CSV line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::UnknownAccessPoint(name) => {
                write!(f, "unknown access point in event: {name}")
            }
            IngestError::InvalidDevice(err) => write!(f, "invalid device: {err}"),
            IngestError::InvalidTimestamp(t) => write!(f, "invalid event timestamp: {t}"),
            IngestError::Malformed { line, reason } => {
                write!(f, "malformed event at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::InvalidDevice(err) => Some(err),
            _ => None,
        }
    }
}

impl From<EventError> for IngestError {
    fn from(err: EventError) -> Self {
        IngestError::InvalidDevice(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = IngestError::UnknownAccessPoint("wap9".into());
        assert!(e.to_string().contains("wap9"));
        let e = IngestError::InvalidTimestamp(-3);
        assert!(e.to_string().contains("-3"));
        let e: IngestError = EventError::InvalidMac("".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e = IngestError::Malformed {
            line: 7,
            reason: "missing field".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
