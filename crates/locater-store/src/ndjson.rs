//! NDJSON (newline-delimited JSON) import of connectivity events.
//!
//! Large measured WiFi corpora are commonly shipped as one-JSON-object-per-line
//! streams, which compress well and can be ingested without ever holding the
//! whole dataset in memory. Each line is an object with the same fields as a
//! CSV row:
//!
//! ```json
//! {"mac": "aa:bb:cc:dd:ee:01", "t": 1200, "ap": "wap1"}
//! ```
//!
//! Blank lines and `#` comment lines are skipped; parse errors carry the
//! 1-based line number, like the CSV loader's.

use crate::csv::RawEvent;
use crate::error::IngestError;

/// Parses one NDJSON line into an event. Returns `Ok(None)` for blank lines and
/// `#` comments; `line_no` is the 1-based position used in error messages.
pub fn parse_ndjson_line(line: &str, line_no: usize) -> Result<Option<RawEvent>, IngestError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    serde_json::from_str::<RawEvent>(trimmed)
        .map(Some)
        .map_err(|err| IngestError::Malformed {
            line: line_no,
            column: 1,
            reason: format!("invalid NDJSON event: {err}"),
        })
}

/// Serializes events as NDJSON, one object per line (the inverse of
/// [`parse_ndjson`]).
pub fn format_ndjson(events: &[RawEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48);
    for event in events {
        out.push_str(&serde_json::to_string(event).expect("RawEvent serializes"));
        out.push('\n');
    }
    out
}

/// Parses a full NDJSON document into events (for small inputs; large files
/// should stream through [`crate::EventStore::load_ndjson_reader`]).
pub fn parse_ndjson(ndjson: &str) -> Result<Vec<RawEvent>, IngestError> {
    let mut out = Vec::new();
    for (idx, line) in ndjson.lines().enumerate() {
        if let Some(event) = parse_ndjson_line(line, idx + 1)? {
            out.push(event);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_events() {
        let events = vec![
            RawEvent::new("aa:bb:cc:dd:ee:01", 100, "wap1"),
            RawEvent::new("device-2", 230, "wap3"),
        ];
        let ndjson = format_ndjson(&events);
        assert_eq!(ndjson.lines().count(), 2);
        assert_eq!(parse_ndjson(&ndjson).unwrap(), events);
    }

    #[test]
    fn blanks_and_comments_are_skipped() {
        let text = "\n# a comment\n{\"mac\":\"d1\",\"t\":5,\"ap\":\"wap1\"}\n";
        let parsed = parse_ndjson(text).unwrap();
        assert_eq!(parsed, vec![RawEvent::new("d1", 5, "wap1")]);
    }

    #[test]
    fn bad_lines_report_their_position() {
        let err = parse_ndjson("{\"mac\":\"d1\",\"t\":5,\"ap\":\"wap1\"}\nnot-json\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 2, .. }));
        assert!(err.to_string().contains("NDJSON"));
        let err = parse_ndjson("{\"mac\":\"d1\"}\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 1, .. }));
    }
}
