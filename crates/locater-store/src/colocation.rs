//! The incremental co-location index: per-AP, time-bucketed posting lists.
//!
//! Fine-grained localization (paper §4.1) is dominated by *device affinity*
//! computation: for every candidate neighbor pair the engine counts, over a
//! history window, the events of each device for which the other device has an
//! event on the **same access point** within the event's validity period. Run
//! against raw timelines that is a per-event rescan of the neighbor's history
//! around every event — the bottleneck the paper's caching section (§5) was
//! written to amortize, and one that every *cold* edge still pays.
//!
//! The [`ColocationIndex`] removes the rescan. For every device it keeps one
//! posting list per access point the device ever connected to
//! ([`ApPostings`]), holding the sorted event timestamps as one flat array
//! with a time-bucket offset table at the store's segment span
//! ([`DeviceTimeline`] uses the same span, so index buckets and storage
//! segments prune identically). With it, a pair affinity becomes a
//! *bucket-intersection merge*:
//!
//! * APs only one of the devices ever touched contribute their window event
//!   count through the device's all-APs multiset — no per-event work at all;
//! * APs both devices touched are resolved by merging the two sorted
//!   timestamp slices in place (no copies): covered stretches are counted
//!   run-length-wise, disjoint stretches are skipped by binary search.
//!
//! The index is **part of the store, not a cache**: [`crate::EventStore`]
//! updates it in the same mutation that appends the event to the timeline
//! (O(1) amortized for in-order arrivals — an append to one posting list and
//! its bucket table), so readers can never observe a stale index and the
//! epoch table does not need to stamp it. Answers derived from the index are
//! **bit-identical** to timeline scans by construction: the index holds
//! exactly the multiset of `(t, ap)` pairs of the timeline, and the affinity
//! engine counts the same events in a different order (sums are
//! order-independent).
//!
//! Rebuilding from timelines is deterministic
//! and yields the same structure as incremental maintenance, whatever the
//! ingestion order — posting lists are sorted multisets of timestamps — so
//! snapshot loads may either rebuild or decode an embedded copy (see
//! [`crate::snapshot`]) and per-device store partitions ([`crate::EventStore::split`] /
//! `rejoin`) round-trip the index alongside the timelines.

use crate::segment::DeviceTimeline;
use locater_events::{DeviceId, Interval, Timestamp};
use locater_space::AccessPointId;

/// One entry of the bucket offset table: the events of bucket `bucket`
/// (timestamps in `[bucket·span, (bucket+1)·span)`) start at `start` in the
/// flat timestamp array and run until the next entry's `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BucketRef {
    pub(crate) bucket: i64,
    pub(crate) start: usize,
}

/// A sorted multiset of event timestamps with a time-bucket offset table —
/// the storage shared by the per-AP posting lists and each device's all-APs
/// list.
///
/// Timestamps are one flat ascending array (duplicates allowed — one entry
/// per event), so range queries are plain binary searches and merge code
/// borrows sub-slices without copying. The bucket table records where each
/// span-sized time bucket starts; it makes out-of-order splices local and is
/// the unit the snapshot format and the operator-facing stats count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketedTimestamps {
    span: Timestamp,
    ts: Vec<Timestamp>,
    buckets: Vec<BucketRef>,
}

impl BucketedTimestamps {
    pub(crate) fn new(span: Timestamp) -> Self {
        Self {
            span: span.max(1),
            ts: Vec::new(),
            buckets: Vec::new(),
        }
    }

    /// Number of timestamps held.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// `true` if no timestamps are held.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Number of time buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The full sorted timestamp array.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.ts
    }

    /// The `(bucket id, timestamps)` runs, oldest first — the snapshot
    /// format's unit.
    pub(crate) fn bucket_runs(&self) -> impl Iterator<Item = (i64, &[Timestamp])> + '_ {
        self.buckets.iter().enumerate().map(|(idx, bucket)| {
            let end = self
                .buckets
                .get(idx + 1)
                .map(|next| next.start)
                .unwrap_or(self.ts.len());
            (bucket.bucket, &self.ts[bucket.start..end])
        })
    }

    /// Records one timestamp (O(1) amortized for in-order arrivals;
    /// out-of-order timestamps splice into place).
    pub(crate) fn record(&mut self, t: Timestamp) {
        let bucket = t.div_euclid(self.span);
        match self.buckets.last() {
            None => {
                self.buckets.push(BucketRef { bucket, start: 0 });
                self.ts.push(t);
            }
            Some(last) if bucket == last.bucket => match self.ts.last() {
                Some(&max) if t < max => {
                    // In-bucket out-of-order arrival: splice within the tail
                    // bucket (the table is untouched — no later buckets).
                    let start = last.start;
                    let pos = start + self.ts[start..].partition_point(|&x| x <= t);
                    self.ts.insert(pos, t);
                }
                _ => self.ts.push(t),
            },
            Some(last) if bucket > last.bucket => {
                self.buckets.push(BucketRef {
                    bucket,
                    start: self.ts.len(),
                });
                self.ts.push(t);
            }
            Some(_) => {
                // Out-of-order arrival into an earlier bucket.
                let idx = self.buckets.partition_point(|b| b.bucket < bucket);
                let pos = if idx < self.buckets.len() && self.buckets[idx].bucket == bucket {
                    let start = self.buckets[idx].start;
                    let end = self
                        .buckets
                        .get(idx + 1)
                        .map(|next| next.start)
                        .unwrap_or(self.ts.len());
                    start + self.ts[start..end].partition_point(|&x| x <= t)
                } else {
                    let pos = self.buckets[idx].start;
                    self.buckets.insert(idx, BucketRef { bucket, start: pos });
                    pos
                };
                self.ts.insert(pos, t);
                for bucket_ref in &mut self.buckets {
                    if bucket_ref.start > pos
                        || (bucket_ref.start == pos && bucket_ref.bucket > bucket)
                    {
                        bucket_ref.start += 1;
                    }
                }
            }
        }
    }

    /// The sub-slice of timestamps in `[range.start, range.end)`, zero
    /// copies. The coarse bounds come from the compact bucket table (cheap,
    /// contiguous binary searches); only the two boundary buckets are probed
    /// in the timestamp array itself.
    pub fn slice_in(&self, range: Interval) -> &[Timestamp] {
        if range.end <= range.start {
            return &[];
        }
        let lo_bucket = range.start.div_euclid(self.span);
        let hi_bucket = (range.end - 1).div_euclid(self.span);
        let bi_lo = self.buckets.partition_point(|b| b.bucket < lo_bucket);
        let bi_hi = self.buckets.partition_point(|b| b.bucket <= hi_bucket);
        if bi_lo >= bi_hi {
            return &[];
        }
        let coarse_lo = self.buckets[bi_lo].start;
        let coarse_hi = self
            .buckets
            .get(bi_hi)
            .map(|b| b.start)
            .unwrap_or(self.ts.len());
        // Precise bounds inside the two boundary buckets.
        let first_end = self
            .buckets
            .get(bi_lo + 1)
            .map(|b| b.start)
            .unwrap_or(self.ts.len())
            .min(coarse_hi);
        let lo = coarse_lo + self.ts[coarse_lo..first_end].partition_point(|&t| t < range.start);
        let last_start = self.buckets[bi_hi - 1].start.max(lo);
        let hi = last_start + self.ts[last_start..coarse_hi].partition_point(|&t| t < range.end);
        &self.ts[lo..hi]
    }

    /// Number of timestamps in `[range.start, range.end)`.
    pub fn count_in(&self, range: Interval) -> usize {
        self.slice_in(range).len()
    }

    /// `true` if any timestamp lies in `[range.start, range.end)`.
    pub fn any_in(&self, range: Interval) -> bool {
        let lo = self.ts.partition_point(|&t| t < range.start);
        lo < self.ts.len() && self.ts[lo] < range.end
    }

    /// The timestamps in `[range.start, range.end)`, ascending.
    pub fn timestamps_in(&self, range: Interval) -> impl Iterator<Item = Timestamp> + '_ {
        self.slice_in(range).iter().copied()
    }

    /// A merge cursor for a sequence of *non-decreasing* lower bounds — the
    /// shape of the device-affinity merge, where the probed validity windows
    /// advance with the other device's event timestamps.
    pub fn cursor(&self) -> PostingCursor<'_> {
        PostingCursor {
            ts: &self.ts,
            idx: 0,
        }
    }

    /// Drops every bucket with id `< cut_bucket` (and with it exactly the
    /// timestamps `< cut_bucket · span` — buckets partition time) and releases
    /// the freed capacity. Returns the number of timestamps removed.
    pub(crate) fn trim_before_bucket(&mut self, cut_bucket: i64) -> usize {
        let n = self.buckets.partition_point(|b| b.bucket < cut_bucket);
        if n == 0 {
            return 0;
        }
        let removed = self
            .buckets
            .get(n)
            .map(|b| b.start)
            .unwrap_or(self.ts.len());
        self.ts.drain(..removed);
        self.buckets.drain(..n);
        for bucket in &mut self.buckets {
            bucket.start -= removed;
        }
        self.ts.shrink_to_fit();
        self.buckets.shrink_to_fit();
        removed
    }

    /// Approximate heap footprint in bytes (allocated capacity).
    pub fn approx_bytes(&self) -> usize {
        self.ts.capacity() * std::mem::size_of::<Timestamp>()
            + self.buckets.capacity() * std::mem::size_of::<BucketRef>()
    }
}

/// Forward-only cursor over a sorted timestamp slice.
///
/// [`PostingCursor::advance_to`] must be called with non-decreasing bounds;
/// the cursor then amortizes a whole probe sequence to one pass over the list
/// (a two-pointer merge with binary-searched jumps) instead of one standalone
/// binary search per probe.
#[derive(Debug, Clone)]
pub struct PostingCursor<'a> {
    ts: &'a [Timestamp],
    idx: usize,
}

impl PostingCursor<'_> {
    /// The first timestamp `>= lo`, or `None` when the list is exhausted.
    /// Successive `lo` values must be non-decreasing.
    pub fn advance_to(&mut self, lo: Timestamp) -> Option<Timestamp> {
        self.idx += self.ts[self.idx..].partition_point(|&t| t < lo);
        self.ts.get(self.idx).copied()
    }
}

/// Sorted event timestamps of one `(device, access point)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApPostings {
    ap: AccessPointId,
    ts: BucketedTimestamps,
}

impl ApPostings {
    pub(crate) fn new(ap: AccessPointId, span: Timestamp) -> Self {
        Self {
            ap,
            ts: BucketedTimestamps::new(span),
        }
    }

    /// The access point this list indexes.
    pub fn ap(&self) -> AccessPointId {
        self.ap
    }

    /// The bucketed timestamps on this access point.
    pub fn timestamps(&self) -> &BucketedTimestamps {
        &self.ts
    }

    /// Number of events on this access point.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// `true` if the list holds no events (never the case inside an index).
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Number of time buckets.
    pub fn num_buckets(&self) -> usize {
        self.ts.num_buckets()
    }

    pub(crate) fn record(&mut self, t: Timestamp) {
        self.ts.record(t)
    }

    /// See [`BucketedTimestamps::slice_in`].
    pub fn slice_in(&self, range: Interval) -> &[Timestamp] {
        self.ts.slice_in(range)
    }

    /// See [`BucketedTimestamps::count_in`].
    pub fn count_in(&self, range: Interval) -> usize {
        self.ts.count_in(range)
    }

    /// See [`BucketedTimestamps::any_in`].
    pub fn any_in(&self, range: Interval) -> bool {
        self.ts.any_in(range)
    }

    /// See [`BucketedTimestamps::timestamps_in`].
    pub fn timestamps_in(&self, range: Interval) -> impl Iterator<Item = Timestamp> + '_ {
        self.ts.timestamps_in(range)
    }

    /// See [`BucketedTimestamps::cursor`].
    pub fn cursor(&self) -> PostingCursor<'_> {
        self.ts.cursor()
    }
}

/// The co-location postings of one device: one [`ApPostings`] list per access
/// point the device ever connected to (sorted by access-point id), plus the
/// all-APs timestamp multiset so windowed event *totals* cost two binary
/// searches instead of one per list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevicePostings {
    lists: Vec<ApPostings>,
    all: BucketedTimestamps,
}

impl DevicePostings {
    pub(crate) fn new(span: Timestamp) -> Self {
        Self {
            lists: Vec::new(),
            all: BucketedTimestamps::new(span),
        }
    }

    /// Rebuilds a device's postings from decoded per-AP lists (the all-APs
    /// multiset is derived — it is the sorted union of the lists).
    pub(crate) fn from_lists(lists: Vec<ApPostings>, span: Timestamp) -> Self {
        let mut ts: Vec<Timestamp> = lists
            .iter()
            .flat_map(|list| list.ts.timestamps().iter().copied())
            .collect();
        ts.sort_unstable();
        let mut all = BucketedTimestamps::new(span);
        for t in ts {
            all.record(t);
        }
        Self { lists, all }
    }

    /// Total number of indexed events of the device.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// `true` if the device has no indexed events.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// The per-AP posting lists, sorted by access-point id.
    pub fn ap_lists(&self) -> &[ApPostings] {
        &self.lists
    }

    /// The posting list of one access point, if the device ever connected to it.
    pub fn on_ap(&self, ap: AccessPointId) -> Option<&ApPostings> {
        self.lists
            .binary_search_by_key(&ap, |list| list.ap)
            .ok()
            .map(|idx| &self.lists[idx])
    }

    /// Number of events of the device with `t` in `[range.start, range.end)`
    /// — answered from the all-APs multiset, not by iterating the lists.
    pub fn count_in(&self, range: Interval) -> usize {
        self.all.count_in(range)
    }

    fn record(&mut self, t: Timestamp, ap: AccessPointId, span: Timestamp) {
        self.all.record(t);
        let idx = match self.lists.binary_search_by_key(&ap, |list| list.ap) {
            Ok(idx) => idx,
            Err(idx) => {
                self.lists.insert(idx, ApPostings::new(ap, span));
                idx
            }
        };
        self.lists[idx].record(t);
    }

    /// TTL trim: drops every posting bucket below `cut_bucket` from the
    /// per-AP lists and the all-APs multiset, removing posting lists that
    /// become empty. Returns the number of postings removed (per the all-APs
    /// multiset; each per-AP list loses its share of the same events).
    fn trim_before_bucket(&mut self, cut_bucket: i64) -> usize {
        let removed = self.all.trim_before_bucket(cut_bucket);
        if removed > 0 {
            for list in &mut self.lists {
                list.ts.trim_before_bucket(cut_bucket);
            }
            self.lists.retain(|list| !list.is_empty());
            self.lists.shrink_to_fit();
        }
        removed
    }

    /// Approximate heap footprint in bytes (allocated capacity).
    pub fn approx_bytes(&self) -> usize {
        self.lists.capacity() * std::mem::size_of::<ApPostings>()
            + self.all.approx_bytes()
            + self
                .lists
                .iter()
                .map(|list| list.ts.approx_bytes())
                .sum::<usize>()
    }
}

/// Size counters of a [`ColocationIndex`] (reported by `locater-cli stats` and
/// the per-shard `serve` stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColocationIndexStats {
    /// Devices with at least one indexed event.
    pub devices: usize,
    /// `(device, access point)` posting lists.
    pub ap_lists: usize,
    /// Time buckets across all posting lists.
    pub buckets: usize,
    /// Indexed events (equals the store's event count).
    pub events: usize,
}

/// The per-store co-location index: one [`DevicePostings`] per interned
/// device, bucketed at the store's segment span. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColocationIndex {
    span: Timestamp,
    devices: Vec<DevicePostings>,
}

impl ColocationIndex {
    /// Creates an empty index with the given bucket span in seconds (clamped
    /// to ≥ 1).
    pub fn new(span: Timestamp) -> Self {
        Self {
            span: span.max(1),
            devices: Vec::new(),
        }
    }

    pub(crate) fn from_devices(span: Timestamp, devices: Vec<DevicePostings>) -> Self {
        Self {
            span: span.max(1),
            devices,
        }
    }

    /// Rebuilds the index from per-device timelines — deterministically equal
    /// to the incrementally maintained index over the same events, whatever
    /// order they were ingested in.
    pub(crate) fn rebuild(span: Timestamp, timelines: &[DeviceTimeline]) -> Self {
        let mut index = Self::new(span);
        for timeline in timelines {
            index.add_device();
            let device = DeviceId::new((index.devices.len() - 1) as u32);
            for event in timeline.iter() {
                index.record(device, event.t, event.ap);
            }
        }
        index
    }

    /// The bucket span in seconds.
    pub fn span(&self) -> Timestamp {
        self.span
    }

    /// Number of devices the index has slots for.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    pub(crate) fn add_device(&mut self) {
        self.devices.push(DevicePostings::new(self.span));
    }

    pub(crate) fn record(&mut self, device: DeviceId, t: Timestamp, ap: AccessPointId) {
        let span = self.span;
        self.devices[device.index()].record(t, ap, span);
    }

    /// The postings of one device.
    ///
    /// # Panics
    /// Panics if the device does not belong to this store.
    pub fn device(&self, device: DeviceId) -> &DevicePostings {
        &self.devices[device.index()]
    }

    pub(crate) fn devices(&self) -> &[DevicePostings] {
        &self.devices
    }

    /// TTL trim across all devices: drops every posting bucket below
    /// `cut_bucket`. Returns the number of indexed events removed. Because
    /// buckets partition time at the store's segment span, this removes
    /// exactly the postings of the timeline events a same-cut segment
    /// eviction removes — index and storage can never disagree.
    pub(crate) fn trim_before_bucket(&mut self, cut_bucket: i64) -> usize {
        self.devices
            .iter_mut()
            .map(|postings| postings.trim_before_bucket(cut_bucket))
            .sum()
    }

    /// Approximate heap footprint of the index in bytes (allocated capacity).
    pub fn approx_bytes(&self) -> usize {
        self.devices.capacity() * std::mem::size_of::<DevicePostings>()
            + self
                .devices
                .iter()
                .map(DevicePostings::approx_bytes)
                .sum::<usize>()
    }

    /// Aggregate size counters.
    pub fn stats(&self) -> ColocationIndexStats {
        let mut stats = ColocationIndexStats::default();
        for postings in &self.devices {
            if !postings.is_empty() {
                stats.devices += 1;
            }
            stats.ap_lists += postings.lists.len();
            stats.buckets += postings
                .lists
                .iter()
                .map(ApPostings::num_buckets)
                .sum::<usize>();
            stats.events += postings.len();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap(raw: u32) -> AccessPointId {
        AccessPointId::new(raw)
    }

    /// An index over one device with a scripted event set.
    fn index_with(events: &[(Timestamp, u32)], span: Timestamp) -> ColocationIndex {
        let mut index = ColocationIndex::new(span);
        index.add_device();
        for &(t, a) in events {
            index.record(DeviceId::new(0), t, ap(a));
        }
        index
    }

    #[test]
    fn in_order_appends_bucket_by_span() {
        let index = index_with(&[(10, 0), (20, 0), (150, 0), (420, 1)], 100);
        let postings = index.device(DeviceId::new(0));
        assert_eq!(postings.len(), 4);
        let list0 = postings.on_ap(ap(0)).unwrap();
        assert_eq!(list0.len(), 3);
        assert_eq!(list0.num_buckets(), 2);
        assert_eq!(postings.on_ap(ap(1)).unwrap().len(), 1);
        assert!(postings.on_ap(ap(9)).is_none());
        let stats = index.stats();
        assert_eq!(stats.devices, 1);
        assert_eq!(stats.ap_lists, 2);
        assert_eq!(stats.buckets, 3);
        assert_eq!(stats.events, 4);
        // Bucket runs expose the wire-format grouping.
        let runs: Vec<(i64, Vec<Timestamp>)> = list0
            .timestamps()
            .bucket_runs()
            .map(|(b, ts)| (b, ts.to_vec()))
            .collect();
        assert_eq!(runs, vec![(0, vec![10, 20]), (1, vec![150])]);
    }

    #[test]
    fn out_of_order_and_tied_timestamps_stay_sorted() {
        let index = index_with(
            &[(500, 0), (10, 0), (10, 0), (320, 0), (10, 0), (4, 0)],
            250,
        );
        let list = index.device(DeviceId::new(0)).on_ap(ap(0)).unwrap();
        assert_eq!(list.timestamps().timestamps(), &[4, 10, 10, 10, 320, 500]);
        // Ties count once per event.
        assert_eq!(list.count_in(Interval::new(10, 11)), 3);
        // Bucket table stays consistent after splices.
        let runs: Vec<(i64, Vec<Timestamp>)> = list
            .timestamps()
            .bucket_runs()
            .map(|(b, ts)| (b, ts.to_vec()))
            .collect();
        assert_eq!(
            runs,
            vec![(0, vec![4, 10, 10, 10]), (1, vec![320]), (2, vec![500])]
        );
    }

    #[test]
    fn range_queries_match_naive_filters() {
        let events: Vec<(Timestamp, u32)> = vec![
            (10, 0),
            (20, 1),
            (150, 0),
            (150, 0),
            (420, 0),
            (421, 1),
            (999, 0),
            (-50, 0),
        ];
        let index = index_with(&events, 100);
        let postings = index.device(DeviceId::new(0));
        for window in [
            Interval::new(15, 421),
            Interval::new(-100, 0),
            Interval::new(150, 151),
            Interval::new(2_000, 3_000),
            Interval::new(-500, 10_000),
        ] {
            for a in [0u32, 1, 2] {
                let expected: Vec<Timestamp> = {
                    let mut ts: Vec<Timestamp> = events
                        .iter()
                        .filter(|&&(t, e_ap)| e_ap == a && window.contains(t))
                        .map(|&(t, _)| t)
                        .collect();
                    ts.sort_unstable();
                    ts
                };
                match postings.on_ap(ap(a)) {
                    Some(list) => {
                        let got: Vec<Timestamp> = list.timestamps_in(window).collect();
                        assert_eq!(got, expected, "window {window:?} ap {a}");
                        assert_eq!(list.slice_in(window), expected.as_slice());
                        assert_eq!(list.count_in(window), expected.len());
                        assert_eq!(list.any_in(window), !expected.is_empty());
                    }
                    None => assert!(expected.is_empty()),
                }
            }
            let total_expected = events.iter().filter(|&&(t, _)| window.contains(t)).count();
            assert_eq!(postings.count_in(window), total_expected);
        }
    }

    #[test]
    fn rebuild_equals_incremental_for_any_order() {
        let events = [
            (500i64, 1u32),
            (10, 0),
            (700, 1),
            (10, 1),
            (320, 0),
            (9_000, 0),
            (4, 1),
        ];
        let incremental = index_with(&events, 250);

        let mut timeline = DeviceTimeline::new(250);
        for (i, &(t, a)) in events.iter().enumerate() {
            timeline.push(locater_events::StoredEvent::new(
                locater_events::EventId::new(i as u64),
                t,
                ap(a),
            ));
        }
        let rebuilt = ColocationIndex::rebuild(250, &[timeline]);
        assert_eq!(rebuilt, incremental);
    }

    #[test]
    fn trim_before_bucket_keeps_exactly_the_retained_postings() {
        let events = [
            (10i64, 0u32),
            (20, 1),
            (150, 0),
            (420, 0),
            (421, 1),
            (999, 2),
        ];
        let mut index = index_with(&events, 100);
        // Cut at bucket 4 → drops timestamps < 400.
        assert_eq!(index.trim_before_bucket(4), 3);
        let postings = index.device(DeviceId::new(0));
        assert_eq!(postings.len(), 3);
        assert_eq!(
            postings.on_ap(ap(0)).unwrap().timestamps().timestamps(),
            &[420]
        );
        assert_eq!(
            postings.on_ap(ap(1)).unwrap().timestamps().timestamps(),
            &[421]
        );
        assert_eq!(
            postings.on_ap(ap(2)).unwrap().timestamps().timestamps(),
            &[999]
        );
        // Trimmed index equals one built from the retained events alone.
        let retained: Vec<(Timestamp, u32)> =
            events.iter().copied().filter(|&(t, _)| t >= 400).collect();
        assert_eq!(index, index_with(&retained, 100));
        // Lists that lose all postings disappear.
        assert_eq!(index.trim_before_bucket(5), 2);
        let postings = index.device(DeviceId::new(0));
        assert!(postings.on_ap(ap(0)).is_none());
        assert!(postings.on_ap(ap(1)).is_none());
        assert_eq!(postings.len(), 1);
        assert_eq!(index.trim_before_bucket(5), 0);
    }

    #[test]
    fn empty_index_answers_are_empty() {
        let index = ColocationIndex::new(0); // span clamps to 1
        assert_eq!(index.span(), 1);
        assert_eq!(index.num_devices(), 0);
        assert_eq!(index.stats(), ColocationIndexStats::default());
        let postings = DevicePostings::new(100);
        assert!(postings.is_empty());
        assert_eq!(postings.count_in(Interval::new(0, 100)), 0);
        assert!(postings.on_ap(ap(0)).is_none());
        let list = ApPostings::new(ap(0), 100);
        assert!(list.is_empty());
        assert!(!list.any_in(Interval::new(0, 100)));
        assert_eq!(list.timestamps_in(Interval::new(0, 100)).count(), 0);
        assert!(list.slice_in(Interval::new(0, 100)).is_empty());
    }
}
