//! CSV import/export of connectivity events.
//!
//! Association logs are commonly exchanged as flat `mac,timestamp,ap` files; this is
//! also the format our scenario simulator writes. The format is deliberately tiny: a
//! header line `mac,timestamp,ap` followed by one event per line. Timestamps are
//! integer seconds since the deployment epoch.

use crate::error::IngestError;
use locater_events::Timestamp;
use serde::{Deserialize, Serialize};

/// One unparsed connectivity event as found in a CSV file or ingestion stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawEvent {
    /// Device MAC address / identifier.
    pub mac: String,
    /// Timestamp in seconds since the deployment epoch.
    pub t: Timestamp,
    /// Access point name.
    pub ap: String,
}

impl RawEvent {
    /// Creates a raw event.
    pub fn new(mac: impl Into<String>, t: Timestamp, ap: impl Into<String>) -> Self {
        Self {
            mac: mac.into(),
            t,
            ap: ap.into(),
        }
    }
}

/// Header line used by [`format_csv`] and expected (optionally) by [`parse_csv`].
pub const CSV_HEADER: &str = "mac,timestamp,ap";

/// Serializes events to CSV with a header line.
pub fn format_csv(events: &[RawEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 32 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for e in events {
        out.push_str(&e.mac);
        out.push(',');
        out.push_str(&e.t.to_string());
        out.push(',');
        out.push_str(&e.ap);
        out.push('\n');
    }
    out
}

/// Parses CSV accepted by [`format_csv`]. The header line is optional; blank lines are
/// skipped; extra whitespace around fields is trimmed.
pub fn parse_csv(csv: &str) -> Result<Vec<RawEvent>, IngestError> {
    let mut out = Vec::new();
    for (idx, line) in csv.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if idx == 0 && trimmed.eq_ignore_ascii_case(CSV_HEADER) {
            continue;
        }
        let mut parts = trimmed.split(',');
        let mac = parts
            .next()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| IngestError::Malformed {
                line: line_no,
                reason: "missing mac field".to_string(),
            })?;
        let t_str = parts
            .next()
            .map(str::trim)
            .ok_or_else(|| IngestError::Malformed {
                line: line_no,
                reason: "missing timestamp field".to_string(),
            })?;
        let ap = parts
            .next()
            .map(str::trim)
            .ok_or_else(|| IngestError::Malformed {
                line: line_no,
                reason: "missing ap field".to_string(),
            })?;
        if parts.next().is_some() {
            return Err(IngestError::Malformed {
                line: line_no,
                reason: "too many fields".to_string(),
            });
        }
        let t: Timestamp = t_str.parse().map_err(|_| IngestError::Malformed {
            line: line_no,
            reason: format!("invalid timestamp {t_str:?}"),
        })?;
        out.push(RawEvent::new(mac, t, ap));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_header() {
        let events = vec![
            RawEvent::new("aa:bb:cc:dd:ee:01", 100, "wap1"),
            RawEvent::new("7fbh", 230, "wap3"),
        ];
        let csv = format_csv(&events);
        assert!(csv.starts_with("mac,timestamp,ap\n"));
        let parsed = parse_csv(&csv).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn header_is_optional_and_blank_lines_are_skipped() {
        let csv = "d1,100,wap1\n\n  d2 , 200 , wap2 \n";
        let parsed = parse_csv(csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], RawEvent::new("d2", 200, "wap2"));
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = parse_csv("mac,timestamp,ap\nd1,abc,wap1\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 2, .. }));
        let err = parse_csv("d1,100\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 1, .. }));
        let err = parse_csv("d1,100,wap1,extra\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 1, .. }));
        let err = parse_csv(",100,wap1\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 1, .. }));
    }

    #[test]
    fn empty_input_parses_to_empty_vec() {
        assert!(parse_csv("").unwrap().is_empty());
        assert!(parse_csv("mac,timestamp,ap\n").unwrap().is_empty());
    }
}
