//! CSV import/export of connectivity events.
//!
//! Association logs are commonly exchanged as flat `mac,timestamp,ap` files; this is
//! also the format our scenario simulator writes. The format is deliberately tiny: a
//! header line `mac,timestamp,ap` followed by one event per line. Timestamps are
//! integer seconds since the deployment epoch.
//!
//! Parse errors carry the 1-based line *and column* of the offending field, so a
//! bad row in a million-line export is locatable without bisecting the file.

use crate::error::IngestError;
use locater_events::Timestamp;
use serde::{Deserialize, Serialize};

/// One unparsed connectivity event as found in a CSV file or ingestion stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawEvent {
    /// Device MAC address / identifier.
    pub mac: String,
    /// Timestamp in seconds since the deployment epoch.
    pub t: Timestamp,
    /// Access point name.
    pub ap: String,
}

impl RawEvent {
    /// Creates a raw event.
    pub fn new(mac: impl Into<String>, t: Timestamp, ap: impl Into<String>) -> Self {
        Self {
            mac: mac.into(),
            t,
            ap: ap.into(),
        }
    }
}

/// Header line used by [`format_csv`] and expected (optionally) by [`parse_csv`].
pub const CSV_HEADER: &str = "mac,timestamp,ap";

/// Serializes events to CSV with a header line.
pub fn format_csv(events: &[RawEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 32 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for e in events {
        out.push_str(&e.mac);
        out.push(',');
        out.push_str(&e.t.to_string());
        out.push(',');
        out.push_str(&e.ap);
        out.push('\n');
    }
    out
}

/// Parses one CSV data line into an event. Returns `Ok(None)` for blank lines;
/// the caller decides whether a first-line header is expected. `line_no` is the
/// 1-based position used in error messages; reported columns are 1-based byte
/// offsets into `line`.
pub fn parse_csv_line(line: &str, line_no: usize) -> Result<Option<RawEvent>, IngestError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let indent = line.len() - line.trim_start().len();
    let malformed = |offset: usize, reason: String| IngestError::Malformed {
        line: line_no,
        column: indent + offset + 1,
        reason,
    };
    // Field boundaries, tracked by byte offset within the trimmed line.
    let mut fields: Vec<(usize, &str)> = Vec::with_capacity(3);
    let mut start = 0usize;
    for (idx, byte) in trimmed.bytes().enumerate() {
        if byte == b',' {
            fields.push((start, &trimmed[start..idx]));
            start = idx + 1;
        }
    }
    fields.push((start, &trimmed[start..]));
    if fields.len() > 3 {
        let (offset, _) = fields[3];
        return Err(malformed(offset, "too many fields".to_string()));
    }
    let (mac_off, mac) = fields[0];
    let mac = mac.trim();
    if mac.is_empty() {
        return Err(malformed(mac_off, "missing mac field".to_string()));
    }
    let &(t_off, t_str) = fields
        .get(1)
        .ok_or_else(|| malformed(trimmed.len(), "missing timestamp field".to_string()))?;
    let &(ap_off, ap) = fields
        .get(2)
        .ok_or_else(|| malformed(trimmed.len(), "missing ap field".to_string()))?;
    let ap = ap.trim();
    if ap.is_empty() {
        return Err(malformed(ap_off, "missing ap field".to_string()));
    }
    let t_str = t_str.trim();
    let t: Timestamp = t_str
        .parse()
        .map_err(|_| malformed(t_off, format!("invalid timestamp {t_str:?}")))?;
    Ok(Some(RawEvent::new(mac, t, ap)))
}

/// `true` if `line` is the (case-insensitive) `mac,timestamp,ap` header.
pub(crate) fn is_csv_header(line: &str) -> bool {
    line.trim().eq_ignore_ascii_case(CSV_HEADER)
}

/// Parses CSV accepted by [`format_csv`]. The header line is optional; blank lines are
/// skipped; extra whitespace around fields is trimmed.
pub fn parse_csv(csv: &str) -> Result<Vec<RawEvent>, IngestError> {
    let mut out = Vec::new();
    for (idx, line) in csv.lines().enumerate() {
        if idx == 0 && is_csv_header(line) {
            continue;
        }
        if let Some(event) = parse_csv_line(line, idx + 1)? {
            out.push(event);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_header() {
        let events = vec![
            RawEvent::new("aa:bb:cc:dd:ee:01", 100, "wap1"),
            RawEvent::new("7fbh", 230, "wap3"),
        ];
        let csv = format_csv(&events);
        assert!(csv.starts_with("mac,timestamp,ap\n"));
        let parsed = parse_csv(&csv).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn header_is_optional_and_blank_lines_are_skipped() {
        let csv = "d1,100,wap1\n\n  d2 , 200 , wap2 \n";
        let parsed = parse_csv(csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], RawEvent::new("d2", 200, "wap2"));
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = parse_csv("mac,timestamp,ap\nd1,abc,wap1\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 2, .. }));
        let err = parse_csv("d1,100\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 1, .. }));
        let err = parse_csv("d1,100,wap1,extra\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 1, .. }));
        let err = parse_csv(",100,wap1\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { line: 1, .. }));
    }

    #[test]
    fn malformed_fields_report_their_column() {
        // `abc` starts at byte 3 (0-based) → column 4.
        let err = parse_csv("d1,abc,wap1\n").unwrap_err();
        assert_eq!(
            err,
            IngestError::Malformed {
                line: 1,
                column: 4,
                reason: "invalid timestamp \"abc\"".into()
            }
        );
        assert!(err.to_string().contains("line 1, column 4"));
        // Leading whitespace shifts the reported column accordingly.
        let err = parse_csv("  d1,xyz,wap1\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { column: 6, .. }));
        // The extra field's own offset is reported.
        let err = parse_csv("d1,100,wap1,extra\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { column: 13, .. }));
        // Missing trailing fields point past the end of the line.
        let err = parse_csv("d1\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { column: 3, .. }));
        // An empty ap field is reported at its own position.
        let err = parse_csv("d1,100,\n").unwrap_err();
        assert!(matches!(err, IngestError::Malformed { column: 8, .. }));
    }

    #[test]
    fn empty_input_parses_to_empty_vec() {
        assert!(parse_csv("").unwrap().is_empty());
        assert!(parse_csv("mac,timestamp,ap\n").unwrap().is_empty());
    }

    #[test]
    fn parse_csv_line_skips_blanks() {
        assert_eq!(parse_csv_line("   ", 5).unwrap(), None);
        assert_eq!(
            parse_csv_line("d1,100,wap1", 5).unwrap(),
            Some(RawEvent::new("d1", 100, "wap1"))
        );
    }
}
