//! The read-side interface of the event store.
//!
//! The cleaning engines never mutate the store while answering a query — they
//! only read per-device timelines, the device table, and the global "who was
//! online near `t`?" index. [`EventRead`] captures exactly that surface, so an
//! engine can run against either a single [`EventStore`](crate::EventStore) or
//! a read-only view assembled from several per-device-partitioned stores
//! ([`ShardedRead`](crate::ShardedRead)) without knowing the difference.
//!
//! Most accessors are *provided* in terms of four primitives —
//! [`EventRead::timeline_of`], [`EventRead::devices`],
//! [`EventRead::devices_near`] and [`EventRead::space`] — with the same
//! definitions the store itself uses, so every implementation answers
//! identically by construction.

use crate::colocation::DevicePostings;
use crate::segment::{DeviceTimeline, EventsInRange};
use crate::timeline::NearbyDevice;
use locater_events::{Device, DeviceId, Gap, Interval, StoredEvent, Timestamp};
use locater_space::{RegionId, Space};
use std::sync::Arc;

/// Read access to one logical event store (a single [`EventStore`](crate::EventStore)
/// or a sharded view over several).
///
/// Implementations must agree on the invariants the store maintains: device ids
/// are dense indices into [`EventRead::devices`], each device's timeline is
/// time-sorted, and [`EventRead::devices_near`] lists devices in the canonical
/// `(t, device)` order of their first event in the probe window.
pub trait EventRead: Sync {
    /// The space metadata the events refer to.
    fn space(&self) -> &Arc<Space>;

    /// All devices, indexable by [`DeviceId::index`].
    fn devices(&self) -> &[Device];

    /// Looks up a device id by MAC address / log identifier.
    fn device_id(&self, mac: &str) -> Option<DeviceId>;

    /// Total number of events.
    fn num_events(&self) -> usize;

    /// The largest validity period δ across all devices.
    fn max_delta(&self) -> Timestamp;

    /// The segmented, time-sorted event timeline of a device.
    fn timeline_of(&self, device: DeviceId) -> &DeviceTimeline;

    /// Devices with at least one event in `[t − slack, t + slack]`, excluding
    /// `exclude`, each with its event closest to `t`, in canonical
    /// `(t, device)` first-event order.
    fn devices_near(
        &self,
        t: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice>;

    /// The co-location postings of a device (per-AP, time-bucketed event
    /// timestamps; see [`crate::colocation`]), when the implementation
    /// maintains the index. `None` makes affinity computations fall back to
    /// raw timeline scans — answers are bit-identical either way, only the
    /// cost differs. The default is `None`, so index-less views (e.g.
    /// [`ScanRead`]) are the reference semantics.
    fn postings_of(&self, device: DeviceId) -> Option<&DevicePostings> {
        let _ = device;
        None
    }

    // ------------------------------------------------------------------
    // Provided accessors (definitionally identical for every implementation)
    // ------------------------------------------------------------------

    /// Number of distinct devices observed.
    fn num_devices(&self) -> usize {
        self.devices().len()
    }

    /// Returns the device with the given id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this store.
    fn device(&self, id: DeviceId) -> &Device {
        &self.devices()[id.index()]
    }

    /// The validity period δ of a device, in seconds.
    fn delta(&self, device: DeviceId) -> Timestamp {
        self.device(device).delta
    }

    /// Events of a device with timestamps in `[range.start, range.end)`, as a
    /// segment-pruned iterator.
    fn events_of_in(&self, device: DeviceId, range: Interval) -> EventsInRange<'_> {
        self.timeline_of(device).in_range(range)
    }

    /// The event (and its index in the device timeline) whose validity interval
    /// covers `t`, if any.
    fn covering_event(&self, device: DeviceId, t: Timestamp) -> Option<(usize, StoredEvent)> {
        self.timeline_of(device)
            .covering_event(t, self.delta(device))
    }

    /// The region a covering event (if any) places the device in at time `t`.
    fn covering_region(&self, device: DeviceId, t: Timestamp) -> Option<RegionId> {
        self.covering_event(device, t).map(|(_, e)| e.region())
    }

    /// All gaps of a device (`GAP(d_i)`).
    fn gaps_of(&self, device: DeviceId) -> Vec<Gap> {
        self.timeline_of(device).gaps(self.delta(device))
    }

    /// Gaps of a device whose interval intersects `window`, computed from the
    /// segments overlapping the window only.
    fn gaps_of_in(&self, device: DeviceId, window: Interval) -> Vec<Gap> {
        self.timeline_of(device)
            .gaps_in_window(window, self.delta(device))
    }

    /// The gap containing `t` for this device, if `t` falls in one.
    fn gap_at(&self, device: DeviceId, t: Timestamp) -> Option<Gap> {
        self.timeline_of(device).gap_at(t, self.delta(device))
    }

    /// Devices *online* at time `t` (a covering event exists at `t`), reported
    /// with the region that event places them in; `exclude` is omitted.
    fn devices_online_at(
        &self,
        t: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<(DeviceId, RegionId)> {
        let slack = self.max_delta();
        self.devices_near(t, slack, exclude)
            .into_iter()
            .filter_map(|near| {
                // A validity interval spans at most [e.t − δ, e.t + δ), so a
                // device whose *closest* event is more than δ away cannot be
                // covered — skip the covering-event lookup outright (the
                // closed left bound means distance exactly δ can still
                // cover). `devices_near` probes with the global max δ, so
                // most candidates of a busy window fail this cheap test.
                if (near.t - t).abs() > self.delta(near.device) {
                    return None;
                }
                self.covering_region(near.device, t)
                    .map(|region| (near.device, region))
            })
            .collect()
    }
}

impl EventRead for crate::EventStore {
    fn space(&self) -> &Arc<Space> {
        crate::EventStore::space(self)
    }

    fn devices(&self) -> &[Device] {
        crate::EventStore::devices(self)
    }

    fn device_id(&self, mac: &str) -> Option<DeviceId> {
        crate::EventStore::device_id(self, mac)
    }

    fn num_events(&self) -> usize {
        crate::EventStore::num_events(self)
    }

    fn max_delta(&self) -> Timestamp {
        crate::EventStore::max_delta(self)
    }

    fn timeline_of(&self, device: DeviceId) -> &DeviceTimeline {
        crate::EventStore::timeline_of(self, device)
    }

    fn devices_near(
        &self,
        t: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice> {
        crate::EventStore::devices_near(self, t, slack, exclude)
    }

    fn postings_of(&self, device: DeviceId) -> Option<&DevicePostings> {
        Some(crate::EventStore::device_postings(self, device))
    }

    fn devices_online_at(
        &self,
        t: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<(DeviceId, RegionId)> {
        // One-scan fast path over the global timeline window; identical to
        // the provided reference definition (property-tested).
        crate::EventStore::devices_online_at(self, t, exclude)
    }
}

/// A view over a store with its co-location index masked: [`EventRead::postings_of`]
/// always answers `None`, so every affinity computation falls back to raw
/// timeline scans. This is the *reference semantics* the indexed fast path
/// must reproduce bit for bit — equivalence tests and the `affinity_index`
/// bench compare a store against `ScanRead` of the same store.
#[derive(Clone, Copy)]
pub struct ScanRead<'a>(&'a dyn EventRead);

impl<'a> ScanRead<'a> {
    /// Wraps a store (or any other read view), hiding its index.
    pub fn new(inner: &'a dyn EventRead) -> Self {
        Self(inner)
    }
}

impl EventRead for ScanRead<'_> {
    fn space(&self) -> &Arc<Space> {
        self.0.space()
    }

    fn devices(&self) -> &[Device] {
        self.0.devices()
    }

    fn device_id(&self, mac: &str) -> Option<DeviceId> {
        self.0.device_id(mac)
    }

    fn num_events(&self) -> usize {
        self.0.num_events()
    }

    fn max_delta(&self) -> Timestamp {
        self.0.max_delta()
    }

    fn timeline_of(&self, device: DeviceId) -> &DeviceTimeline {
        self.0.timeline_of(device)
    }

    fn devices_near(
        &self,
        t: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice> {
        self.0.devices_near(t, slack, exclude)
    }

    fn devices_online_at(
        &self,
        t: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<(DeviceId, RegionId)> {
        // Neighbor discovery is not part of the index; delegate so the
        // wrapper isolates exactly the affinity fast path.
        self.0.devices_online_at(t, exclude)
    }

    // `postings_of` intentionally keeps the trait default (`None`): that is
    // the whole point of the wrapper.
}
