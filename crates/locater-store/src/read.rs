//! The read-side interface of the event store.
//!
//! The cleaning engines never mutate the store while answering a query — they
//! only read per-device timelines, the device table, and the global "who was
//! online near `t`?" index. [`EventRead`] captures exactly that surface, so an
//! engine can run against either a single [`EventStore`](crate::EventStore) or
//! a read-only view assembled from several per-device-partitioned stores
//! ([`ShardedRead`](crate::ShardedRead)) without knowing the difference.
//!
//! Most accessors are *provided* in terms of four primitives —
//! [`EventRead::timeline_of`], [`EventRead::devices`],
//! [`EventRead::devices_near`] and [`EventRead::space`] — with the same
//! definitions the store itself uses, so every implementation answers
//! identically by construction.

use crate::segment::{DeviceTimeline, EventsInRange};
use crate::timeline::NearbyDevice;
use locater_events::{Device, DeviceId, Gap, Interval, StoredEvent, Timestamp};
use locater_space::{RegionId, Space};
use std::sync::Arc;

/// Read access to one logical event store (a single [`EventStore`](crate::EventStore)
/// or a sharded view over several).
///
/// Implementations must agree on the invariants the store maintains: device ids
/// are dense indices into [`EventRead::devices`], each device's timeline is
/// time-sorted, and [`EventRead::devices_near`] lists devices in the canonical
/// `(t, device)` order of their first event in the probe window.
pub trait EventRead: Sync {
    /// The space metadata the events refer to.
    fn space(&self) -> &Arc<Space>;

    /// All devices, indexable by [`DeviceId::index`].
    fn devices(&self) -> &[Device];

    /// Looks up a device id by MAC address / log identifier.
    fn device_id(&self, mac: &str) -> Option<DeviceId>;

    /// Total number of events.
    fn num_events(&self) -> usize;

    /// The largest validity period δ across all devices.
    fn max_delta(&self) -> Timestamp;

    /// The segmented, time-sorted event timeline of a device.
    fn timeline_of(&self, device: DeviceId) -> &DeviceTimeline;

    /// Devices with at least one event in `[t − slack, t + slack]`, excluding
    /// `exclude`, each with its event closest to `t`, in canonical
    /// `(t, device)` first-event order.
    fn devices_near(
        &self,
        t: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice>;

    // ------------------------------------------------------------------
    // Provided accessors (definitionally identical for every implementation)
    // ------------------------------------------------------------------

    /// Number of distinct devices observed.
    fn num_devices(&self) -> usize {
        self.devices().len()
    }

    /// Returns the device with the given id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this store.
    fn device(&self, id: DeviceId) -> &Device {
        &self.devices()[id.index()]
    }

    /// The validity period δ of a device, in seconds.
    fn delta(&self, device: DeviceId) -> Timestamp {
        self.device(device).delta
    }

    /// Events of a device with timestamps in `[range.start, range.end)`, as a
    /// segment-pruned iterator.
    fn events_of_in(&self, device: DeviceId, range: Interval) -> EventsInRange<'_> {
        self.timeline_of(device).in_range(range)
    }

    /// The event (and its index in the device timeline) whose validity interval
    /// covers `t`, if any.
    fn covering_event(&self, device: DeviceId, t: Timestamp) -> Option<(usize, StoredEvent)> {
        self.timeline_of(device)
            .covering_event(t, self.delta(device))
    }

    /// The region a covering event (if any) places the device in at time `t`.
    fn covering_region(&self, device: DeviceId, t: Timestamp) -> Option<RegionId> {
        self.covering_event(device, t).map(|(_, e)| e.region())
    }

    /// All gaps of a device (`GAP(d_i)`).
    fn gaps_of(&self, device: DeviceId) -> Vec<Gap> {
        self.timeline_of(device).gaps(self.delta(device))
    }

    /// Gaps of a device whose interval intersects `window`, computed from the
    /// segments overlapping the window only.
    fn gaps_of_in(&self, device: DeviceId, window: Interval) -> Vec<Gap> {
        self.timeline_of(device)
            .gaps_in_window(window, self.delta(device))
    }

    /// The gap containing `t` for this device, if `t` falls in one.
    fn gap_at(&self, device: DeviceId, t: Timestamp) -> Option<Gap> {
        self.timeline_of(device).gap_at(t, self.delta(device))
    }

    /// Devices *online* at time `t` (a covering event exists at `t`), reported
    /// with the region that event places them in; `exclude` is omitted.
    fn devices_online_at(
        &self,
        t: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<(DeviceId, RegionId)> {
        let slack = self.max_delta();
        self.devices_near(t, slack, exclude)
            .into_iter()
            .filter_map(|near| {
                self.covering_region(near.device, t)
                    .map(|region| (near.device, region))
            })
            .collect()
    }
}

impl EventRead for crate::EventStore {
    fn space(&self) -> &Arc<Space> {
        crate::EventStore::space(self)
    }

    fn devices(&self) -> &[Device] {
        crate::EventStore::devices(self)
    }

    fn device_id(&self, mac: &str) -> Option<DeviceId> {
        crate::EventStore::device_id(self, mac)
    }

    fn num_events(&self) -> usize {
        crate::EventStore::num_events(self)
    }

    fn max_delta(&self) -> Timestamp {
        crate::EventStore::max_delta(self)
    }

    fn timeline_of(&self, device: DeviceId) -> &DeviceTimeline {
        crate::EventStore::timeline_of(self, device)
    }

    fn devices_near(
        &self,
        t: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice> {
        crate::EventStore::devices_near(self, t, slack, exclude)
    }
}
