//! Per-device partitioning of the event store.
//!
//! LOCATER's cleaning pipeline is partitionable by device: coarse localization,
//! δ estimation and model state are all per-device, and only the fine-grained
//! affinity step reads across devices. This module provides the storage half of
//! that design:
//!
//! * [`shard_of_device`] — the deterministic `DeviceId → shard` assignment every
//!   layer (store splitting, service routing, cache placement) agrees on;
//! * [`EventStore::split`] / [`EventStore::rejoin`] — partition a store into
//!   per-shard stores and reassemble them **bit-identically**;
//! * [`ShardedRead`] — a read-only view over the per-shard stores implementing
//!   [`EventRead`], so the cleaning engines answer over the partitioned data
//!   exactly as they would over the combined store.
//!
//! ## The partitioning invariant
//!
//! Every shard store carries the **full replicated device table** (same dense
//! ids, same MAC index, same validity periods δ) but only the **event timelines
//! of the devices it owns**; all other timelines are empty. Device-table
//! lookups therefore work against any one shard, while timeline reads route to
//! the owner. The global `(t, device)`-canonical timeline order (see
//! [`crate::Timeline`]) makes the merged neighbor scan of [`ShardedRead`]
//! reproduce the single-store scan exactly.

use crate::colocation::{ColocationIndex, DevicePostings};
use crate::read::EventRead;
use crate::segment::DeviceTimeline;
use crate::store::EventStore;
use crate::timeline::{devices_near_in, devices_online_in, NearbyDevice, TimelineEntry};
use crate::StoreError;
use locater_events::{Device, DeviceId, Timestamp};
use locater_space::{RegionId, Space};
use std::sync::Arc;

/// The deterministic `DeviceId → shard` assignment shared by every layer of a
/// sharded deployment (store splitting, service routing, affinity-cache
/// placement). A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) finalizer
/// scrambles the dense device index so consecutive ids spread evenly; the
/// result depends only on `(device, shards)`, never on process state.
pub fn shard_of_device(device: DeviceId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut z = (device.index() as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

impl EventStore {
    /// Partitions the store into `shards` per-shard stores assigned by
    /// [`shard_of_device`].
    ///
    /// Each returned store replicates the space, the validity configuration,
    /// the segment span and the **whole device table** (ids, MACs and estimated
    /// δs included), but keeps only the timelines of its owned devices — event
    /// ids are carried over verbatim, so [`EventStore::rejoin`] reassembles the
    /// original store bit for bit.
    pub fn split(&self, shards: usize) -> Vec<EventStore> {
        let shards = shards.max(1);
        let (space, validity, span, next_event_id, devices, timelines) = self.snapshot_parts();
        (0..shards)
            .map(|shard| {
                let masked: Vec<DeviceTimeline> = timelines
                    .iter()
                    .enumerate()
                    .map(|(idx, timeline)| {
                        if shard_of_device(DeviceId::new(idx as u32), shards) == shard {
                            timeline.clone()
                        } else {
                            DeviceTimeline::new(span)
                        }
                    })
                    .collect();
                // The co-location index partitions with the timelines: a shard
                // carries the postings of its owned devices, empty slots for
                // the rest (identical to what a rebuild would produce).
                let postings: Vec<DevicePostings> = devices
                    .iter()
                    .enumerate()
                    .map(|(idx, _)| {
                        let device = DeviceId::new(idx as u32);
                        if shard_of_device(device, shards) == shard {
                            self.device_postings(device).clone()
                        } else {
                            DevicePostings::new(span)
                        }
                    })
                    .collect();
                EventStore::from_snapshot_parts(
                    space.clone(),
                    *validity,
                    span,
                    next_event_id,
                    devices.to_vec(),
                    masked,
                    Some(ColocationIndex::from_devices(span, postings)),
                )
                .expect("splitting a valid store yields valid shards")
            })
            .collect()
    }

    /// Reassembles the store a [`EventStore::split`] produced: takes each
    /// device's timeline from its owner shard and rebuilds the combined global
    /// index. For a quiescent split (no ingests in between),
    /// `rejoin(&split(&store, n))` equals `store` bit for bit — snapshot bytes
    /// included.
    ///
    /// Returns [`StoreError::Corrupt`] when the shards disagree on the space,
    /// device table, validity configuration or segment span (i.e. they were not
    /// produced by splitting one store, or were mutated inconsistently).
    pub fn rejoin<'a>(
        shards: impl IntoIterator<Item = &'a EventStore>,
    ) -> Result<EventStore, StoreError> {
        let shards: Vec<&EventStore> = shards.into_iter().collect();
        let first = shards
            .first()
            .ok_or_else(|| StoreError::Corrupt("cannot rejoin zero shards".to_string()))?;
        let (space, validity, span, mut next_event_id, devices, _) = first.snapshot_parts();
        for (idx, shard) in shards.iter().enumerate().skip(1) {
            let (other_space, other_validity, other_span, other_next, other_devices, _) =
                shard.snapshot_parts();
            if other_space != space
                || other_validity != validity
                || other_span != span
                || other_devices != devices
            {
                return Err(StoreError::Corrupt(format!(
                    "shard {idx} disagrees with shard 0 on space/devices/validity/span"
                )));
            }
            next_event_id = next_event_id.max(other_next);
        }
        let timelines: Vec<DeviceTimeline> = devices
            .iter()
            .enumerate()
            .map(|(idx, _)| {
                let owner = shard_of_device(DeviceId::new(idx as u32), shards.len());
                shards[owner].timeline_of(DeviceId::new(idx as u32)).clone()
            })
            .collect();
        let postings: Vec<DevicePostings> = devices
            .iter()
            .enumerate()
            .map(|(idx, _)| {
                let device = DeviceId::new(idx as u32);
                let owner = shard_of_device(device, shards.len());
                shards[owner].device_postings(device).clone()
            })
            .collect();
        // The replicated device tables make the consistency check above pass
        // even for shards supplied in the wrong order — but then timelines
        // would be read from non-owner (empty) slots. Catch that as an error
        // instead of silently dropping events.
        let total: usize = shards.iter().map(|shard| shard.num_events()).sum();
        let rejoined_events: usize = timelines.iter().map(DeviceTimeline::len).sum();
        if rejoined_events != total {
            return Err(StoreError::Corrupt(format!(
                "shards hold {total} events but their owner timelines hold {rejoined_events}; \
                 were the shards reordered since split()?"
            )));
        }
        EventStore::from_snapshot_parts(
            space.clone(),
            *validity,
            span,
            next_event_id,
            devices.to_vec(),
            timelines,
            Some(ColocationIndex::from_devices(span, postings)),
        )
    }
}

/// A read-only view over the per-shard stores of one partitioned deployment,
/// presenting them as a single logical store through [`EventRead`].
///
/// Device-table lookups answer from shard 0 (the table is replicated);
/// timeline reads route to the owner shard; the neighbor scan merges the
/// shards' global indices in canonical `(t, device)` order, so every accessor
/// returns exactly what the combined store would.
///
/// The view borrows the shard stores — in a live service the borrows come from
/// per-shard read guards acquired in ascending shard order.
pub struct ShardedRead<'a> {
    shards: Vec<&'a EventStore>,
}

impl<'a> ShardedRead<'a> {
    /// Builds the view over per-shard stores, in shard order.
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<&'a EventStore>) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded view needs at least one shard"
        );
        Self { shards }
    }

    /// Number of shards behind the view.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The owner shard of a device under this view's shard count.
    pub fn owner_of(&self, device: DeviceId) -> usize {
        shard_of_device(device, self.shards.len())
    }

    /// The per-shard store at `shard`.
    pub fn shard(&self, shard: usize) -> &'a EventStore {
        self.shards[shard]
    }

    /// K-way merge of the shards' `(t, device, id)`-sorted windows in
    /// `[from, to)` — restores the canonical global scan order, so the shared
    /// scan helpers run exactly as they would on the combined index.
    fn merged_window(&self, from: Timestamp, to: Timestamp) -> Vec<&'a TimelineEntry> {
        let windows: Vec<&[TimelineEntry]> = self
            .shards
            .iter()
            .map(|s| s.timeline().range(from, to))
            .collect();
        let mut cursors = vec![0usize; windows.len()];
        let total: usize = windows.iter().map(|w| w.len()).sum();
        let mut merged: Vec<&TimelineEntry> = Vec::with_capacity(total);
        loop {
            let mut best: Option<(usize, &TimelineEntry)> = None;
            for (shard, window) in windows.iter().enumerate() {
                if let Some(entry) = window.get(cursors[shard]) {
                    let better = match best {
                        None => true,
                        Some((_, current)) => {
                            (entry.t, entry.device, entry.id)
                                < (current.t, current.device, current.id)
                        }
                    };
                    if better {
                        best = Some((shard, entry));
                    }
                }
            }
            match best {
                Some((shard, entry)) => {
                    cursors[shard] += 1;
                    merged.push(entry);
                }
                None => break,
            }
        }
        merged
    }
}

impl EventRead for ShardedRead<'_> {
    fn space(&self) -> &Arc<Space> {
        self.shards[0].space()
    }

    fn devices(&self) -> &[Device] {
        self.shards[0].devices()
    }

    fn device_id(&self, mac: &str) -> Option<DeviceId> {
        self.shards[0].device_id(mac)
    }

    fn num_events(&self) -> usize {
        self.shards.iter().map(|s| s.num_events()).sum()
    }

    fn max_delta(&self) -> Timestamp {
        // The device table (δs included) is replicated across shards.
        self.shards[0].max_delta()
    }

    fn timeline_of(&self, device: DeviceId) -> &DeviceTimeline {
        self.shards[self.owner_of(device)].timeline_of(device)
    }

    fn postings_of(&self, device: DeviceId) -> Option<&DevicePostings> {
        // Like the timeline, a device's co-location postings live on its
        // owner shard (non-owners hold empty slots).
        Some(self.shards[self.owner_of(device)].device_postings(device))
    }

    fn devices_near(
        &self,
        t: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice> {
        if self.shards.len() == 1 {
            return self.shards[0].devices_near(t, slack, exclude);
        }
        devices_near_in(self.merged_window(t - slack, t + slack + 1), t, exclude)
    }

    fn devices_online_at(
        &self,
        t: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<(DeviceId, RegionId)> {
        // Same one-scan fast path as the combined store, over the merged
        // canonical window (the device table, δs included, is replicated).
        if self.shards.len() == 1 {
            return self.shards[0].devices_online_at(t, exclude);
        }
        let slack = self.max_delta();
        devices_online_in(
            self.merged_window(t - slack, t + slack + 1),
            t,
            exclude,
            self.devices(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_events::Interval;
    use locater_space::SpaceBuilder;

    fn space() -> Space {
        SpaceBuilder::new("shard-test")
            .add_access_point("wap0", &["a", "b"])
            .add_access_point("wap1", &["b", "c"])
            .build()
            .unwrap()
    }

    /// Ten devices with interleaved histories, including exact timestamp ties
    /// across devices (the case canonical ordering exists for).
    fn store() -> EventStore {
        let mut store = EventStore::new(space()).with_segment_span(5_000);
        for i in 0..10u32 {
            let mac = format!("device-{i}");
            for k in 0..20i64 {
                let ap = if (i + k as u32).is_multiple_of(2) {
                    "wap0"
                } else {
                    "wap1"
                };
                // Devices in the same pair (2i, 2i+1) share timestamps exactly,
                // so the canonical tie order is exercised.
                let t = 1_000 + 300 * k;
                store.ingest_raw(&mac, t + (i as i64 / 2) * 7, ap).unwrap();
            }
        }
        store.estimate_deltas();
        store
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for shards in 1..9 {
            for d in 0..64 {
                let a = shard_of_device(DeviceId::new(d), shards);
                let b = shard_of_device(DeviceId::new(d), shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        assert_eq!(shard_of_device(DeviceId::new(123), 1), 0);
        // The scramble spreads consecutive ids over more than one shard.
        let spread: std::collections::HashSet<usize> = (0..16)
            .map(|d| shard_of_device(DeviceId::new(d), 4))
            .collect();
        assert!(spread.len() > 1);
    }

    #[test]
    fn split_replicates_devices_and_partitions_events() {
        let store = store();
        for shards in [1usize, 2, 3, 8] {
            let pieces = store.split(shards);
            assert_eq!(pieces.len(), shards);
            let mut events = 0usize;
            for (s, piece) in pieces.iter().enumerate() {
                // Full replicated device table, δs included.
                assert_eq!(piece.devices(), store.devices());
                assert_eq!(piece.max_delta(), store.max_delta());
                for device in store.devices() {
                    let owned = shard_of_device(device.id, shards) == s;
                    let len = piece.timeline_of(device.id).len();
                    if owned {
                        assert_eq!(len, store.timeline_of(device.id).len());
                    } else {
                        assert_eq!(len, 0);
                    }
                }
                events += piece.num_events();
            }
            assert_eq!(events, store.num_events());
        }
    }

    #[test]
    fn rejoin_of_split_is_bit_identical() {
        let store = store();
        for shards in [1usize, 2, 3, 8] {
            let rejoined = EventStore::rejoin(&store.split(shards)).unwrap();
            assert_eq!(rejoined, store, "rejoin(split(store, {shards})) != store");
            assert_eq!(
                rejoined.to_snapshot_bytes().unwrap(),
                store.to_snapshot_bytes().unwrap(),
                "snapshot bytes differ after split/rejoin({shards})"
            );
        }
    }

    #[test]
    fn rejoin_rejects_inconsistent_shards() {
        assert!(EventStore::rejoin(&[]).is_err());
        let store = store();
        let mut pieces = store.split(2);
        pieces[1].set_delta(DeviceId::new(0), 9_999);
        assert!(matches!(
            EventStore::rejoin(&pieces),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn rejoin_rejects_reordered_shards() {
        // Replicated device tables make reordered shards look superficially
        // consistent; the event-count invariant must catch the mismatch
        // instead of silently returning an event-less store.
        let store = store();
        let pieces = store.split(3);
        let reordered: Vec<&EventStore> = pieces.iter().rev().collect();
        assert!(matches!(
            EventStore::rejoin(reordered),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn sharded_read_matches_combined_store() {
        let store = store();
        for shards in [1usize, 2, 3, 8] {
            let pieces = store.split(shards);
            let view = ShardedRead::new(pieces.iter().collect());
            assert_eq!(view.num_shards(), shards);
            assert_eq!(EventRead::num_events(&view), store.num_events());
            assert_eq!(view.num_devices(), store.num_devices());
            assert_eq!(EventRead::max_delta(&view), store.max_delta());
            assert_eq!(view.device_id("device-3"), store.device_id("device-3"));
            for device in store.devices() {
                let d = device.id;
                assert_eq!(view.delta(d), store.delta(d));
                let window = Interval::new(1_500, 4_500);
                let via_view: Vec<_> = view.events_of_in(d, window).copied().collect();
                let via_store: Vec<_> = store.events_of_in(d, window).copied().collect();
                assert_eq!(via_view, via_store);
                assert_eq!(view.gaps_of(d), store.gaps_of(d));
                for probe in [900i64, 1_350, 2_000, 5_600, 9_999] {
                    assert_eq!(
                        view.covering_event(d, probe),
                        store.covering_event(d, probe)
                    );
                    assert_eq!(view.gap_at(d, probe), store.gap_at(d, probe));
                }
            }
            // The order-sensitive merged scans: identical, ties included.
            for probe in [1_000i64, 1_150, 2_405, 4_000, 7_000] {
                assert_eq!(
                    view.devices_near(probe, 600, None),
                    store.devices_near(probe, 600, None)
                );
                assert_eq!(
                    view.devices_online_at(probe, Some(DeviceId::new(1))),
                    store.devices_online_at(probe, Some(DeviceId::new(1)))
                );
            }
        }
    }
}
