//! Crash recovery: checkpoint snapshot + WAL-tail replay, and the
//! single-store durable ingest wrapper.
//!
//! Recovery reconstructs the exact pre-crash store from what is durable on
//! disk:
//!
//! 1. load `<wal-dir>/checkpoint.snap` if present (a regular
//!    [`crate::snapshot`] file — bit-identical round-trip, event ids
//!    included), otherwise start from the caller-provided fallback store;
//! 2. scan every shard's segments and collect the valid records — strict for
//!    all but the last segment of each shard (damage there needs an explicit
//!    `wal truncate`), lenient on the last (a torn tail is the expected
//!    signature of a crash mid-append and is cut at the last whole frame);
//! 3. merge the per-shard tails by global event id and replay each record
//!    with its original id pinned.
//!
//! Because event ids are drawn from one global sequence and every record
//! carries its id, the merged replay reproduces the exact ingest order the
//! pre-crash process executed, across any shard count — recovering a log
//! written by a 4-shard service into a single store (or vice versa) yields
//! byte-identical snapshots. Replay is idempotent: records whose id precedes
//! the checkpoint's event-id counter are already inside the checkpoint and
//! are skipped, so a crash *between* writing a checkpoint and trimming the
//! segments loses nothing and duplicates nothing.

use crate::error::IngestError;
use crate::io::{RealIo, StorageIo};
use crate::snapshot::write_atomic_io;
use crate::store::EventStore;
use crate::wal::{
    checkpoint_path, list_segments, list_shard_dirs, scan_segment_io, Durability, ShardWal,
    WalError, WalRecord, WalShardStats,
};
use locater_events::MacAddress;
use locater_space::AccessPointId;
use std::path::{Path, PathBuf};

/// What [`recover_store`] did: where the base came from and how much of the
/// WAL was replayed on top of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` when `checkpoint.snap` existed and loaded; `false` when the
    /// fallback store was used as the base.
    pub checkpoint_loaded: bool,
    /// Events already inside the base before replay.
    pub base_events: usize,
    /// WAL records applied on top of the base.
    pub replayed: u64,
    /// WAL records skipped because the base already contained them (replay
    /// idempotence across a checkpoint/trim crash window).
    pub skipped: u64,
    /// Shard directories found.
    pub shards: u64,
    /// Segment files scanned.
    pub segments: u64,
    /// Torn tails encountered (and ignored past the tear), as
    /// `(segment, offset of the first invalid byte)`.
    pub torn: Vec<(PathBuf, u64)>,
    /// Durable ingests that carried a client idempotency token, in event-id
    /// order — both replayed records and records the checkpoint already
    /// covered. A serving layer re-seeds its replay-dedup cache from these,
    /// so a client retry of a durable-but-unacked ingest is answered instead
    /// of re-applied, even across a crash.
    pub acked_ingests: Vec<AckedIngest>,
}

/// One durable ingest recovered together with its client idempotency token
/// (see [`RecoveryReport::acked_ingests`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckedIngest {
    /// The client request id the ingest frame carried.
    pub request_id: u64,
    /// Device MAC address / log identifier.
    pub mac: String,
    /// Event timestamp.
    pub t: i64,
    /// Resolved access point id ([`locater_space::AccessPointId::raw`]).
    pub ap: u32,
}

/// Reads the durable tail of every shard under `dir`: strict scans for all
/// but each shard's last segment, lenient for the last. Purely read-only —
/// physical truncation of torn tails happens when a writer re-attaches
/// ([`ShardWal::open`]) or via [`crate::wal::truncate_wal`].
fn read_tails(
    dir: &Path,
    report: &mut RecoveryReport,
    io: &dyn StorageIo,
) -> Result<Vec<WalRecord>, WalError> {
    let mut records = Vec::new();
    for (_shard, shard_path) in list_shard_dirs(dir)? {
        report.shards += 1;
        let segments = list_segments(&shard_path)?;
        let Some(((_, last_path), earlier)) = segments.split_last() else {
            continue;
        };
        for (_, path) in earlier {
            let scan = scan_segment_io(path, false, io)?;
            report.segments += 1;
            records.extend(scan.records);
        }
        let scan = scan_segment_io(last_path, true, io)?;
        report.segments += 1;
        if let Some(torn) = &scan.torn {
            report.torn.push((last_path.clone(), torn.offset));
        }
        records.extend(scan.records);
    }
    Ok(records)
}

/// Recovers a store from the WAL directory `dir`: checkpoint (or `fallback`
/// when no checkpoint exists yet) + merged WAL-tail replay. Returns the
/// recovered store and a [`RecoveryReport`]. The directory is not modified.
pub fn recover_store(
    dir: &Path,
    fallback: EventStore,
) -> Result<(EventStore, RecoveryReport), WalError> {
    recover_store_io(dir, fallback, &RealIo)
}

/// [`recover_store`] with an explicit storage backend, so chaos tests can
/// fault the checkpoint load and the segment scans.
pub fn recover_store_io(
    dir: &Path,
    fallback: EventStore,
    io: &dyn StorageIo,
) -> Result<(EventStore, RecoveryReport), WalError> {
    let checkpoint = checkpoint_path(dir);
    let (mut store, checkpoint_loaded) = if checkpoint.exists() {
        let bytes = io.read(&checkpoint).map_err(WalError::Io)?;
        (EventStore::from_snapshot_bytes(&bytes)?, true)
    } else {
        (fallback, false)
    };
    let mut report = RecoveryReport {
        checkpoint_loaded,
        base_events: store.num_events(),
        replayed: 0,
        skipped: 0,
        shards: 0,
        segments: 0,
        torn: Vec::new(),
        acked_ingests: Vec::new(),
    };
    if !dir.exists() {
        return Ok((store, report));
    }
    let mut records = read_tails(dir, &mut report, io)?;
    records.sort_by_key(|r| r.id);
    for pair in records.windows(2) {
        if pair[0].id == pair[1].id {
            return Err(WalError::InvalidLog(format!(
                "two WAL records claim event id {} (devices {:?} and {:?})",
                pair[0].id, pair[0].mac, pair[1].mac
            )));
        }
    }
    let resume_at = store.next_event_id();
    for record in records {
        // Tokens are collected for skipped records too: a record inside the
        // checkpoint was just as durable, and its ack just as losable.
        if let Some(request_id) = record.request_id {
            report.acked_ingests.push(AckedIngest {
                request_id,
                mac: record.mac.clone(),
                t: record.t,
                ap: record.ap,
            });
        }
        if record.id < resume_at {
            report.skipped += 1;
            continue;
        }
        store.set_next_event_id(record.id);
        store
            .ingest(&record.mac, record.t, AccessPointId::new(record.ap))
            .map_err(WalError::Replay)?;
        report.replayed += 1;
    }
    Ok((store, report))
}

/// Writes (atomically) the checkpoint snapshot for `store` under `dir`,
/// creating the directory if needed. Returns the snapshot size in bytes.
pub fn write_checkpoint(dir: &Path, store: &EventStore) -> Result<u64, WalError> {
    write_checkpoint_io(dir, store, &RealIo)
}

/// [`write_checkpoint`] with an explicit storage backend, so chaos tests can
/// fault the snapshot write, its fsync, or the commit rename. Whatever fails,
/// an existing checkpoint at the same path is never damaged.
pub fn write_checkpoint_io(
    dir: &Path,
    store: &EventStore,
    io: &dyn StorageIo,
) -> Result<u64, WalError> {
    std::fs::create_dir_all(dir)?;
    let bytes = store.to_snapshot_bytes()?;
    write_atomic_io(&checkpoint_path(dir), &bytes, io)?;
    Ok(bytes.len() as u64)
}

/// Brings a WAL directory to a clean post-recovery state for `store` and
/// opens fresh per-shard writers: writes the checkpoint snapshot (so the
/// replayed prefix is captured durably), removes every existing shard
/// directory (their records are now inside the checkpoint — and the previous
/// process may have run with a different shard count), and creates `shards`
/// empty logs. Returns the writers (index = shard) and the checkpoint size.
pub fn initialize_wal(
    config: &Durability,
    store: &EventStore,
    shards: usize,
) -> Result<(Vec<ShardWal>, u64), WalError> {
    let checkpoint_bytes = write_checkpoint_io(&config.dir, store, config.io.as_ref())?;
    for (_, shard_path) in list_shard_dirs(&config.dir)? {
        std::fs::remove_dir_all(&shard_path)?;
    }
    crate::wal::fsync_dir(&config.dir);
    let mut writers = Vec::with_capacity(shards);
    for shard in 0..shards {
        let (wal, existing) = ShardWal::open(config, shard as u32)?;
        debug_assert!(existing.is_empty(), "freshly created shard log is empty");
        writers.push(wal);
    }
    Ok((writers, checkpoint_bytes))
}

/// An [`EventStore`] with a write-ahead log attached: every accepted ingest
/// is framed and appended to the log *before* mutating the store, so the
/// in-memory state never runs ahead of what recovery can reproduce. This is
/// the single-store embedding of the durability subsystem (the sharded
/// service wires the same primitives per shard).
#[derive(Debug)]
pub struct DurableEventStore {
    store: EventStore,
    wal: ShardWal,
    config: Durability,
}

impl DurableEventStore {
    /// Opens the WAL at `config.dir`, recovering any durable state found
    /// there (checkpoint + tails); `fallback` seeds the store when the
    /// directory holds no checkpoint yet. On success the directory is
    /// checkpointed and trimmed, so the returned store starts with an empty
    /// tail.
    pub fn open(
        config: Durability,
        fallback: EventStore,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let (store, report) = recover_store_io(&config.dir, fallback, config.io.as_ref())?;
        let (mut writers, _bytes) = initialize_wal(&config, &store, 1)?;
        let wal = writers.pop().expect("initialize_wal returns one writer");
        Ok((DurableEventStore { store, wal, config }, report))
    }

    /// Durable ingest: validates the event fully (access point, timestamp,
    /// device identifier), appends it to the WAL, then applies it to the
    /// store. Validation precedes the id draw and the append, so an event
    /// that reached the log always applies cleanly — the store and the log
    /// cannot diverge.
    pub fn ingest_raw(&mut self, mac: &str, t: i64, ap_name: &str) -> Result<u64, IngestError> {
        let ap = self.store.validate_raw(t, ap_name)?;
        if self.store.device_id(mac).is_none() {
            MacAddress::parse(mac).map_err(IngestError::InvalidDevice)?;
        }
        let id = self.store.next_event_id();
        self.wal
            .append(&WalRecord {
                id,
                t,
                ap: ap.raw(),
                mac: mac.to_string(),
                request_id: None,
            })
            .map_err(|e| IngestError::Wal(e.to_string()))?;
        self.store
            .ingest(mac, t, ap)
            .map(|event_id| event_id.0)
            .map_err(|err| {
                debug_assert!(false, "pre-validated ingest failed after WAL append: {err}");
                err
            })
    }

    /// Checkpoints: writes a fresh snapshot of the store and trims the log.
    /// After this, recovery loads the snapshot and replays nothing. Returns
    /// the checkpoint size in bytes.
    pub fn checkpoint(&mut self) -> Result<u64, WalError> {
        let bytes = write_checkpoint_io(&self.config.dir, &self.store, self.config.io.as_ref())?;
        self.wal.reset()?;
        Ok(bytes)
    }

    /// Delta snapshot: seals the active segment (see [`ShardWal::seal`]), so
    /// everything ingested so far is durable without rewriting the
    /// checkpoint.
    pub fn seal(&mut self) -> Result<(), WalError> {
        self.wal.seal()
    }

    /// Forces buffered WAL frames to disk now, regardless of fsync policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.wal.sync()
    }

    /// The underlying store (read-only; mutations must go through the
    /// durable ingest path).
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// The durability configuration this store was opened with.
    pub fn config(&self) -> &Durability {
        &self.config
    }

    /// Live WAL counters.
    pub fn wal_stats(&self) -> WalShardStats {
        self.wal.stats()
    }

    /// Consumes the wrapper, returning the in-memory store (the log keeps
    /// whatever tail it had; reopening replays it idempotently).
    pub fn into_store(self) -> EventStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::SpaceBuilder;
    use std::path::PathBuf;

    fn space() -> locater_space::Space {
        SpaceBuilder::new("recovery-test")
            .add_access_point("wap0", &["r0", "r1"])
            .add_access_point("wap1", &["r1", "r2"])
            .add_access_point("wap2", &["r2", "r3"])
            .build()
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "locater-recovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_store_recovers_bit_identically_after_drop() {
        let dir = temp_dir("bit-identical");
        std::fs::remove_dir_all(&dir).ok();
        let config = Durability::new(&dir);
        let mut reference = EventStore::new(space());
        {
            let (mut durable, report) =
                DurableEventStore::open(config.clone(), EventStore::new(space())).unwrap();
            assert!(!report.checkpoint_loaded);
            for i in 0..40u64 {
                let mac = format!("aa:bb:cc:dd:ee:{:02x}", i % 5);
                let t = 1_000 + (i as i64) * 7;
                let ap = format!("wap{}", i % 3);
                durable.ingest_raw(&mac, t, &ap).unwrap();
                reference.ingest_raw(&mac, t, &ap).unwrap();
            }
            // Dropped without checkpoint: simulates a crash (fsync=always,
            // so every frame is durable).
        }
        let (recovered, report) =
            DurableEventStore::open(config, EventStore::new(space())).unwrap();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.replayed, 40);
        assert_eq!(recovered.store(), &reference);
        assert_eq!(
            recovered.store().to_snapshot_bytes().unwrap(),
            reference.to_snapshot_bytes().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_trims_the_tail_and_skips_replay() {
        let dir = temp_dir("checkpoint-trim");
        std::fs::remove_dir_all(&dir).ok();
        let config = Durability::new(&dir);
        let (mut durable, _) =
            DurableEventStore::open(config.clone(), EventStore::new(space())).unwrap();
        for i in 0..10u64 {
            durable
                .ingest_raw("aa:bb:cc:dd:ee:01", 100 + i as i64, "wap0")
                .unwrap();
        }
        durable.checkpoint().unwrap();
        assert_eq!(durable.wal_stats().frames, 0);
        let snapshot = durable.store().to_snapshot_bytes().unwrap();
        drop(durable);
        let (recovered, report) =
            DurableEventStore::open(config, EventStore::new(space())).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.base_events, 10);
        assert_eq!(recovered.store().to_snapshot_bytes().unwrap(), snapshot);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_is_idempotent_when_checkpoint_already_covers_the_tail() {
        // Simulates a crash between checkpoint write and segment trim: the
        // checkpoint contains everything and the stale tail must be skipped.
        let dir = temp_dir("idempotent");
        std::fs::remove_dir_all(&dir).ok();
        let config = Durability::new(&dir);
        let (mut durable, _) =
            DurableEventStore::open(config.clone(), EventStore::new(space())).unwrap();
        for i in 0..8u64 {
            durable
                .ingest_raw("aa:bb:cc:dd:ee:02", 500 + i as i64, "wap1")
                .unwrap();
        }
        // Write the checkpoint WITHOUT trimming (crash window).
        write_checkpoint(&config.dir, durable.store()).unwrap();
        let snapshot = durable.store().to_snapshot_bytes().unwrap();
        drop(durable);
        let (recovered, report) = recover_store(&config.dir, EventStore::new(space())).unwrap();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.skipped, 8);
        assert_eq!(recovered.to_snapshot_bytes().unwrap(), snapshot);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_reports_durable_request_ids_for_replayed_and_skipped_records() {
        let dir = temp_dir("acked-ingests");
        std::fs::remove_dir_all(&dir).ok();
        let config = Durability::new(&dir);
        let (mut wal, _) = ShardWal::open(&config, 0).unwrap();
        for (id, request_id) in [(0u64, Some(0xA1)), (1, None), (2, Some(0xA2))] {
            wal.append(&WalRecord {
                id,
                t: 100 + id as i64,
                ap: 0,
                mac: "aa:bb:cc:dd:ee:01".into(),
                request_id,
            })
            .unwrap();
        }
        drop(wal);
        let (recovered, report) = recover_store(&dir, EventStore::new(space())).unwrap();
        assert_eq!(report.replayed, 3);
        // Only tagged records surface, in event-id order; untagged ones
        // (batch members, pre-token clients) carry nothing to replay.
        assert_eq!(
            report.acked_ingests,
            vec![
                AckedIngest {
                    request_id: 0xA1,
                    mac: "aa:bb:cc:dd:ee:01".into(),
                    t: 100,
                    ap: 0,
                },
                AckedIngest {
                    request_id: 0xA2,
                    mac: "aa:bb:cc:dd:ee:01".into(),
                    t: 102,
                    ap: 0,
                },
            ]
        );
        // A checkpoint covering the tail keeps the tokens visible: a record
        // inside the checkpoint was just as durable, and its ack just as
        // losable, as one the replay applied.
        write_checkpoint(&dir, &recovered).unwrap();
        let (_, report) = recover_store(&dir, EventStore::new(space())).unwrap();
        assert_eq!((report.replayed, report.skipped), (0, 3));
        assert_eq!(report.acked_ingests.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_event_ids_across_shards_are_a_typed_error() {
        let dir = temp_dir("duplicate-ids");
        std::fs::remove_dir_all(&dir).ok();
        let config = Durability::new(&dir);
        for shard in 0..2 {
            let (mut wal, _) = ShardWal::open(&config, shard).unwrap();
            wal.append(&WalRecord {
                id: 7,
                t: 100,
                ap: 0,
                mac: format!("aa:bb:cc:dd:ee:{shard:02x}"),
                request_id: None,
            })
            .unwrap();
        }
        let err = recover_store(&dir, EventStore::new(space())).unwrap_err();
        assert!(matches!(err, WalError::InvalidLog(_)), "got: {err}");
        assert!(err.to_string().contains("event id 7"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaying_into_a_mismatched_space_is_a_typed_error() {
        let dir = temp_dir("bad-space");
        std::fs::remove_dir_all(&dir).ok();
        let config = Durability::new(&dir);
        let (mut wal, _) = ShardWal::open(&config, 0).unwrap();
        wal.append(&WalRecord {
            id: 0,
            t: 100,
            ap: 99, // no such access point in the fallback space
            mac: "aa:bb:cc:dd:ee:01".into(),
            request_id: None,
        })
        .unwrap();
        drop(wal);
        let err = recover_store(&dir, EventStore::new(space())).unwrap_err();
        assert!(matches!(err, WalError::Replay(_)), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_append_failure_leaves_the_store_unchanged() {
        let dir = temp_dir("append-fail");
        std::fs::remove_dir_all(&dir).ok();
        let config = Durability::new(&dir);
        let (mut durable, _) = DurableEventStore::open(config, EventStore::new(space())).unwrap();
        durable
            .ingest_raw("aa:bb:cc:dd:ee:01", 100, "wap0")
            .unwrap();
        // Unknown AP fails validation before the id draw and the append.
        let err = durable
            .ingest_raw("aa:bb:cc:dd:ee:01", 200, "wap9")
            .unwrap_err();
        assert!(matches!(err, IngestError::UnknownAccessPoint(_)));
        assert_eq!(durable.store().num_events(), 1);
        assert_eq!(durable.wal_stats().frames, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
