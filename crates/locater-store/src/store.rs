//! The time-partitioned, segmented event store.

use crate::colocation::{ColocationIndex, ColocationIndexStats, DevicePostings};
use crate::compaction::{self, CompactionReport, TierStats};
use crate::csv::{format_csv, is_csv_header, parse_csv_line, RawEvent};
use crate::error::{IngestError, StoreError};
use crate::ndjson::parse_ndjson_line;
use crate::segment::{DeviceTimeline, EventsInRange, DEFAULT_SEGMENT_SPAN};
use crate::stats::DatasetStatistics;
use crate::timeline::{NearbyDevice, Timeline};
use locater_events::validity::{estimate_delta_events, ValidityConfig};
use locater_events::{
    Device, DeviceId, EventId, Gap, Interval, MacAddress, StoredEvent, Timestamp,
};
use locater_space::{AccessPointId, RegionId, Space};
use std::collections::HashMap;
use std::io::BufRead;
use std::sync::Arc;

/// The per-line parser the CSV loaders share (skips a first-line header).
fn csv_line_parser(line: &str, line_no: usize) -> Result<Option<RawEvent>, IngestError> {
    if line_no == 1 && is_csv_header(line) {
        return Ok(None);
    }
    parse_csv_line(line, line_no)
}

/// In-memory store of WiFi connectivity events for one building, organised as
/// per-device **time-partitioned segmented timelines**.
///
/// See the [crate-level documentation](crate) for the design rationale. The store owns
/// the [`Space`] (shared behind an `Arc` so cleaning engines can hold cheap clones) and
/// keeps, per device, a [`DeviceTimeline`] — immutable time-bucketed segments plus a
/// mutable head segment — alongside a global [`Timeline`] index. Window queries
/// ([`EventStore::events_of_in`], [`EventStore::gaps_of_in`]) prune whole segments by
/// their time bounds before touching any event, and the whole store round-trips
/// through a compact binary snapshot ([`EventStore::save_snapshot`] /
/// [`EventStore::load_snapshot`]) so a service restart does not replay the CSV log.
#[derive(Debug, Clone, PartialEq)]
pub struct EventStore {
    space: Arc<Space>,
    devices: Vec<Device>,
    mac_index: HashMap<MacAddress, DeviceId>,
    timelines: Vec<DeviceTimeline>,
    timeline: Timeline,
    colocation: ColocationIndex,
    next_event_id: u64,
    validity: ValidityConfig,
    segment_span: Timestamp,
}

impl EventStore {
    /// Creates an empty store over `space` with the default validity configuration
    /// and the default one-week segment span.
    pub fn new(space: Space) -> Self {
        Self::with_validity(space, ValidityConfig::default())
    }

    /// Creates an empty store with an explicit validity configuration.
    pub fn with_validity(space: Space, validity: ValidityConfig) -> Self {
        Self {
            space: Arc::new(space),
            devices: Vec::new(),
            mac_index: HashMap::new(),
            timelines: Vec::new(),
            timeline: Timeline::new(),
            colocation: ColocationIndex::new(DEFAULT_SEGMENT_SPAN),
            next_event_id: 0,
            validity,
            segment_span: DEFAULT_SEGMENT_SPAN,
        }
    }

    /// Re-partitions the store to the given segment span in seconds (clamped to
    /// ≥ 1). Existing per-device timelines are re-bucketed; typically called on
    /// an empty store right after construction.
    pub fn with_segment_span(mut self, span: Timestamp) -> Self {
        let span = span.max(1);
        if span != self.segment_span {
            self.segment_span = span;
            for timeline in &mut self.timelines {
                let mut rebucketed = DeviceTimeline::new(span);
                for event in timeline.iter() {
                    rebucketed.push(*event);
                }
                *timeline = rebucketed;
            }
            self.colocation = ColocationIndex::rebuild(span, &self.timelines);
        }
        self
    }

    /// The segment span (bucket width) in seconds.
    pub fn segment_span(&self) -> Timestamp {
        self.segment_span
    }

    /// The space metadata this store is attached to.
    pub fn space(&self) -> &Arc<Space> {
        &self.space
    }

    /// The validity-estimation configuration.
    pub fn validity_config(&self) -> &ValidityConfig {
        &self.validity
    }

    // ------------------------------------------------------------------
    // Devices
    // ------------------------------------------------------------------

    /// Number of distinct devices observed.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// All devices, indexable by [`DeviceId::index`].
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Returns the device with the given id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this store.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Looks up a device id by MAC address / log identifier.
    pub fn device_id(&self, mac: &str) -> Option<DeviceId> {
        let mac = MacAddress::parse(mac).ok()?;
        self.mac_index.get(&mac).copied()
    }

    /// Interns a device, creating it with the default validity period if unseen.
    pub fn intern_device(&mut self, mac: &str) -> Result<DeviceId, IngestError> {
        let mac = MacAddress::parse(mac)?;
        if let Some(&id) = self.mac_index.get(&mac) {
            return Ok(id);
        }
        let id = DeviceId::new(self.devices.len() as u32);
        self.devices
            .push(Device::new(id, mac.clone(), self.validity.default_delta));
        self.timelines.push(DeviceTimeline::new(self.segment_span));
        self.colocation.add_device();
        self.mac_index.insert(mac, id);
        Ok(id)
    }

    /// The validity period δ of a device, in seconds.
    pub fn delta(&self, device: DeviceId) -> Timestamp {
        self.devices[device.index()].delta
    }

    /// Overrides the validity period of a device.
    pub fn set_delta(&mut self, device: DeviceId, delta: Timestamp) {
        self.devices[device.index()].delta = delta.max(1);
    }

    /// The largest validity period across all devices (used as the slack when scanning
    /// the global timeline for nearby devices).
    pub fn max_delta(&self) -> Timestamp {
        self.devices
            .iter()
            .map(|d| d.delta)
            .max()
            .unwrap_or(self.validity.default_delta)
    }

    /// Re-estimates every device's validity period from its own history
    /// (paper Appendix 9.1). Devices with too little history keep the default.
    pub fn estimate_deltas(&mut self) {
        for device in &mut self.devices {
            let timeline = &self.timelines[device.id.index()];
            device.delta = estimate_delta_events(timeline.iter(), &self.validity);
        }
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Validates a raw event without ingesting it, with exactly the checks and
    /// error order of [`EventStore::ingest_raw`] (access point, then
    /// timestamp). The sharded service calls this before drawing a global
    /// event id, so a rejected event never consumes an id — keeping this the
    /// single source of truth is what guarantees sharded and single-shard
    /// stores assign identical id sequences.
    pub fn validate_raw(&self, t: Timestamp, ap_name: &str) -> Result<AccessPointId, IngestError> {
        let ap = self
            .space
            .ap_id(ap_name)
            .ok_or_else(|| IngestError::UnknownAccessPoint(ap_name.to_string()))?;
        if t < 0 {
            return Err(IngestError::InvalidTimestamp(t));
        }
        Ok(ap)
    }

    /// Ingests one raw event given the access point *name* (as found in logs).
    pub fn ingest_raw(
        &mut self,
        mac: &str,
        t: Timestamp,
        ap_name: &str,
    ) -> Result<EventId, IngestError> {
        let ap = self.validate_raw(t, ap_name)?;
        self.ingest(mac, t, ap)
    }

    /// Ingests one event with an already-resolved access point id. Appends to the
    /// device's head segment (O(1) for in-timestamp-order arrivals).
    pub fn ingest(
        &mut self,
        mac: &str,
        t: Timestamp,
        ap: AccessPointId,
    ) -> Result<EventId, IngestError> {
        if t < 0 {
            return Err(IngestError::InvalidTimestamp(t));
        }
        if ap.index() >= self.space.num_access_points() {
            return Err(IngestError::UnknownAccessPoint(ap.to_string()));
        }
        let device = self.intern_device(mac)?;
        let id = EventId::new(self.next_event_id);
        self.next_event_id += 1;
        self.timelines[device.index()].push(StoredEvent::new(id, t, ap));
        self.timeline.record(t, device, id, ap);
        self.colocation.record(device, t, ap);
        Ok(id)
    }

    /// The id the next ingested event will receive.
    pub fn next_event_id(&self) -> u64 {
        self.next_event_id
    }

    /// Aligns the event-id counter. Partitioning plumbing: the sharded service
    /// keeps event ids globally sequential across per-shard partitions by
    /// setting the owning shard's counter from one shared sequence before each
    /// append (see [`EventStore::split`]), so a rejoined store is bit-identical
    /// to what one unpartitioned store would have produced.
    pub fn set_next_event_id(&mut self, next: u64) {
        self.next_event_id = next;
    }

    /// Ingests a batch of raw events, stopping at the first error.
    pub fn ingest_batch<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a RawEvent>,
    ) -> Result<usize, IngestError> {
        let mut count = 0;
        for event in events {
            self.ingest_raw(&event.mac, event.t, &event.ap)?;
            count += 1;
        }
        Ok(count)
    }

    // ------------------------------------------------------------------
    // Event access
    // ------------------------------------------------------------------

    /// Total number of events ingested.
    pub fn num_events(&self) -> usize {
        self.timeline.len()
    }

    /// Total number of segments across all device timelines.
    pub fn num_segments(&self) -> usize {
        self.timelines.iter().map(|t| t.num_segments()).sum()
    }

    /// The segmented, time-sorted event timeline of a device (`E(d_i)`).
    pub fn timeline_of(&self, device: DeviceId) -> &DeviceTimeline {
        &self.timelines[device.index()]
    }

    /// Events of a device with timestamps in `[range.start, range.end)`, as a
    /// segment-pruned iterator: segments outside the range are never touched.
    pub fn events_of_in(&self, device: DeviceId, range: Interval) -> EventsInRange<'_> {
        self.timelines[device.index()].in_range(range)
    }

    /// The event (and its global index in the device timeline) whose validity interval
    /// covers `t`, if any.
    pub fn covering_event(&self, device: DeviceId, t: Timestamp) -> Option<(usize, StoredEvent)> {
        self.timelines[device.index()].covering_event(t, self.delta(device))
    }

    /// The region a covering event (if any) places the device in at time `t`.
    pub fn covering_region(&self, device: DeviceId, t: Timestamp) -> Option<RegionId> {
        self.covering_event(device, t).map(|(_, e)| e.region())
    }

    /// All gaps of a device (`GAP(d_i)`).
    pub fn gaps_of(&self, device: DeviceId) -> Vec<Gap> {
        self.timelines[device.index()].gaps(self.delta(device))
    }

    /// Gaps of a device whose interval intersects `window` — computed from the
    /// segments overlapping the window only, never from the full history.
    pub fn gaps_of_in(&self, device: DeviceId, window: Interval) -> Vec<Gap> {
        self.timelines[device.index()].gaps_in_window(window, self.delta(device))
    }

    /// The gap containing `t` for this device, if `t` falls in one.
    pub fn gap_at(&self, device: DeviceId, t: Timestamp) -> Option<Gap> {
        self.timelines[device.index()].gap_at(t, self.delta(device))
    }

    /// Devices with at least one event in `[t − slack, t + slack]`, excluding
    /// `exclude`, each with its closest event.
    pub fn devices_near(
        &self,
        t: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice> {
        self.timeline.devices_near(t, slack, exclude)
    }

    /// Devices *online* at time `t`: devices with a covering event at `t`, reported
    /// with the region that event places them in. `exclude` is omitted from the result.
    ///
    /// Answered with **one scan** over the global timeline window instead of
    /// a per-device covering-event lookup; results are identical to the
    /// reference `devices_near` + `covering_region` composition of
    /// [`crate::EventRead::devices_online_at`] (property-tested).
    pub fn devices_online_at(
        &self,
        t: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<(DeviceId, RegionId)> {
        let slack = self.max_delta();
        crate::timeline::devices_online_in(
            self.timeline.range(t - slack, t + slack + 1),
            t,
            exclude,
            &self.devices,
        )
    }

    /// Overall time span `[first event, last event]` of the dataset, if non-empty.
    pub fn time_span(&self) -> Option<Interval> {
        let first = self.timeline.range(i64::MIN / 2, i64::MAX / 2).first()?.t;
        let last = self.timeline.range(i64::MIN / 2, i64::MAX / 2).last()?.t;
        Some(Interval::new(first, last + 1))
    }

    /// The global timeline index.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The incremental co-location index (per-AP, time-bucketed posting lists
    /// per device; see [`crate::colocation`]). Maintained in the same mutation
    /// that appends an event, so it is never stale.
    pub fn colocation_index(&self) -> &ColocationIndex {
        &self.colocation
    }

    /// The co-location postings of one device.
    ///
    /// # Panics
    /// Panics if the id does not belong to this store.
    pub fn device_postings(&self, device: DeviceId) -> &DevicePostings {
        self.colocation.device(device)
    }

    /// Size counters of the co-location index (reported by `locater-cli stats`).
    pub fn colocation_stats(&self) -> ColocationIndexStats {
        self.colocation.stats()
    }

    // ------------------------------------------------------------------
    // Compaction / tiered ageing (policy lives in `crate::compaction`)
    // ------------------------------------------------------------------

    /// Compacts the store against a retention horizon: evicts every whole
    /// segment bucket strictly below `horizon` from the per-device timelines,
    /// the global timeline index and the co-location posting lists in one
    /// coherent mutation, and distills the evicted history into the cold
    /// tiers of the returned [`CompactionReport`] (per-device per-AP dwell
    /// summaries plus an eviction-only spill store).
    ///
    /// The cut is **bucket-aligned** (`cut = horizon.div_euclid(span) · span ≤
    /// horizon`): buckets partition time uniformly for all devices and for
    /// the posting lists, so all three structures drop exactly the events
    /// with `t < cut` and can never disagree. The event-id counter, the
    /// device table and every retained segment are untouched — answers whose
    /// consulted window lies at or above `cut` are byte-identical with
    /// compaction on or off.
    pub fn compact(&mut self, horizon: Timestamp) -> CompactionReport {
        let cut_bucket = horizon.div_euclid(self.segment_span);
        let cut = cut_bucket.saturating_mul(self.segment_span);
        let mut evicted: Vec<(DeviceId, Vec<crate::segment::Segment>)> = Vec::new();
        let mut evicted_events = 0usize;
        let mut evicted_segments = 0usize;
        for (idx, timeline) in self.timelines.iter_mut().enumerate() {
            let segments = timeline.evict_before_bucket(cut_bucket);
            if !segments.is_empty() {
                evicted_segments += segments.len();
                evicted_events += segments.iter().map(|s| s.len()).sum::<usize>();
                evicted.push((DeviceId::new(idx as u32), segments));
            }
        }
        if evicted_events == 0 {
            return CompactionReport::empty(horizon, cut);
        }
        let trimmed_entries = self.timeline.trim_before(cut);
        let trimmed_postings = self.colocation.trim_before_bucket(cut_bucket);
        debug_assert_eq!(trimmed_entries, evicted_events);
        debug_assert_eq!(trimmed_postings, evicted_events);
        let mut summaries = Vec::new();
        for (device, segments) in &evicted {
            compaction::summarize_device(
                &self.space,
                &self.devices[device.index()],
                segments,
                self.segment_span,
                &mut summaries,
            );
        }
        let spill = compaction::build_spill(self, &evicted)
            .expect("evicted events came from this store and re-ingest cleanly");
        CompactionReport {
            horizon,
            cut,
            evicted_events,
            evicted_segments,
            summaries,
            spill: Some(spill),
        }
    }

    /// Approximate resident heap bytes of the store (allocated capacity of
    /// the per-device timelines, the global timeline index and the
    /// co-location posting lists — the structures that grow with history).
    /// Compaction releases the freed capacity, so this gauge falls when
    /// segments are evicted; it is what the soak harness and the `stats`
    /// surfaces report.
    pub fn approx_resident_bytes(&self) -> usize {
        self.timelines
            .iter()
            .map(DeviceTimeline::approx_bytes)
            .sum::<usize>()
            + self.timeline.approx_bytes()
            + self.colocation.approx_bytes()
    }

    /// Hot-tier shape of the store: head vs. sealed segment counts plus the
    /// resident-bytes estimate (see [`TierStats`]).
    pub fn tier_stats(&self) -> TierStats {
        let head_segments = self
            .timelines
            .iter()
            .filter(|timeline| !timeline.is_empty())
            .count();
        TierStats {
            head_segments,
            sealed_segments: self.num_segments() - head_segments,
            resident_bytes: self.approx_resident_bytes(),
        }
    }

    // ------------------------------------------------------------------
    // Statistics / CSV / NDJSON
    // ------------------------------------------------------------------

    /// Computes dataset statistics (event counts, devices, span, events per day).
    pub fn stats(&self) -> DatasetStatistics {
        DatasetStatistics::compute(self)
    }

    /// Serializes all events as CSV (`mac,timestamp,ap` with a header line).
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<RawEvent> = Vec::with_capacity(self.num_events());
        for device in &self.devices {
            for event in self.timelines[device.id.index()].iter() {
                rows.push(RawEvent {
                    mac: device.mac.as_str().to_string(),
                    t: event.t,
                    ap: self.space.access_point(event.ap).name.clone(),
                });
            }
        }
        rows.sort_by_key(|r| r.t);
        format_csv(&rows)
    }

    /// Builds a store by parsing CSV produced by [`EventStore::to_csv`] (or any
    /// `mac,timestamp,ap` file with a header). Streams line by line; semantic
    /// ingestion errors (unknown AP, bad MAC) are annotated with the offending
    /// line number.
    pub fn from_csv(space: Space, csv: &str) -> Result<Self, IngestError> {
        let mut store = Self::new(space);
        store.ingest_lines(csv.lines(), csv_line_parser)?;
        Ok(store)
    }

    /// Builds a store from an NDJSON document (one `{"mac", "t", "ap"}` object
    /// per line; see [`crate::parse_ndjson`]).
    pub fn from_ndjson(space: Space, ndjson: &str) -> Result<Self, IngestError> {
        let mut store = Self::new(space);
        store.ingest_lines(ndjson.lines(), parse_ndjson_line)?;
        Ok(store)
    }

    /// Streams CSV events from a reader into the store in bounded memory (one
    /// line at a time — a multi-gigabyte export never materializes). Returns
    /// the number of events ingested. Errors carry the 1-based line number.
    pub fn load_csv_reader(&mut self, reader: impl BufRead) -> Result<usize, StoreError> {
        self.load_lines(reader, csv_line_parser)
    }

    /// Streams NDJSON events from a reader into the store in bounded memory.
    /// Returns the number of events ingested. Errors carry the line number.
    pub fn load_ndjson_reader(&mut self, reader: impl BufRead) -> Result<usize, StoreError> {
        self.load_lines(reader, parse_ndjson_line)
    }

    fn load_lines(
        &mut self,
        reader: impl BufRead,
        parse: impl Fn(&str, usize) -> Result<Option<RawEvent>, IngestError>,
    ) -> Result<usize, StoreError> {
        let mut count = 0usize;
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            count += self.ingest_parsed_line(&line, idx + 1, &parse)? as usize;
        }
        Ok(count)
    }

    /// [`EventStore::load_lines`] over an in-memory line iterator, where I/O
    /// cannot fail and every error is an [`IngestError`] with line context.
    fn ingest_lines<'a>(
        &mut self,
        lines: impl Iterator<Item = &'a str>,
        parse: impl Fn(&str, usize) -> Result<Option<RawEvent>, IngestError>,
    ) -> Result<usize, IngestError> {
        let mut count = 0usize;
        for (idx, line) in lines.enumerate() {
            count += self.ingest_parsed_line(line, idx + 1, &parse)? as usize;
        }
        Ok(count)
    }

    /// Parses and ingests one input line, annotating semantic ingestion errors
    /// with the 1-based line number. Returns whether an event was ingested.
    fn ingest_parsed_line(
        &mut self,
        line: &str,
        line_no: usize,
        parse: &impl Fn(&str, usize) -> Result<Option<RawEvent>, IngestError>,
    ) -> Result<bool, IngestError> {
        let Some(event) = parse(line, line_no)? else {
            return Ok(false);
        };
        self.ingest_raw(&event.mac, event.t, &event.ap)
            .map_err(|err| err.at_line(line_no))?;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Snapshot plumbing (the format lives in `crate::snapshot`)
    // ------------------------------------------------------------------

    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &Space,
        &ValidityConfig,
        Timestamp,
        u64,
        &[Device],
        &[DeviceTimeline],
    ) {
        (
            &self.space,
            &self.validity,
            self.segment_span,
            self.next_event_id,
            &self.devices,
            &self.timelines,
        )
    }

    /// Reassembles a store from decoded snapshot parts: rebuilds the MAC index
    /// and the global timeline (events sorted by `(t, device, event id)`, which
    /// is exactly the canonical order incremental ingestion keeps the index in).
    ///
    /// `colocation` is an already-decoded (or partition-sliced) co-location
    /// index to adopt instead of rebuilding one from the timelines; it must
    /// describe exactly the same events (validated per device by count and
    /// span, the cheap invariants — content equality is the encoder's job and
    /// covered by the snapshot checksum).
    pub(crate) fn from_snapshot_parts(
        space: Space,
        validity: ValidityConfig,
        segment_span: Timestamp,
        next_event_id: u64,
        devices: Vec<Device>,
        timelines: Vec<DeviceTimeline>,
        colocation: Option<ColocationIndex>,
    ) -> Result<Self, StoreError> {
        if devices.len() != timelines.len() {
            return Err(StoreError::Corrupt(format!(
                "{} devices but {} timelines",
                devices.len(),
                timelines.len()
            )));
        }
        let mut mac_index = HashMap::with_capacity(devices.len());
        for (idx, device) in devices.iter().enumerate() {
            if device.id.index() != idx {
                return Err(StoreError::Corrupt(format!(
                    "device table out of order at index {idx}"
                )));
            }
            if mac_index.insert(device.mac.clone(), device.id).is_some() {
                return Err(StoreError::Corrupt(format!(
                    "duplicate device mac {}",
                    device.mac
                )));
            }
        }
        let mut entries: Vec<(Timestamp, u64, DeviceId, AccessPointId)> = Vec::new();
        for (idx, timeline) in timelines.iter().enumerate() {
            let device = DeviceId::new(idx as u32);
            for event in timeline.iter() {
                if event.ap.index() >= space.num_access_points() {
                    return Err(StoreError::Corrupt(format!(
                        "event {} references unknown access point {}",
                        event.id, event.ap
                    )));
                }
                entries.push((event.t, event.id.0, device, event.ap));
            }
        }
        entries.sort_unstable_by_key(|&(t, id, device, _)| (t, device, id));
        let mut timeline = Timeline::new();
        for (t, id, device, ap) in entries {
            timeline.record(t, device, EventId::new(id), ap);
        }
        let segment_span = segment_span.max(1);
        let colocation = match colocation {
            Some(index) => {
                if index.span() != segment_span || index.num_devices() != timelines.len() {
                    return Err(StoreError::Corrupt(
                        "co-location index does not match the event runs".to_string(),
                    ));
                }
                for (idx, timeline) in timelines.iter().enumerate() {
                    if index.device(DeviceId::new(idx as u32)).len() != timeline.len() {
                        return Err(StoreError::Corrupt(format!(
                            "co-location index of device {idx} does not match its timeline"
                        )));
                    }
                }
                index
            }
            None => ColocationIndex::rebuild(segment_span, &timelines),
        };
        Ok(Self {
            space: Arc::new(space),
            devices,
            mac_index,
            timelines,
            timeline,
            colocation,
            next_event_id,
            validity,
            segment_span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::SpaceBuilder;

    fn space() -> Space {
        SpaceBuilder::new("demo")
            .add_access_point("wap1", &["r1", "r2"])
            .add_access_point("wap2", &["r2", "r3"])
            .add_access_point("wap3", &["r3", "r4"])
            .build()
            .unwrap()
    }

    fn store_with_events() -> EventStore {
        let mut store = EventStore::new(space());
        store.ingest_raw("d1", 1_000, "wap1").unwrap();
        store.ingest_raw("d1", 1_200, "wap1").unwrap();
        store.ingest_raw("d1", 10_000, "wap2").unwrap();
        store.ingest_raw("d2", 1_100, "wap2").unwrap();
        store.ingest_raw("d3", 9_800, "wap3").unwrap();
        store
    }

    #[test]
    fn ingestion_interns_devices_and_counts_events() {
        let store = store_with_events();
        assert_eq!(store.num_devices(), 3);
        assert_eq!(store.num_events(), 5);
        let d1 = store.device_id("d1").unwrap();
        assert_eq!(store.timeline_of(d1).len(), 3);
        assert_eq!(store.device(d1).mac.as_str(), "d1");
        assert!(store.device_id("nope").is_none());
        assert_eq!(store.devices().len(), 3);
    }

    #[test]
    fn unknown_access_point_is_rejected() {
        let mut store = EventStore::new(space());
        let err = store.ingest_raw("d1", 100, "wap9").unwrap_err();
        assert_eq!(err, IngestError::UnknownAccessPoint("wap9".into()));
        let err = store.ingest("d1", 100, AccessPointId::new(99)).unwrap_err();
        assert!(matches!(err, IngestError::UnknownAccessPoint(_)));
    }

    #[test]
    fn negative_timestamp_is_rejected() {
        let mut store = EventStore::new(space());
        let err = store.ingest_raw("d1", -5, "wap1").unwrap_err();
        assert_eq!(err, IngestError::InvalidTimestamp(-5));
    }

    #[test]
    fn invalid_mac_is_rejected() {
        let mut store = EventStore::new(space());
        assert!(store.ingest_raw("", 100, "wap1").is_err());
    }

    #[test]
    fn covering_event_and_gap_lookup() {
        let store = store_with_events();
        let d1 = store.device_id("d1").unwrap();
        // Default delta is 600: 1_000 and 1_200 merge, gap until 10_000.
        assert!(store.covering_event(d1, 1_100).is_some());
        assert_eq!(
            store.covering_region(d1, 1_100),
            Some(AccessPointId::new(0).region())
        );
        let gap = store.gap_at(d1, 5_000).unwrap();
        assert_eq!(gap.prev_t, 1_200);
        assert_eq!(gap.next_t, 10_000);
        assert!(store.gap_at(d1, 1_100).is_none());
        assert_eq!(store.gaps_of(d1).len(), 1);
        // Window queries.
        assert_eq!(store.gaps_of_in(d1, Interval::new(0, 500)).len(), 0);
        assert_eq!(store.gaps_of_in(d1, Interval::new(2_000, 3_000)).len(), 1);
        assert_eq!(
            store.events_of_in(d1, Interval::new(1_000, 1_201)).count(),
            2
        );
    }

    #[test]
    fn devices_online_at_uses_validity() {
        let store = store_with_events();
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let d3 = store.device_id("d3").unwrap();
        let online = store.devices_online_at(1_150, None);
        let ids: Vec<DeviceId> = online.iter().map(|(d, _)| *d).collect();
        assert!(ids.contains(&d1));
        assert!(ids.contains(&d2));
        assert!(!ids.contains(&d3));
        // Excluding the queried device.
        let online = store.devices_online_at(1_150, Some(d1));
        assert!(online.iter().all(|(d, _)| *d != d1));
        // d3 is online later.
        let online = store.devices_online_at(9_900, None);
        assert!(online.iter().any(|(d, _)| *d == d3));
    }

    #[test]
    fn set_delta_changes_gap_detection() {
        let mut store = store_with_events();
        let d1 = store.device_id("d1").unwrap();
        assert_eq!(store.delta(d1), 600);
        store.set_delta(d1, 5_000);
        assert!(store.gap_at(d1, 5_000).is_none());
        assert_eq!(store.max_delta(), 5_000);
        store.set_delta(d1, 0); // clamped to 1
        assert_eq!(store.delta(d1), 1);
    }

    #[test]
    fn estimate_deltas_uses_history() {
        let mut store = EventStore::new(space());
        for i in 0..30 {
            store.ingest_raw("regular", i * 300, "wap1").unwrap();
        }
        store.ingest_raw("sparse", 0, "wap1").unwrap();
        store.estimate_deltas();
        let regular = store.device_id("regular").unwrap();
        let sparse = store.device_id("sparse").unwrap();
        assert_eq!(store.delta(regular), 300);
        assert_eq!(store.delta(sparse), store.validity_config().default_delta);
    }

    #[test]
    fn time_span_covers_all_events() {
        let store = store_with_events();
        let span = store.time_span().unwrap();
        assert_eq!(span.start, 1_000);
        assert_eq!(span.end, 10_001);
        assert!(EventStore::new(space()).time_span().is_none());
    }

    #[test]
    fn csv_roundtrip_preserves_events() {
        let store = store_with_events();
        let csv = store.to_csv();
        let back = EventStore::from_csv(space(), &csv).unwrap();
        assert_eq!(back.num_events(), store.num_events());
        assert_eq!(back.num_devices(), store.num_devices());
        let d1 = back.device_id("d1").unwrap();
        assert_eq!(back.timeline_of(d1).len(), 3);
    }

    #[test]
    fn out_of_order_ingestion_is_supported() {
        let mut store = EventStore::new(space());
        store.ingest_raw("d1", 5_000, "wap1").unwrap();
        store.ingest_raw("d1", 1_000, "wap2").unwrap();
        store.ingest_raw("d1", 3_000, "wap3").unwrap();
        let d1 = store.device_id("d1").unwrap();
        let ts: Vec<Timestamp> = store.timeline_of(d1).iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1_000, 3_000, 5_000]);
    }

    #[test]
    fn events_land_in_time_bucketed_segments() {
        let week = locater_events::SECONDS_PER_WEEK;
        let mut store = EventStore::new(space());
        store.ingest_raw("d1", 100, "wap1").unwrap();
        store.ingest_raw("d1", 200, "wap1").unwrap();
        store.ingest_raw("d1", week + 50, "wap2").unwrap();
        store.ingest_raw("d1", 3 * week + 10, "wap2").unwrap();
        let d1 = store.device_id("d1").unwrap();
        let timeline = store.timeline_of(d1);
        assert_eq!(timeline.num_segments(), 3);
        assert_eq!(timeline.head().unwrap().bucket(), 3);
        assert_eq!(store.num_segments(), 3);
        // Window pruning only touches the overlapping segment.
        let window = Interval::new(week, 2 * week);
        let in_window: Vec<Timestamp> = store.events_of_in(d1, window).map(|e| e.t).collect();
        assert_eq!(in_window, vec![week + 50]);
    }

    #[test]
    fn with_segment_span_rebuckets_existing_events() {
        let store = store_with_events().with_segment_span(1_000);
        let d1 = store.device_id("d1").unwrap();
        assert_eq!(store.segment_span(), 1_000);
        // Events at 1_000/1_200 share bucket 1; 10_000 sits in bucket 10.
        assert_eq!(store.timeline_of(d1).num_segments(), 2);
        let ts: Vec<Timestamp> = store.timeline_of(d1).iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1_000, 1_200, 10_000]);
        // Gap structure is representation-independent.
        assert_eq!(store.gaps_of(d1).len(), 1);
    }

    #[test]
    fn csv_ingest_errors_carry_line_numbers() {
        // Line 3 references an unknown access point: a semantic (not parse)
        // error, which the streaming loader must still locate.
        let csv = "mac,timestamp,ap\nd1,100,wap1\nd1,200,wap9\n";
        let err = EventStore::from_csv(space(), csv).unwrap_err();
        assert_eq!(err.line(), Some(3));
        assert_eq!(
            err.to_string(),
            "line 3: unknown access point in event: wap9"
        );
        // Parse errors keep their own line/column context.
        let err = EventStore::from_csv(space(), "d1,abc,wap1\n").unwrap_err();
        assert!(matches!(
            err,
            IngestError::Malformed {
                line: 1,
                column: 4,
                ..
            }
        ));
    }

    #[test]
    fn ndjson_roundtrip_matches_csv_ingestion() {
        let store = store_with_events();
        let rows = crate::parse_csv(&store.to_csv()).unwrap();
        let ndjson = crate::format_ndjson(&rows);
        let back = EventStore::from_ndjson(space(), &ndjson).unwrap();
        // Same events end up in the same segments (event ids differ because the
        // CSV export re-sorts rows globally by time).
        assert_eq!(back.num_events(), store.num_events());
        assert_eq!(back.num_devices(), store.num_devices());
        assert_eq!(back.num_segments(), store.num_segments());
        let d1 = back.device_id("d1").unwrap();
        let ts: Vec<Timestamp> = back.timeline_of(d1).iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1_000, 1_200, 10_000]);
        // Bad NDJSON reports its line.
        let err = EventStore::from_ndjson(space(), "{\"mac\":\"d1\",\"t\":1,\"ap\":\"wap9\"}\n")
            .unwrap_err();
        assert_eq!(err.line(), Some(1));
    }

    #[test]
    fn streaming_loader_counts_events() {
        let mut store = EventStore::new(space());
        let n = store
            .load_csv_reader("mac,timestamp,ap\nd1,100,wap1\n\nd2,200,wap2\n".as_bytes())
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(store.num_events(), 2);
    }
}
