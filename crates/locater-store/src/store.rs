//! The in-memory event store.

use crate::csv::{format_csv, parse_csv, RawEvent};
use crate::error::IngestError;
use crate::stats::DatasetStatistics;
use crate::timeline::{NearbyDevice, Timeline};
use locater_events::validity::{estimate_delta, ValidityConfig};
use locater_events::{
    gap_containing, gaps_in, Device, DeviceId, EventId, EventSeq, Gap, Interval, MacAddress,
    StoredEvent, Timestamp,
};
use locater_space::{AccessPointId, RegionId, Space};
use std::collections::HashMap;
use std::sync::Arc;

/// In-memory store of WiFi connectivity events for one building.
///
/// See the [crate-level documentation](crate) for the design rationale. The store owns
/// the [`Space`] (shared behind an `Arc` so cleaning engines can hold cheap clones) and
/// keeps per-device event sequences plus a global [`Timeline`].
#[derive(Debug, Clone)]
pub struct EventStore {
    space: Arc<Space>,
    devices: Vec<Device>,
    mac_index: HashMap<MacAddress, DeviceId>,
    sequences: Vec<EventSeq>,
    timeline: Timeline,
    next_event_id: u64,
    validity: ValidityConfig,
}

impl EventStore {
    /// Creates an empty store over `space` with the default validity configuration.
    pub fn new(space: Space) -> Self {
        Self::with_validity(space, ValidityConfig::default())
    }

    /// Creates an empty store with an explicit validity configuration.
    pub fn with_validity(space: Space, validity: ValidityConfig) -> Self {
        Self {
            space: Arc::new(space),
            devices: Vec::new(),
            mac_index: HashMap::new(),
            sequences: Vec::new(),
            timeline: Timeline::new(),
            next_event_id: 0,
            validity,
        }
    }

    /// The space metadata this store is attached to.
    pub fn space(&self) -> &Arc<Space> {
        &self.space
    }

    /// The validity-estimation configuration.
    pub fn validity_config(&self) -> &ValidityConfig {
        &self.validity
    }

    // ------------------------------------------------------------------
    // Devices
    // ------------------------------------------------------------------

    /// Number of distinct devices observed.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// All devices, indexable by [`DeviceId::index`].
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Returns the device with the given id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this store.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Looks up a device id by MAC address / log identifier.
    pub fn device_id(&self, mac: &str) -> Option<DeviceId> {
        let mac = MacAddress::parse(mac).ok()?;
        self.mac_index.get(&mac).copied()
    }

    /// Interns a device, creating it with the default validity period if unseen.
    pub fn intern_device(&mut self, mac: &str) -> Result<DeviceId, IngestError> {
        let mac = MacAddress::parse(mac)?;
        if let Some(&id) = self.mac_index.get(&mac) {
            return Ok(id);
        }
        let id = DeviceId::new(self.devices.len() as u32);
        self.devices
            .push(Device::new(id, mac.clone(), self.validity.default_delta));
        self.sequences.push(EventSeq::new());
        self.mac_index.insert(mac, id);
        Ok(id)
    }

    /// The validity period δ of a device, in seconds.
    pub fn delta(&self, device: DeviceId) -> Timestamp {
        self.devices[device.index()].delta
    }

    /// Overrides the validity period of a device.
    pub fn set_delta(&mut self, device: DeviceId, delta: Timestamp) {
        self.devices[device.index()].delta = delta.max(1);
    }

    /// The largest validity period across all devices (used as the slack when scanning
    /// the global timeline for nearby devices).
    pub fn max_delta(&self) -> Timestamp {
        self.devices
            .iter()
            .map(|d| d.delta)
            .max()
            .unwrap_or(self.validity.default_delta)
    }

    /// Re-estimates every device's validity period from its own history
    /// (paper Appendix 9.1). Devices with too little history keep the default.
    pub fn estimate_deltas(&mut self) {
        for device in &mut self.devices {
            let seq = &self.sequences[device.id.index()];
            device.delta = estimate_delta(seq, &self.validity);
        }
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Ingests one raw event given the access point *name* (as found in logs).
    pub fn ingest_raw(
        &mut self,
        mac: &str,
        t: Timestamp,
        ap_name: &str,
    ) -> Result<EventId, IngestError> {
        let ap = self
            .space
            .ap_id(ap_name)
            .ok_or_else(|| IngestError::UnknownAccessPoint(ap_name.to_string()))?;
        self.ingest(mac, t, ap)
    }

    /// Ingests one event with an already-resolved access point id.
    pub fn ingest(
        &mut self,
        mac: &str,
        t: Timestamp,
        ap: AccessPointId,
    ) -> Result<EventId, IngestError> {
        if t < 0 {
            return Err(IngestError::InvalidTimestamp(t));
        }
        if ap.index() >= self.space.num_access_points() {
            return Err(IngestError::UnknownAccessPoint(ap.to_string()));
        }
        let device = self.intern_device(mac)?;
        let id = EventId::new(self.next_event_id);
        self.next_event_id += 1;
        self.sequences[device.index()].push(StoredEvent::new(id, t, ap));
        self.timeline.record(t, device, ap);
        Ok(id)
    }

    /// Ingests a batch of raw events, stopping at the first error.
    pub fn ingest_batch<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a RawEvent>,
    ) -> Result<usize, IngestError> {
        let mut count = 0;
        for event in events {
            self.ingest_raw(&event.mac, event.t, &event.ap)?;
            count += 1;
        }
        Ok(count)
    }

    // ------------------------------------------------------------------
    // Event access
    // ------------------------------------------------------------------

    /// Total number of events ingested.
    pub fn num_events(&self) -> usize {
        self.timeline.len()
    }

    /// The time-sorted event sequence of a device (`E(d_i)`).
    pub fn events_of(&self, device: DeviceId) -> &EventSeq {
        &self.sequences[device.index()]
    }

    /// Events of a device with timestamps in `[range.start, range.end)`.
    pub fn events_of_in(&self, device: DeviceId, range: Interval) -> &[StoredEvent] {
        self.sequences[device.index()].in_range(range)
    }

    /// The event (and its index in the device sequence) whose validity interval covers
    /// `t`, if any.
    pub fn covering_event(&self, device: DeviceId, t: Timestamp) -> Option<(usize, &StoredEvent)> {
        self.sequences[device.index()].covering_event(t, self.delta(device))
    }

    /// The region a covering event (if any) places the device in at time `t`.
    pub fn covering_region(&self, device: DeviceId, t: Timestamp) -> Option<RegionId> {
        self.covering_event(device, t).map(|(_, e)| e.region())
    }

    /// All gaps of a device (`GAP(d_i)`).
    pub fn gaps_of(&self, device: DeviceId) -> Vec<Gap> {
        gaps_in(&self.sequences[device.index()], self.delta(device))
    }

    /// Gaps of a device whose interval intersects `window`.
    pub fn gaps_of_in(&self, device: DeviceId, window: Interval) -> Vec<Gap> {
        self.gaps_of(device)
            .into_iter()
            .filter(|g| g.interval().overlaps(&window))
            .collect()
    }

    /// The gap containing `t` for this device, if `t` falls in one.
    pub fn gap_at(&self, device: DeviceId, t: Timestamp) -> Option<Gap> {
        gap_containing(&self.sequences[device.index()], t, self.delta(device))
    }

    /// Devices with at least one event in `[t − slack, t + slack]`, excluding
    /// `exclude`, each with its closest event.
    pub fn devices_near(
        &self,
        t: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice> {
        self.timeline.devices_near(t, slack, exclude)
    }

    /// Devices *online* at time `t`: devices with a covering event at `t`, reported
    /// with the region that event places them in. `exclude` is omitted from the result.
    pub fn devices_online_at(
        &self,
        t: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<(DeviceId, RegionId)> {
        let slack = self.max_delta();
        self.devices_near(t, slack, exclude)
            .into_iter()
            .filter_map(|near| {
                self.covering_region(near.device, t)
                    .map(|region| (near.device, region))
            })
            .collect()
    }

    /// Overall time span `[first event, last event]` of the dataset, if non-empty.
    pub fn time_span(&self) -> Option<Interval> {
        let first = self.timeline.range(i64::MIN / 2, i64::MAX / 2).first()?.t;
        let last = self.timeline.range(i64::MIN / 2, i64::MAX / 2).last()?.t;
        Some(Interval::new(first, last + 1))
    }

    /// The global timeline index.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    // ------------------------------------------------------------------
    // Statistics / CSV
    // ------------------------------------------------------------------

    /// Computes dataset statistics (event counts, devices, span, events per day).
    pub fn stats(&self) -> DatasetStatistics {
        DatasetStatistics::compute(self)
    }

    /// Serializes all events as CSV (`mac,timestamp,ap` with a header line).
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<RawEvent> = Vec::with_capacity(self.num_events());
        for device in &self.devices {
            for event in self.sequences[device.id.index()].events() {
                rows.push(RawEvent {
                    mac: device.mac.as_str().to_string(),
                    t: event.t,
                    ap: self.space.access_point(event.ap).name.clone(),
                });
            }
        }
        rows.sort_by_key(|r| r.t);
        format_csv(&rows)
    }

    /// Builds a store by parsing CSV produced by [`EventStore::to_csv`] (or any
    /// `mac,timestamp,ap` file with a header).
    pub fn from_csv(space: Space, csv: &str) -> Result<Self, IngestError> {
        let rows = parse_csv(csv)?;
        let mut store = Self::new(space);
        store.ingest_batch(rows.iter())?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::SpaceBuilder;

    fn space() -> Space {
        SpaceBuilder::new("demo")
            .add_access_point("wap1", &["r1", "r2"])
            .add_access_point("wap2", &["r2", "r3"])
            .add_access_point("wap3", &["r3", "r4"])
            .build()
            .unwrap()
    }

    fn store_with_events() -> EventStore {
        let mut store = EventStore::new(space());
        store.ingest_raw("d1", 1_000, "wap1").unwrap();
        store.ingest_raw("d1", 1_200, "wap1").unwrap();
        store.ingest_raw("d1", 10_000, "wap2").unwrap();
        store.ingest_raw("d2", 1_100, "wap2").unwrap();
        store.ingest_raw("d3", 9_800, "wap3").unwrap();
        store
    }

    #[test]
    fn ingestion_interns_devices_and_counts_events() {
        let store = store_with_events();
        assert_eq!(store.num_devices(), 3);
        assert_eq!(store.num_events(), 5);
        let d1 = store.device_id("d1").unwrap();
        assert_eq!(store.events_of(d1).len(), 3);
        assert_eq!(store.device(d1).mac.as_str(), "d1");
        assert!(store.device_id("nope").is_none());
        assert_eq!(store.devices().len(), 3);
    }

    #[test]
    fn unknown_access_point_is_rejected() {
        let mut store = EventStore::new(space());
        let err = store.ingest_raw("d1", 100, "wap9").unwrap_err();
        assert_eq!(err, IngestError::UnknownAccessPoint("wap9".into()));
        let err = store.ingest("d1", 100, AccessPointId::new(99)).unwrap_err();
        assert!(matches!(err, IngestError::UnknownAccessPoint(_)));
    }

    #[test]
    fn negative_timestamp_is_rejected() {
        let mut store = EventStore::new(space());
        let err = store.ingest_raw("d1", -5, "wap1").unwrap_err();
        assert_eq!(err, IngestError::InvalidTimestamp(-5));
    }

    #[test]
    fn invalid_mac_is_rejected() {
        let mut store = EventStore::new(space());
        assert!(store.ingest_raw("", 100, "wap1").is_err());
    }

    #[test]
    fn covering_event_and_gap_lookup() {
        let store = store_with_events();
        let d1 = store.device_id("d1").unwrap();
        // Default delta is 600: 1_000 and 1_200 merge, gap until 10_000.
        assert!(store.covering_event(d1, 1_100).is_some());
        assert_eq!(
            store.covering_region(d1, 1_100),
            Some(AccessPointId::new(0).region())
        );
        let gap = store.gap_at(d1, 5_000).unwrap();
        assert_eq!(gap.prev_t, 1_200);
        assert_eq!(gap.next_t, 10_000);
        assert!(store.gap_at(d1, 1_100).is_none());
        assert_eq!(store.gaps_of(d1).len(), 1);
        // Window queries.
        assert_eq!(store.gaps_of_in(d1, Interval::new(0, 500)).len(), 0);
        assert_eq!(store.gaps_of_in(d1, Interval::new(2_000, 3_000)).len(), 1);
        assert_eq!(store.events_of_in(d1, Interval::new(1_000, 1_201)).len(), 2);
    }

    #[test]
    fn devices_online_at_uses_validity() {
        let store = store_with_events();
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let d3 = store.device_id("d3").unwrap();
        let online = store.devices_online_at(1_150, None);
        let ids: Vec<DeviceId> = online.iter().map(|(d, _)| *d).collect();
        assert!(ids.contains(&d1));
        assert!(ids.contains(&d2));
        assert!(!ids.contains(&d3));
        // Excluding the queried device.
        let online = store.devices_online_at(1_150, Some(d1));
        assert!(online.iter().all(|(d, _)| *d != d1));
        // d3 is online later.
        let online = store.devices_online_at(9_900, None);
        assert!(online.iter().any(|(d, _)| *d == d3));
    }

    #[test]
    fn set_delta_changes_gap_detection() {
        let mut store = store_with_events();
        let d1 = store.device_id("d1").unwrap();
        assert_eq!(store.delta(d1), 600);
        store.set_delta(d1, 5_000);
        assert!(store.gap_at(d1, 5_000).is_none());
        assert_eq!(store.max_delta(), 5_000);
        store.set_delta(d1, 0); // clamped to 1
        assert_eq!(store.delta(d1), 1);
    }

    #[test]
    fn estimate_deltas_uses_history() {
        let mut store = EventStore::new(space());
        for i in 0..30 {
            store.ingest_raw("regular", i * 300, "wap1").unwrap();
        }
        store.ingest_raw("sparse", 0, "wap1").unwrap();
        store.estimate_deltas();
        let regular = store.device_id("regular").unwrap();
        let sparse = store.device_id("sparse").unwrap();
        assert_eq!(store.delta(regular), 300);
        assert_eq!(store.delta(sparse), store.validity_config().default_delta);
    }

    #[test]
    fn time_span_covers_all_events() {
        let store = store_with_events();
        let span = store.time_span().unwrap();
        assert_eq!(span.start, 1_000);
        assert_eq!(span.end, 10_001);
        assert!(EventStore::new(space()).time_span().is_none());
    }

    #[test]
    fn csv_roundtrip_preserves_events() {
        let store = store_with_events();
        let csv = store.to_csv();
        let back = EventStore::from_csv(space(), &csv).unwrap();
        assert_eq!(back.num_events(), store.num_events());
        assert_eq!(back.num_devices(), store.num_devices());
        let d1 = back.device_id("d1").unwrap();
        assert_eq!(back.events_of(d1).len(), 3);
    }

    #[test]
    fn out_of_order_ingestion_is_supported() {
        let mut store = EventStore::new(space());
        store.ingest_raw("d1", 5_000, "wap1").unwrap();
        store.ingest_raw("d1", 1_000, "wap2").unwrap();
        store.ingest_raw("d1", 3_000, "wap3").unwrap();
        let d1 = store.device_id("d1").unwrap();
        let ts: Vec<Timestamp> = store.events_of(d1).events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1_000, 3_000, 5_000]);
    }
}
