//! Dataset statistics.
//!
//! The paper characterizes the DBH-WIFI dataset by its number of events, devices, APs,
//! rooms, time span and average daily event volume (§6.1). [`DatasetStatistics`]
//! computes the same summary for any [`EventStore`], and is used by the experiment
//! harness to document the synthetic datasets each experiment ran on.

use crate::store::EventStore;
use locater_events::clock;
use serde::{Deserialize, Serialize};

/// Summary statistics of a connectivity dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStatistics {
    /// Building name.
    pub building: String,
    /// Number of access points in the space.
    pub access_points: usize,
    /// Number of rooms in the space.
    pub rooms: usize,
    /// Number of distinct devices observed.
    pub devices: usize,
    /// Total number of connectivity events.
    pub events: usize,
    /// Number of calendar days spanned by the data (0 for an empty store).
    pub span_days: i64,
    /// Average number of events per day (0 for an empty store).
    pub events_per_day: f64,
    /// Average number of events per device (0 for an empty store).
    pub events_per_device: f64,
    /// Mean validity period δ across devices, in seconds.
    pub mean_delta_seconds: f64,
}

impl DatasetStatistics {
    /// Computes statistics for a store.
    pub fn compute(store: &EventStore) -> Self {
        let events = store.num_events();
        let devices = store.num_devices();
        let span_days = store
            .time_span()
            .map(|span| clock::day_index(span.end - 1) - clock::day_index(span.start) + 1)
            .unwrap_or(0);
        let mean_delta = if devices == 0 {
            0.0
        } else {
            store.devices().iter().map(|d| d.delta as f64).sum::<f64>() / devices as f64
        };
        Self {
            building: store.space().name().to_string(),
            access_points: store.space().num_access_points(),
            rooms: store.space().num_rooms(),
            devices,
            events,
            span_days,
            events_per_day: if span_days > 0 {
                events as f64 / span_days as f64
            } else {
                0.0
            },
            events_per_device: if devices > 0 {
                events as f64 / devices as f64
            } else {
                0.0
            },
            mean_delta_seconds: mean_delta,
        }
    }

    /// Renders the statistics as a short human-readable report.
    pub fn to_report(&self) -> String {
        format!(
            "dataset {}: {} events, {} devices, {} APs, {} rooms, {} days ({:.0} events/day, {:.1} events/device, mean δ {:.0}s)",
            self.building,
            self.events,
            self.devices,
            self.access_points,
            self.rooms,
            self.span_days,
            self.events_per_day,
            self.events_per_device,
            self.mean_delta_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::SpaceBuilder;

    fn store() -> EventStore {
        let space = SpaceBuilder::new("demo")
            .add_access_point("wap1", &["r1", "r2"])
            .add_access_point("wap2", &["r2", "r3"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        let day = locater_events::SECONDS_PER_DAY;
        store.ingest_raw("d1", 100, "wap1").unwrap();
        store.ingest_raw("d1", day + 100, "wap2").unwrap();
        store.ingest_raw("d2", 2 * day + 100, "wap1").unwrap();
        store
    }

    #[test]
    fn statistics_reflect_contents() {
        let stats = store().stats();
        assert_eq!(stats.building, "demo");
        assert_eq!(stats.access_points, 2);
        assert_eq!(stats.rooms, 3);
        assert_eq!(stats.devices, 2);
        assert_eq!(stats.events, 3);
        assert_eq!(stats.span_days, 3);
        assert!((stats.events_per_day - 1.0).abs() < 1e-9);
        assert!((stats.events_per_device - 1.5).abs() < 1e-9);
        assert!(stats.mean_delta_seconds > 0.0);
    }

    #[test]
    fn empty_store_has_zero_rates() {
        let space = SpaceBuilder::new("empty")
            .add_access_point("wap1", &["r1"])
            .build()
            .unwrap();
        let stats = EventStore::new(space).stats();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.span_days, 0);
        assert_eq!(stats.events_per_day, 0.0);
        assert_eq!(stats.events_per_device, 0.0);
        assert_eq!(stats.mean_delta_seconds, 0.0);
    }

    #[test]
    fn report_is_single_line_and_mentions_key_numbers() {
        let report = store().stats().to_report();
        assert!(report.contains("3 events"));
        assert!(report.contains("2 devices"));
        assert!(!report.contains('\n'));
    }
}
