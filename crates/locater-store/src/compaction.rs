//! Compaction and tiered ageing of the event store.
//!
//! LOCATER's cleaning engine only ever consults the configured history window
//! (coarse bootstrap and fine affinity, paper §4–5), so events older than the
//! retained horizon contribute nothing to in-window answers — yet an
//! always-on service accumulates them forever. [`crate::EventStore::compact`]
//! evicts every **whole segment bucket** below a horizon in one coherent
//! mutation across all three structures (per-device segmented timelines, the
//! global timeline index and the co-location posting lists — buckets
//! partition time at the shared segment span, so the three trims remove
//! exactly the same event set), and ages the evicted history into two colder
//! tiers:
//!
//! * **summary tier** — per-device, per-access-point dwell statistics at
//!   bucket granularity ([`DwellSummary`]), sufficient input for coarse-model
//!   training without the raw events;
//! * **spill tier** — the raw evicted events as an eviction-only
//!   [`crate::EventStore`] carrying the original event ids, persisted in the
//!   ordinary snapshot format ([`spill_path`] / [`load_spill`]) and reloadable
//!   on demand for offline reprocessing.
//!
//! Compaction never touches the event-id counter and never rewrites retained
//! segments, so answers whose full consulted window lies at or above the cut
//! are **byte-identical** with compaction on or off (the cornerstone
//! `compaction_equivalence` test and the store property tests assert this).

use crate::error::StoreError;
use crate::segment::Segment;
use crate::snapshot::write_atomic_io;
use crate::store::EventStore;
use locater_events::{Device, DeviceId, Timestamp};
use locater_space::Space;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Per-device, per-access-point dwell statistics over one evicted time
/// bucket — the coarse tier a compaction distills evicted segments into.
/// Devices and access points are identified by their stable names (MAC and AP
/// name), so summaries merge across shards and across compaction runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DwellSummary {
    /// MAC address / log identifier of the device.
    pub mac: String,
    /// Name of the access point.
    pub ap: String,
    /// Time bucket (`t.div_euclid(segment span)`) the statistics cover.
    pub bucket: i64,
    /// Number of evicted events of this device on this AP in the bucket.
    pub events: u64,
    /// Earliest event timestamp in the bucket.
    pub min_t: Timestamp,
    /// Latest event timestamp in the bucket.
    pub max_t: Timestamp,
    /// Total dwell seconds: per event, `min(δ, next event − event)` — the
    /// length of the event's validity stretch, the quantity the coarse model
    /// averages over history.
    pub dwell_seconds: i64,
}

/// The canonical merge key of a summary row.
fn summary_key(s: &DwellSummary) -> (String, String, i64) {
    (s.mac.clone(), s.ap.clone(), s.bucket)
}

/// Merges newly produced summary rows into an accumulated set, summing rows
/// that share `(mac, ap, bucket)` (late backfill can repopulate an already
/// summarized bucket, which a later compaction then evicts again). Keeps the
/// accumulated set sorted by key.
pub fn merge_dwell_summaries(into: &mut Vec<DwellSummary>, fresh: &[DwellSummary]) {
    for row in fresh {
        let key = summary_key(row);
        match into.binary_search_by_key(&key, summary_key) {
            Ok(idx) => {
                let slot = &mut into[idx];
                slot.events += row.events;
                slot.min_t = slot.min_t.min(row.min_t);
                slot.max_t = slot.max_t.max(row.max_t);
                slot.dwell_seconds += row.dwell_seconds;
            }
            Err(idx) => into.insert(idx, row.clone()),
        }
    }
}

/// What one [`crate::EventStore::compact`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionReport {
    /// The horizon the caller asked for.
    pub horizon: Timestamp,
    /// The bucket-aligned cut actually applied (`≤ horizon`): every event
    /// with `t < cut` was evicted, every event with `t >= cut` retained.
    pub cut: Timestamp,
    /// Events evicted from the hot tier.
    pub evicted_events: usize,
    /// Sealed segments evicted.
    pub evicted_segments: usize,
    /// Dwell summaries distilled from the evicted events (the summary tier).
    pub summaries: Vec<DwellSummary>,
    /// The evicted raw events as an eviction-only store in the snapshot
    /// format (the spill tier), when anything was evicted. Event ids are the
    /// originals, so a spill rejoins cleanly with offline tooling.
    pub spill: Option<EventStore>,
}

impl CompactionReport {
    /// A no-op report for a cut that evicted nothing.
    pub(crate) fn empty(horizon: Timestamp, cut: Timestamp) -> Self {
        Self {
            horizon,
            cut,
            evicted_events: 0,
            evicted_segments: 0,
            summaries: Vec::new(),
            spill: None,
        }
    }
}

/// Builds the summary rows for one device's evicted segments. `delta` is the
/// device's validity period; the dwell of each event is its validity stretch
/// `min(δ, gap to the next evicted event)` (the final evicted event of the
/// device contributes a full `δ` — its successor is beyond the cut).
pub(crate) fn summarize_device(
    space: &Space,
    device: &Device,
    segments: &[Segment],
    span: Timestamp,
    out: &mut Vec<DwellSummary>,
) {
    let mut rows: Vec<DwellSummary> = Vec::new();
    let delta = device.delta;
    let events: Vec<_> = segments.iter().flat_map(|s| s.events().iter()).collect();
    for (idx, event) in events.iter().enumerate() {
        let dwell = match events.get(idx + 1) {
            Some(next) => delta.min(next.t - event.t),
            None => delta,
        };
        let ap_name = &space.access_point(event.ap).name;
        let bucket = event.t.div_euclid(span);
        match rows
            .iter_mut()
            .find(|row| row.bucket == bucket && row.ap == *ap_name)
        {
            Some(row) => {
                row.events += 1;
                row.min_t = row.min_t.min(event.t);
                row.max_t = row.max_t.max(event.t);
                row.dwell_seconds += dwell;
            }
            None => rows.push(DwellSummary {
                mac: device.mac.as_str().to_string(),
                ap: ap_name.clone(),
                bucket,
                events: 1,
                min_t: event.t,
                max_t: event.t,
                dwell_seconds: dwell,
            }),
        }
    }
    out.extend(rows);
}

/// Assembles the spill-tier store from the evicted segments: the same space,
/// device table, validity configuration and segment span as the source store,
/// with only the evicted events (original ids). Round-trips through the
/// ordinary snapshot format.
pub(crate) fn build_spill(
    source: &EventStore,
    evicted: &[(DeviceId, Vec<Segment>)],
) -> Result<EventStore, StoreError> {
    let mut spill =
        EventStore::with_validity(source.space().as_ref().clone(), *source.validity_config())
            .with_segment_span(source.segment_span());
    for device in source.devices() {
        spill
            .intern_device(device.mac.as_str())
            .map_err(|err| StoreError::Corrupt(format!("spill device table: {err}")))?;
        spill.set_delta(device.id, device.delta);
    }
    for (device, segments) in evicted {
        let mac = source.device(*device).mac.as_str().to_string();
        for segment in segments {
            for event in segment.events() {
                spill.set_next_event_id(event.id.0);
                spill
                    .ingest(&mac, event.t, event.ap)
                    .map_err(|err| StoreError::Corrupt(format!("spill rebuild: {err}")))?;
            }
        }
    }
    spill.set_next_event_id(source.next_event_id());
    Ok(spill)
}

/// Merges per-shard spill partitions (as produced by compacting each shard of
/// a sharded service at the same horizon) into one combined spill store.
/// Events carry their original ids and the store's canonical `(t, id)`
/// ordering is a pure function of the event set, so the merge order is
/// irrelevant — this is the backfill-splice path, reused.
pub fn merge_spills(spills: impl IntoIterator<Item = EventStore>) -> Option<EventStore> {
    let mut spills = spills.into_iter();
    let mut base = spills.next()?;
    let top = base.next_event_id();
    for spill in spills {
        for device in spill.devices() {
            let mac = device.mac.as_str().to_string();
            for event in spill.timeline_of(device.id).iter() {
                base.set_next_event_id(event.id.0);
                base.ingest(&mac, event.t, event.ap)
                    .expect("spill partitions share the space and device table");
            }
        }
    }
    base.set_next_event_id(top);
    Some(base)
}

/// The spill-file path for a compaction cut inside a spill directory:
/// `spill-<cut>.snap`.
pub fn spill_path(dir: &Path, cut: Timestamp) -> PathBuf {
    dir.join(format!("spill-{cut}.snap"))
}

/// The summary-file path inside a spill directory (one JSON document holding
/// the accumulated [`DwellSummary`] rows): `summaries.json`.
pub fn summary_path(dir: &Path) -> PathBuf {
    dir.join("summaries.json")
}

/// Persists a compaction's cold tiers into `dir`: writes the spill store (if
/// any events were evicted) as `spill-<cut>.snap` and atomically rewrites the
/// accumulated `summaries.json` with `report`'s rows merged in. Returns the
/// spill path when one was written.
pub fn persist_tiers(dir: &Path, report: &CompactionReport) -> Result<Option<PathBuf>, StoreError> {
    persist_tiers_io(dir, report, &crate::io::RealIo)
}

/// [`persist_tiers`] with an explicit storage backend, so chaos tests can
/// inject `ENOSPC` and torn renames into the spill tier. Both files go
/// through the atomic write path, so a faulted persist never corrupts an
/// existing spill or summary file.
pub fn persist_tiers_io(
    dir: &Path,
    report: &CompactionReport,
    io: &dyn crate::io::StorageIo,
) -> Result<Option<PathBuf>, StoreError> {
    std::fs::create_dir_all(dir)?;
    let spilled = match &report.spill {
        Some(spill) => {
            let path = spill_path(dir, report.cut);
            let bytes = spill.to_snapshot_bytes()?;
            write_atomic_io(&path, &bytes, io)?;
            Some(path)
        }
        None => None,
    };
    if !report.summaries.is_empty() {
        let mut accumulated = load_summaries(dir)?;
        merge_dwell_summaries(&mut accumulated, &report.summaries);
        let json = serde_json::to_string(&accumulated)
            .map_err(|err| StoreError::Corrupt(format!("summaries encode: {err}")))?;
        write_atomic_io(&summary_path(dir), json.as_bytes(), io)?;
    }
    Ok(spilled)
}

/// Loads the accumulated dwell summaries from a spill directory (empty if the
/// file does not exist yet).
pub fn load_summaries(dir: &Path) -> Result<Vec<DwellSummary>, StoreError> {
    let path = summary_path(dir);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let json = std::fs::read_to_string(&path)?;
    serde_json::from_str(&json).map_err(|err| StoreError::Corrupt(format!("summaries: {err}")))
}

/// Reloads one spill file on demand — an ordinary snapshot load.
pub fn load_spill(path: &Path) -> Result<EventStore, StoreError> {
    EventStore::load_snapshot(path)
}

/// Lists the spill files in a directory, sorted by their cut timestamp.
pub fn list_spills(dir: &Path) -> Result<Vec<(Timestamp, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(cut) = name
            .strip_prefix("spill-")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|cut| cut.parse::<Timestamp>().ok())
        {
            out.push((cut, path));
        }
    }
    out.sort();
    Ok(out)
}

/// Hot-tier shape gauges of a store, split by segment role, plus the
/// capacity-based residency estimate the soak guard and the `stats` surfaces
/// report. All derived, never stored — always consistent with the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Mutable head segments (one per device with any retained history).
    pub head_segments: usize,
    /// Sealed (immutable) segments.
    pub sealed_segments: usize,
    /// Approximate resident heap bytes of the store (allocated capacity of
    /// the timelines, the global index and the posting lists).
    pub resident_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mac: &str, ap: &str, bucket: i64, events: u64, dwell: i64) -> DwellSummary {
        DwellSummary {
            mac: mac.to_string(),
            ap: ap.to_string(),
            bucket,
            events,
            min_t: bucket * 100,
            max_t: bucket * 100 + 50,
            dwell_seconds: dwell,
        }
    }

    #[test]
    fn merge_sums_matching_rows_and_keeps_sorted_order() {
        let mut acc = Vec::new();
        merge_dwell_summaries(
            &mut acc,
            &[row("b", "ap1", 2, 3, 30), row("a", "ap2", 1, 1, 10)],
        );
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].mac, "a");
        merge_dwell_summaries(&mut acc, &[row("b", "ap1", 2, 2, 20)]);
        assert_eq!(acc.len(), 2);
        let merged = &acc[1];
        assert_eq!((merged.events, merged.dwell_seconds), (5, 50));
    }

    #[test]
    fn spill_paths_are_parseable() {
        let dir = Path::new("/tmp/spill-dir");
        assert_eq!(
            spill_path(dir, 604_800),
            Path::new("/tmp/spill-dir/spill-604800.snap")
        );
        assert_eq!(
            summary_path(dir),
            Path::new("/tmp/spill-dir/summaries.json")
        );
    }
}
