//! Pluggable storage I/O with deterministic fault injection.
//!
//! Every durability-critical operation of the store — WAL appends and
//! fsyncs ([`crate::wal`]), atomic snapshot/checkpoint writes
//! ([`crate::snapshot`], [`crate::recovery`]), spill-tier persistence
//! ([`crate::compaction`]) and the reads recovery performs — is routed
//! through the [`StorageIo`] trait instead of calling `std::fs` directly.
//! Production uses the zero-cost passthrough [`RealIo`]; chaos tests plug in
//! a seeded [`FaultIo`] that injects short writes, `EIO` on fsync, `ENOSPC`,
//! failed renames and interrupted reads at scheduled operation counts.
//!
//! The schedule is a pure function of the [`FaultPlan`] (seed + counts +
//! horizon): the same plan produces bit-for-bit the same fault sequence, so
//! a failing chaos run is replayable from its seed alone.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The storage operations the durability layer performs. Implementations
/// must be shareable across threads (the sharded service holds one instance
/// behind an `Arc` inside its [`crate::wal::Durability`] config).
pub trait StorageIo: Send + Sync + fmt::Debug {
    /// Writes the whole buffer to the file (the WAL frame / snapshot body
    /// write). A failure may leave a prefix of the buffer on disk.
    fn write_all(&self, file: &mut File, buf: &[u8]) -> io::Result<()>;

    /// Forces file data to disk (`fdatasync`) — the WAL durability point.
    fn sync_data(&self, file: &File) -> io::Result<()>;

    /// Forces file data and metadata to disk (`fsync`) — the snapshot
    /// durability point.
    fn sync_all(&self, file: &File) -> io::Result<()>;

    /// Reads a whole file (segment scans, checkpoint loads).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Renames a file (the commit point of every atomic write).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Deletes a file (checkpoint trim of stale WAL segments). A failure
    /// leaves the file in place.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Truncates/extends a file (torn-tail repair).
    fn set_len(&self, file: &File, len: u64) -> io::Result<()>;
}

/// The production implementation: a zero-state passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealIo;

impl StorageIo for RealIo {
    fn write_all(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        file.write_all(buf)
    }

    fn sync_data(&self, file: &File) -> io::Result<()> {
        file.sync_data()
    }

    fn sync_all(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        file.set_len(len)
    }
}

/// One kind of injected storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A write persists only a prefix of the buffer, then fails (`EIO`).
    ShortWrite,
    /// A write fails without persisting anything (`ENOSPC`).
    DiskFull,
    /// An fsync (`sync_data`/`sync_all`) fails (`EIO`) — the pages it was
    /// asked to flush must be considered lost.
    SyncFailure,
    /// A whole-file read fails (`EINTR`).
    ReadInterrupted,
    /// A rename fails, leaving the destination untouched.
    RenameFailure,
    /// A file deletion fails, leaving the file in place.
    RemoveFailure,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::ShortWrite => f.write_str("short-write"),
            FaultKind::DiskFull => f.write_str("disk-full"),
            FaultKind::SyncFailure => f.write_str("sync-failure"),
            FaultKind::ReadInterrupted => f.write_str("read-interrupted"),
            FaultKind::RenameFailure => f.write_str("rename-failure"),
            FaultKind::RemoveFailure => f.write_str("remove-failure"),
        }
    }
}

/// A deterministic fault schedule: how many faults of each category to
/// inject, drawn (by seed) from the first `horizon` operations of that
/// category. The derived schedule is a pure function of this plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the schedule PRNG; the same seed reproduces the same faults.
    pub seed: u64,
    /// Write faults to schedule (each is a short write or an `ENOSPC`).
    pub writes: usize,
    /// Fsync faults to schedule (`sync_data` and `sync_all` share a counter).
    pub syncs: usize,
    /// Read faults to schedule.
    pub reads: usize,
    /// Rename faults to schedule.
    pub renames: usize,
    /// File-deletion faults to schedule.
    pub removes: usize,
    /// Operation-count window the fault indices are drawn from, per
    /// category. Clamped up to the category's fault count.
    pub horizon: u64,
}

impl FaultPlan {
    /// A plan with no faults at all (useful as a baseline).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            writes: 0,
            syncs: 0,
            reads: 0,
            renames: 0,
            removes: 0,
            horizon: 0,
        }
    }
}

/// A minimal deterministic PRNG (the same LCG the load harness uses), good
/// enough to scatter fault indices; never used for anything statistical.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        // Avoid the all-zeros fixed point without changing any nonzero seed.
        Lcg(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

#[derive(Debug, Default)]
struct Schedule {
    writes: BTreeMap<u64, FaultKind>,
    syncs: BTreeSet<u64>,
    reads: BTreeSet<u64>,
    renames: BTreeSet<u64>,
    removes: BTreeSet<u64>,
}

fn draw_indices(rng: &mut Lcg, count: usize, horizon: u64) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    if count == 0 {
        return out;
    }
    let horizon = horizon.max(count as u64);
    while out.len() < count {
        out.insert(rng.next() % horizon);
    }
    out
}

/// A seeded fault-injecting [`StorageIo`]: delegates to [`RealIo`] except at
/// the operation counts its [`FaultPlan`] scheduled, where it fails with the
/// scheduled [`FaultKind`]. Thread-safe; counters are global across all
/// files/shards sharing the instance, which is what makes a schedule span a
/// whole service run.
#[derive(Debug)]
pub struct FaultIo {
    plan: FaultPlan,
    schedule: Schedule,
    writes: AtomicU64,
    syncs: AtomicU64,
    reads: AtomicU64,
    renames: AtomicU64,
    removes: AtomicU64,
    fired: Mutex<Vec<(FaultKind, u64)>>,
}

impl FaultIo {
    /// Derives the (deterministic) schedule from `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let mut rng = Lcg::new(plan.seed);
        let mut schedule = Schedule::default();
        for index in draw_indices(&mut rng, plan.writes, plan.horizon) {
            let kind = if rng.next().is_multiple_of(2) {
                FaultKind::ShortWrite
            } else {
                FaultKind::DiskFull
            };
            schedule.writes.insert(index, kind);
        }
        schedule.syncs = draw_indices(&mut rng, plan.syncs, plan.horizon);
        schedule.reads = draw_indices(&mut rng, plan.reads, plan.horizon);
        schedule.renames = draw_indices(&mut rng, plan.renames, plan.horizon);
        // Drawn last so plans without remove faults keep the schedule their
        // seed produced before this category existed.
        schedule.removes = draw_indices(&mut rng, plan.removes, plan.horizon);
        FaultIo {
            plan,
            schedule,
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// The plan this instance was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The full derived schedule as `(kind, scheduled op count)` pairs,
    /// sorted — the bit-for-bit reproducibility surface: two instances built
    /// from the same plan report identical schedules.
    pub fn schedule(&self) -> Vec<(FaultKind, u64)> {
        let mut out: Vec<(FaultKind, u64)> = Vec::new();
        out.extend(self.schedule.writes.iter().map(|(&op, &kind)| (kind, op)));
        out.extend(
            self.schedule
                .syncs
                .iter()
                .map(|&op| (FaultKind::SyncFailure, op)),
        );
        out.extend(
            self.schedule
                .reads
                .iter()
                .map(|&op| (FaultKind::ReadInterrupted, op)),
        );
        out.extend(
            self.schedule
                .renames
                .iter()
                .map(|&op| (FaultKind::RenameFailure, op)),
        );
        out.extend(
            self.schedule
                .removes
                .iter()
                .map(|&op| (FaultKind::RemoveFailure, op)),
        );
        out.sort_unstable();
        out
    }

    /// The faults that actually fired so far, in firing order, as
    /// `(kind, op count within its category)`.
    pub fn fired(&self) -> Vec<(FaultKind, u64)> {
        self.fired.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn record(&self, kind: FaultKind, op: u64) {
        self.fired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((kind, op));
    }

    fn injected(kind: FaultKind, op: u64) -> io::Error {
        let what = match kind {
            FaultKind::ShortWrite => "EIO after short write",
            FaultKind::DiskFull => "no space left on device (ENOSPC)",
            FaultKind::SyncFailure => "EIO on fsync",
            FaultKind::ReadInterrupted => "interrupted read (EINTR)",
            FaultKind::RenameFailure => "rename failed",
            FaultKind::RemoveFailure => "remove failed",
        };
        let message = format!("injected fault at op {op}: {what}");
        match kind {
            FaultKind::ReadInterrupted => io::Error::new(io::ErrorKind::Interrupted, message),
            _ => io::Error::other(message),
        }
    }
}

impl StorageIo for FaultIo {
    fn write_all(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        let op = self.writes.fetch_add(1, Ordering::SeqCst);
        match self.schedule.writes.get(&op) {
            Some(&FaultKind::ShortWrite) => {
                // Persist a prefix, then fail: the torn bytes stay on disk.
                RealIo.write_all(file, &buf[..buf.len() / 2])?;
                self.record(FaultKind::ShortWrite, op);
                Err(Self::injected(FaultKind::ShortWrite, op))
            }
            Some(&kind) => {
                self.record(kind, op);
                Err(Self::injected(kind, op))
            }
            None => RealIo.write_all(file, buf),
        }
    }

    fn sync_data(&self, file: &File) -> io::Result<()> {
        let op = self.syncs.fetch_add(1, Ordering::SeqCst);
        if self.schedule.syncs.contains(&op) {
            self.record(FaultKind::SyncFailure, op);
            return Err(Self::injected(FaultKind::SyncFailure, op));
        }
        RealIo.sync_data(file)
    }

    fn sync_all(&self, file: &File) -> io::Result<()> {
        let op = self.syncs.fetch_add(1, Ordering::SeqCst);
        if self.schedule.syncs.contains(&op) {
            self.record(FaultKind::SyncFailure, op);
            return Err(Self::injected(FaultKind::SyncFailure, op));
        }
        RealIo.sync_all(file)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let op = self.reads.fetch_add(1, Ordering::SeqCst);
        if self.schedule.reads.contains(&op) {
            self.record(FaultKind::ReadInterrupted, op);
            return Err(Self::injected(FaultKind::ReadInterrupted, op));
        }
        RealIo.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let op = self.renames.fetch_add(1, Ordering::SeqCst);
        if self.schedule.renames.contains(&op) {
            self.record(FaultKind::RenameFailure, op);
            return Err(Self::injected(FaultKind::RenameFailure, op));
        }
        RealIo.rename(from, to)
    }

    fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        // Torn-tail repair is never faulted: it runs on the recovery path,
        // where a failure is already surfaced as an open error.
        RealIo.set_len(file, len)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let op = self.removes.fetch_add(1, Ordering::SeqCst);
        if self.schedule.removes.contains(&op) {
            self.record(FaultKind::RemoveFailure, op);
            return Err(Self::injected(FaultKind::RemoveFailure, op));
        }
        RealIo.remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "locater-io-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn real_io_round_trips() {
        let path = temp_file("real");
        let mut file = File::create(&path).unwrap();
        RealIo.write_all(&mut file, b"hello").unwrap();
        RealIo.sync_data(&file).unwrap();
        RealIo.sync_all(&file).unwrap();
        assert_eq!(RealIo.read(&path).unwrap(), b"hello");
        let moved = temp_file("real-moved");
        RealIo.rename(&path, &moved).unwrap();
        assert_eq!(RealIo.read(&moved).unwrap(), b"hello");
        let file = File::options().write(true).open(&moved).unwrap();
        RealIo.set_len(&file, 2).unwrap();
        assert_eq!(RealIo.read(&moved).unwrap(), b"he");
        RealIo.remove_file(&moved).unwrap();
        assert!(!moved.exists());
    }

    #[test]
    fn same_plan_yields_identical_schedules() {
        let plan = FaultPlan {
            seed: 42,
            writes: 3,
            syncs: 2,
            reads: 2,
            renames: 1,
            removes: 1,
            horizon: 50,
        };
        let a = FaultIo::new(plan);
        let b = FaultIo::new(plan);
        assert_eq!(a.schedule(), b.schedule());
        assert_eq!(a.schedule().len(), 9);
        // Remove faults are drawn after every older category, so a plan
        // without them reproduces the schedule its seed always produced.
        let legacy = FaultIo::new(FaultPlan { removes: 0, ..plan });
        let mut without_removes = a.schedule();
        without_removes.retain(|&(kind, _)| kind != FaultKind::RemoveFailure);
        assert_eq!(legacy.schedule(), without_removes);
        // A different seed reshuffles the schedule.
        let c = FaultIo::new(FaultPlan { seed: 43, ..plan });
        assert_ne!(a.schedule(), c.schedule());
    }

    #[test]
    fn scheduled_write_faults_fire_at_their_op_counts() {
        let plan = FaultPlan {
            seed: 7,
            writes: 2,
            syncs: 0,
            reads: 0,
            renames: 0,
            removes: 0,
            horizon: 5,
        };
        let io = FaultIo::new(plan);
        let mut scheduled: Vec<u64> = io.schedule().iter().map(|&(_, op)| op).collect();
        scheduled.sort_unstable();
        let path = temp_file("write-faults");
        let mut file = File::create(&path).unwrap();
        let mut failures = Vec::new();
        for op in 0..10u64 {
            if io.write_all(&mut file, b"xxxx").is_err() {
                failures.push(op);
            }
        }
        assert_eq!(failures, scheduled);
        assert_eq!(io.fired().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_leaves_a_prefix_disk_full_leaves_nothing() {
        // Find seeds exhibiting both kinds to pin the on-disk contract.
        for (kind, expected_len) in [(FaultKind::ShortWrite, 4u64), (FaultKind::DiskFull, 0u64)] {
            let plan = (0..200)
                .map(|seed| FaultPlan {
                    seed,
                    writes: 1,
                    syncs: 0,
                    reads: 0,
                    renames: 0,
                    removes: 0,
                    horizon: 1,
                })
                .find(|&p| FaultIo::new(p).schedule() == vec![(kind, 0)])
                .expect("some seed schedules this kind at op 0");
            let io = FaultIo::new(plan);
            let path = temp_file(&format!("kind-{kind}"));
            let mut file = File::create(&path).unwrap();
            assert!(io.write_all(&mut file, b"12345678").is_err());
            drop(file);
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                expected_len,
                "{kind}"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn sync_read_and_rename_faults_fire_and_are_recorded() {
        let plan = FaultPlan {
            seed: 9,
            writes: 0,
            syncs: 1,
            reads: 1,
            renames: 1,
            removes: 1,
            horizon: 1,
        };
        let io = FaultIo::new(plan);
        let path = temp_file("srr");
        std::fs::write(&path, b"data").unwrap();
        let file = File::open(&path).unwrap();
        assert!(io.sync_data(&file).is_err());
        assert!(io.sync_data(&file).is_ok(), "only op 0 is scheduled");
        assert!(io.read(&path).is_err());
        assert_eq!(io.read(&path).unwrap(), b"data");
        let other = temp_file("srr-2");
        assert!(io.rename(&path, &other).is_err());
        assert!(path.exists(), "failed rename leaves the source in place");
        io.rename(&path, &other).unwrap();
        assert!(io.remove_file(&other).is_err());
        assert!(other.exists(), "failed remove leaves the file in place");
        io.remove_file(&other).unwrap();
        assert!(!other.exists());
        assert_eq!(
            io.fired().iter().map(|&(kind, _)| kind).collect::<Vec<_>>(),
            vec![
                FaultKind::SyncFailure,
                FaultKind::ReadInterrupted,
                FaultKind::RenameFailure,
                FaultKind::RemoveFailure
            ]
        );
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let io = FaultIo::new(FaultPlan::quiet(1));
        assert!(io.schedule().is_empty());
        let path = temp_file("quiet");
        let mut file = File::create(&path).unwrap();
        for _ in 0..50 {
            io.write_all(&mut file, b"ok").unwrap();
            io.sync_data(&file).unwrap();
        }
        assert!(io.fired().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
