//! Per-shard append-only write-ahead log: checksummed frames, segment
//! rotation, configurable fsync policy.
//!
//! The WAL is the durability half of the store (the other half is the binary
//! snapshot of [`crate::snapshot`]): every ingested event is framed and
//! appended to the owning shard's active segment *in the same mutation* as the
//! in-memory append, so a crash loses at most the frames the fsync policy had
//! not yet forced to disk. Recovery (see [`crate::recovery`]) loads the last
//! checkpoint snapshot and replays the per-shard tails.
//!
//! ## On-disk layout
//!
//! ```text
//! <wal-dir>/
//!   checkpoint.snap            full store snapshot (crate::snapshot format)
//!   shard-0000/
//!     seg-0000000000000000.wal
//!     seg-0000000000000001.wal   ← active (append) segment
//!   shard-0001/
//!     ...
//! ```
//!
//! Each segment file starts with a 24-byte header:
//!
//! ```text
//! magic     8 B   "LOCATRWL"
//! version   u32   1
//! shard     u32   owning shard index
//! segment   u64   segment index (monotonic per shard, never reused)
//! ```
//!
//! followed by frames, each carrying one [`WalRecord`] (the snapshot event
//! encoding plus the device identifier, so a record replays without any other
//! context):
//!
//! ```text
//! length    u32   payload byte count
//! checksum  u64   FNV-1a 64 over the payload bytes (same hash as snapshots)
//! payload:  id (u64), t (i64), ap (u32), mac (u16 len + UTF-8 bytes),
//!           then optionally the client request id (u64) when the ingest
//!           carried an idempotency token — presence is encoded by payload
//!           length, so untagged frames are byte-identical to older logs
//! ```
//!
//! All integers are little-endian. A frame is valid only if it is complete
//! *and* its checksum matches; scanning stops at the first invalid frame. On
//! the **last** segment of a shard that is expected (a torn tail from a crash
//! mid-write) and the tail is truncated away; anywhere else it is a typed
//! [`WalError`] — never a panic, the same standard as [`crate::snapshot`].
//!
//! ## Durability levers
//!
//! * [`FsyncPolicy`] decides when appends reach the platters: `always` (one
//!   `fdatasync` per append), `every=N` (amortized), `interval=MS`
//!   (time-bounded loss window).
//! * [`ShardWal::seal`] is the *delta snapshot* primitive: it fsyncs and
//!   closes the active segment, so exactly the events since the last
//!   checkpoint are durable regardless of policy — without rewriting the
//!   (much larger) checkpoint snapshot.
//! * A checkpoint (snapshot write + [`ShardWal::reset`]) trims the replayed
//!   prefix: segment indices keep growing so a pre-checkpoint segment can
//!   never be mistaken for a post-checkpoint one.

use crate::error::{IngestError, StoreError};
use crate::io::{RealIo, StorageIo};
use crate::snapshot::fnv1a;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic bytes every WAL segment starts with.
pub const WAL_MAGIC: &[u8; 8] = b"LOCATRWL";
/// Newest WAL segment format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;
/// Segment header length: magic + version + shard + segment index.
pub const WAL_HEADER_LEN: usize = 8 + 4 + 4 + 8;
/// Frame header length: payload length + checksum.
pub const WAL_FRAME_HEADER_LEN: usize = 4 + 8;

/// File name of the checkpoint snapshot inside a WAL directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.snap";

/// The checkpoint snapshot path inside `dir`.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join(CHECKPOINT_FILE)
}

/// The directory holding one shard's segments inside `dir`.
pub fn shard_dir(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard:04}"))
}

fn segment_path(shard_dir: &Path, index: u64) -> PathBuf {
    shard_dir.join(format!("seg-{index:016x}.wal"))
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// When appended frames are forced to disk (`fdatasync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: an acknowledged ingest is always durable.
    Always,
    /// Sync once every N appends: bounded-count loss window, amortized cost.
    EveryN(u64),
    /// Sync when at least this much time passed since the last sync:
    /// bounded-time loss window.
    Interval(Duration),
}

impl FsyncPolicy {
    /// Parses the CLI syntax: `always`, `every=N`, or `interval=MS`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "always" {
            return Ok(FsyncPolicy::Always);
        }
        if let Some(n) = s.strip_prefix("every=") {
            return n
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .map(FsyncPolicy::EveryN)
                .ok_or_else(|| {
                    format!("invalid fsync policy {s:?}: N must be a positive integer")
                });
        }
        if let Some(ms) = s.strip_prefix("interval=") {
            return ms
                .parse::<u64>()
                .ok()
                .filter(|&ms| ms >= 1)
                .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                .ok_or_else(|| {
                    format!("invalid fsync policy {s:?}: MS must be a positive integer")
                });
        }
        Err(format!(
            "invalid fsync policy {s:?} (always | every=N | interval=MS)"
        ))
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Interval(d) => write!(f, "interval={}", d.as_millis()),
        }
    }
}

/// Durability configuration: where the WAL lives and how eagerly it syncs.
#[derive(Debug, Clone)]
pub struct Durability {
    /// The WAL directory (created if missing); holds the checkpoint snapshot
    /// and one sub-directory of segments per shard.
    pub dir: PathBuf,
    /// When appended frames are forced to disk.
    pub fsync: FsyncPolicy,
    /// Rotate the active segment once it exceeds this size (bytes). Sealed
    /// segments are immutable, so rotation bounds the cost of a torn-tail
    /// scan and makes deltas (segments sealed since the last checkpoint)
    /// explicit files.
    pub segment_max_bytes: u64,
    /// The storage backend every durability-critical operation routes
    /// through: [`RealIo`] in production, a [`crate::io::FaultIo`] in chaos
    /// tests. Shared across shards so one fault schedule spans the service.
    pub io: Arc<dyn StorageIo>,
}

// The io handle is a behavior plug, not configuration state: two configs are
// the same durability setup regardless of which backend executes the ops.
impl PartialEq for Durability {
    fn eq(&self, other: &Self) -> bool {
        self.dir == other.dir
            && self.fsync == other.fsync
            && self.segment_max_bytes == other.segment_max_bytes
    }
}

impl Eq for Durability {}

impl Durability {
    /// Durability at `dir` with the safe defaults: `fsync=always`, 8 MiB
    /// segments, real storage I/O.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Durability {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_max_bytes: 8 * 1024 * 1024,
            io: Arc::new(RealIo),
        }
    }

    /// Replaces the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Replaces the segment rotation threshold (clamped to at least the
    /// header size plus one minimal frame).
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes.max((WAL_HEADER_LEN + WAL_FRAME_HEADER_LEN) as u64);
        self
    }

    /// Replaces the storage backend (fault injection hooks in here).
    pub fn with_io(mut self, io: Arc<dyn StorageIo>) -> Self {
        self.io = io;
        self
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors produced by the WAL and recovery layer. Corruption and torn writes
/// are typed, positioned errors — never panics.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the WAL segment magic.
    NotAWalSegment(PathBuf),
    /// The segment was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the segment header.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// A record cannot be represented in the frame format (e.g. an oversized
    /// device identifier). Reported at *append* time.
    Unencodable(String),
    /// A segment that recovery is not allowed to truncate (any segment but
    /// the last of its shard) contains an invalid frame, or a header
    /// disagrees with its file name. `locater-cli wal truncate` repairs this
    /// by discarding everything from the damage onward.
    Corrupt {
        /// The damaged segment file.
        segment: PathBuf,
        /// Byte offset of the first invalid frame (or header field).
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The per-shard logs are individually valid but mutually inconsistent
    /// (e.g. two shards claim the same event id).
    InvalidLog(String),
    /// The writer is permanently poisoned by an earlier write/fsync failure:
    /// the on-disk tail is in an unknown state (a short write may have left
    /// torn bytes; a failed fsync may have dropped pages), so appending or
    /// re-syncing could silently bury acknowledged frames. Every subsequent
    /// `append`/`sync`/`seal`/`reset` returns this; the only way out is to
    /// reopen the log, which re-scans and truncates to the valid prefix.
    Poisoned {
        /// The poisoned shard.
        shard: u32,
        /// The original failure, rendered.
        reason: String,
    },
    /// Loading or writing the checkpoint snapshot failed.
    Snapshot(StoreError),
    /// Replaying a durable record into the store failed (the log references
    /// an access point or device the checkpointed space does not know).
    Replay(IngestError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(err) => write!(f, "WAL I/O error: {err}"),
            WalError::NotAWalSegment(path) => {
                write!(f, "{} is not a LOCATER WAL segment (bad magic)", path.display())
            }
            WalError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported WAL segment version {found} (this build reads up to {supported})"
            ),
            WalError::Unencodable(reason) => write!(f, "cannot encode WAL record: {reason}"),
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corrupt WAL segment {} at byte {offset}: {reason} (run `locater-cli wal truncate` to repair)",
                segment.display()
            ),
            WalError::InvalidLog(reason) => write!(f, "invalid WAL: {reason}"),
            WalError::Poisoned { shard, reason } => write!(
                f,
                "WAL writer for shard {shard} is poisoned by an earlier failure ({reason}); \
                 reopen the log to recover the durable prefix"
            ),
            WalError::Snapshot(err) => write!(f, "WAL checkpoint snapshot: {err}"),
            WalError::Replay(err) => write!(f, "WAL replay: {err}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(err) => Some(err),
            WalError::Snapshot(err) => Some(err),
            WalError::Replay(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(err: std::io::Error) -> Self {
        WalError::Io(err)
    }
}

impl From<StoreError> for WalError {
    fn from(err: StoreError) -> Self {
        WalError::Snapshot(err)
    }
}

impl From<IngestError> for WalError {
    fn from(err: IngestError) -> Self {
        WalError::Replay(err)
    }
}

// ---------------------------------------------------------------------------
// Records and frames
// ---------------------------------------------------------------------------

/// One durable ingest: everything needed to replay the event into a
/// checkpointed store, with the globally sequential event id pinned so the
/// recovered store is bit-identical to the uncrashed one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The global event id the append drew.
    pub id: u64,
    /// Event timestamp (seconds since the deployment epoch).
    pub t: i64,
    /// Resolved access point id ([`locater_space::AccessPointId::raw`]).
    pub ap: u32,
    /// Device MAC address / log identifier.
    pub mac: String,
    /// The client idempotency token the ingest carried, if any. Persisting it
    /// lets recovery rebuild the server's replay-dedup cache, so a retry of a
    /// durable-but-unacked ingest is answered, not re-applied, even across a
    /// crash.
    pub request_id: Option<u64>,
}

/// Encodes a record payload: the snapshot event encoding (`id u64, t i64,
/// ap u32`) plus the device identifier (`u16` length + UTF-8 bytes) and,
/// when present, the client request id (`u64`) — its presence is carried by
/// the payload length, so untagged records keep the original frame bytes.
pub fn encode_record(record: &WalRecord) -> Result<Vec<u8>, WalError> {
    let mac = record.mac.as_bytes();
    let mac_len = u16::try_from(mac.len()).map_err(|_| {
        WalError::Unencodable(format!(
            "device identifier is {} bytes (format limit {})",
            mac.len(),
            u16::MAX
        ))
    })?;
    let mut out = Vec::with_capacity(8 + 8 + 4 + 2 + mac.len() + 8);
    out.extend_from_slice(&record.id.to_le_bytes());
    out.extend_from_slice(&record.t.to_le_bytes());
    out.extend_from_slice(&record.ap.to_le_bytes());
    out.extend_from_slice(&mac_len.to_le_bytes());
    out.extend_from_slice(mac);
    if let Some(request_id) = record.request_id {
        out.extend_from_slice(&request_id.to_le_bytes());
    }
    Ok(out)
}

/// Decodes a frame payload back into a [`WalRecord`]. Errors are descriptive
/// strings; the caller positions them (segment + offset).
fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    if payload.len() < 8 + 8 + 4 + 2 {
        return Err(format!(
            "record payload too short ({} bytes)",
            payload.len()
        ));
    }
    let id = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let t = i64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let ap = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes"));
    let mac_len = u16::from_le_bytes(payload[20..22].try_into().expect("2 bytes")) as usize;
    let rest = &payload[22..];
    // After the identifier, a record optionally carries the client request id
    // (exactly 8 more bytes); any other trailing length is corruption.
    let request_id = match rest.len().checked_sub(mac_len) {
        Some(0) => None,
        Some(8) => Some(u64::from_le_bytes(
            rest[mac_len..].try_into().expect("8 bytes"),
        )),
        _ => {
            return Err(format!(
                "record declares a {mac_len}-byte identifier but carries {} bytes",
                rest.len()
            ))
        }
    };
    let mac = std::str::from_utf8(&rest[..mac_len])
        .map_err(|_| "non-UTF-8 device identifier".to_string())?
        .to_string();
    Ok(WalRecord {
        id,
        t,
        ap,
        mac,
        request_id,
    })
}

fn encode_frame(record: &WalRecord) -> Result<Vec<u8>, WalError> {
    let payload = encode_record(record)?;
    let mut frame = Vec::with_capacity(WAL_FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

fn encode_segment_header(shard: u32, index: u64) -> [u8; WAL_HEADER_LEN] {
    let mut header = [0u8; WAL_HEADER_LEN];
    header[0..8].copy_from_slice(WAL_MAGIC);
    header[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&shard.to_le_bytes());
    header[16..24].copy_from_slice(&index.to_le_bytes());
    header
}

// ---------------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------------

/// Where and why a lenient scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first invalid frame: the valid prefix ends here.
    pub offset: u64,
    /// What was wrong with the frame (incomplete, checksum mismatch, …).
    pub reason: String,
}

/// The result of scanning one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// The scanned file.
    pub path: PathBuf,
    /// `(shard, segment index)` from the header — `None` when the header
    /// itself was torn (lenient scans only).
    pub header: Option<(u32, u64)>,
    /// The valid records, in append order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix (header + valid frames).
    pub valid_bytes: u64,
    /// Actual file length.
    pub file_len: u64,
    /// Set when the scan stopped before `file_len`.
    pub torn: Option<TornTail>,
}

impl SegmentScan {
    /// `true` when every byte of the file was a valid header or frame.
    pub fn is_clean(&self) -> bool {
        self.torn.is_none()
    }
}

/// Scans one segment file. `lenient` mode treats any invalid frame (and a
/// torn header) as the end of the valid prefix and reports it in
/// [`SegmentScan::torn`]; strict mode turns the same condition into a typed
/// [`WalError::Corrupt`]. A wrong magic or an unsupported version is an error
/// in both modes — foreign files are never silently truncated.
pub fn scan_segment(path: &Path, lenient: bool) -> Result<SegmentScan, WalError> {
    scan_segment_io(path, lenient, &RealIo)
}

/// [`scan_segment`] with an explicit storage backend, so chaos tests can
/// inject interrupted reads into the recovery path.
pub fn scan_segment_io(
    path: &Path,
    lenient: bool,
    io: &dyn StorageIo,
) -> Result<SegmentScan, WalError> {
    let bytes = io.read(path)?;
    let file_len = bytes.len() as u64;
    let torn_or_err = |offset: u64, reason: String| -> Result<Option<TornTail>, WalError> {
        if lenient {
            Ok(Some(TornTail { offset, reason }))
        } else {
            Err(WalError::Corrupt {
                segment: path.to_path_buf(),
                offset,
                reason,
            })
        }
    };

    if bytes.len() < WAL_HEADER_LEN {
        // A crash can tear the header of a freshly created segment; a full
        // header with the wrong magic is a different file kind, not a tear.
        if bytes.len() >= WAL_MAGIC.len() && &bytes[0..8] != WAL_MAGIC {
            return Err(WalError::NotAWalSegment(path.to_path_buf()));
        }
        let torn = torn_or_err(
            0,
            format!("incomplete segment header ({} bytes)", bytes.len()),
        )?;
        return Ok(SegmentScan {
            path: path.to_path_buf(),
            header: None,
            records: Vec::new(),
            valid_bytes: 0,
            file_len,
            torn,
        });
    }
    if &bytes[0..8] != WAL_MAGIC {
        return Err(WalError::NotAWalSegment(path.to_path_buf()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(WalError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let shard = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let index = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut torn = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < WAL_FRAME_HEADER_LEN {
            torn = torn_or_err(
                pos as u64,
                format!("incomplete frame header ({remaining} bytes)"),
            )?;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let expected = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        if remaining - WAL_FRAME_HEADER_LEN < len {
            torn = torn_or_err(
                pos as u64,
                format!(
                    "frame declares {len} payload bytes but only {} remain",
                    remaining - WAL_FRAME_HEADER_LEN
                ),
            )?;
            break;
        }
        let payload = &bytes[pos + WAL_FRAME_HEADER_LEN..pos + WAL_FRAME_HEADER_LEN + len];
        let actual = fnv1a(payload);
        if actual != expected {
            torn = torn_or_err(
                pos as u64,
                format!(
                    "frame checksum mismatch (header says {expected:#018x}, payload hashes to {actual:#018x})"
                ),
            )?;
            break;
        }
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(reason) => {
                torn = torn_or_err(pos as u64, reason)?;
                break;
            }
        }
        pos += WAL_FRAME_HEADER_LEN + len;
    }
    let valid_bytes = match &torn {
        Some(t) => t.offset,
        None => pos as u64,
    };
    Ok(SegmentScan {
        path: path.to_path_buf(),
        header: Some((shard, index)),
        records,
        valid_bytes,
        file_len,
        torn,
    })
}

/// Lists a shard directory's segment files as `(index, path)`, sorted by
/// index. Files not matching the `seg-*.wal` pattern are ignored.
pub fn list_segments(shard_dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(shard_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".wal"))
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        else {
            continue;
        };
        segments.push((index, entry.path()));
    }
    segments.sort_unstable_by_key(|(index, _)| *index);
    Ok(segments)
}

/// Lists the shard sub-directories of a WAL directory as `(shard, path)`,
/// sorted by shard index.
pub fn list_shard_dirs(dir: &Path) -> Result<Vec<(u32, PathBuf)>, WalError> {
    let mut shards = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(shard) = name
            .to_str()
            .and_then(|name| name.strip_prefix("shard-"))
            .and_then(|digits| digits.parse::<u32>().ok())
        else {
            continue;
        };
        shards.push((shard, entry.path()));
    }
    shards.sort_unstable_by_key(|(shard, _)| *shard);
    Ok(shards)
}

// ---------------------------------------------------------------------------
// The writer
// ---------------------------------------------------------------------------

/// Live WAL counters for one shard (reported through `stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalShardStats {
    /// Shard index.
    pub shard: u32,
    /// Live segment files (sealed + the active one).
    pub segments: u64,
    /// Frames across live segments.
    pub frames: u64,
    /// Bytes across live segments (headers included).
    pub bytes: u64,
    /// Frames in the active (not yet sealed) segment — the tail a crash with
    /// `fsync=always` could at most tear mid-frame.
    pub tail_frames: u64,
}

/// The append side of one shard's WAL: owns the active segment file and the
/// fsync bookkeeping. All methods take `&mut self` — in the sharded service
/// the writer lives under the shard's write lock, so the WAL append and the
/// store append are one mutation.
#[derive(Debug)]
pub struct ShardWal {
    dir: PathBuf,
    shard: u32,
    fsync: FsyncPolicy,
    segment_max_bytes: u64,
    io: Arc<dyn StorageIo>,
    file: File,
    active_index: u64,
    active_bytes: u64,
    active_frames: u64,
    sealed_bytes: u64,
    sealed_frames: u64,
    sealed_segments: u64,
    unsynced: u64,
    last_sync: Instant,
    /// Set (with the rendered cause) by the first failed write or fsync:
    /// from then on every mutation returns [`WalError::Poisoned`]. Sticky by
    /// design — after a failed `sync_data` the kernel may have *dropped* the
    /// dirty pages, so a retried fsync that succeeds proves nothing about
    /// the frames the failed one covered; an un-synced frame must never
    /// become ackable through silent retry.
    poisoned: Option<String>,
}

impl ShardWal {
    /// Opens (or creates) shard `shard`'s log under `config.dir`. An existing
    /// log is scanned first: all segments must be valid except that the last
    /// may have a torn tail, which is **physically truncated** here so the
    /// file ends on a frame boundary before any append. Returns the writer
    /// and the valid records found (in append order) — the durable tail a
    /// caller may want to replay.
    pub fn open(config: &Durability, shard: u32) -> Result<(Self, Vec<WalRecord>), WalError> {
        let dir = shard_dir(&config.dir, shard);
        std::fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;
        let mut records = Vec::new();
        let mut sealed_bytes = 0u64;
        let mut sealed_frames = 0u64;
        let io = Arc::clone(&config.io);
        let mut wal = if let Some((&(last_index, ref last_path), earlier)) = segments.split_last() {
            for (index, path) in earlier {
                let scan = scan_segment_io(path, false, io.as_ref())?;
                check_header(&scan, shard, *index)?;
                sealed_bytes += scan.valid_bytes;
                sealed_frames += scan.records.len() as u64;
                records.extend(scan.records);
            }
            let scan = scan_segment_io(last_path, true, io.as_ref())?;
            if let Some((header_shard, header_index)) = scan.header {
                check_header(&scan, shard, last_index)?;
                let _ = (header_shard, header_index);
            }
            let file = OpenOptions::new().append(true).open(last_path)?;
            if scan.valid_bytes < scan.file_len || scan.header.is_none() {
                // Torn tail: truncate to the last complete frame (or rewrite
                // a torn header from scratch) so appends extend a valid file.
                io.set_len(
                    &file,
                    scan.valid_bytes.max(if scan.header.is_some() {
                        WAL_HEADER_LEN as u64
                    } else {
                        0
                    }),
                )?;
                io.sync_data(&file)?;
            }
            let mut wal = ShardWal {
                dir,
                shard,
                fsync: config.fsync,
                segment_max_bytes: config.segment_max_bytes,
                io: Arc::clone(&io),
                file,
                active_index: last_index,
                active_bytes: scan.valid_bytes.max(WAL_HEADER_LEN as u64),
                active_frames: scan.records.len() as u64,
                sealed_bytes,
                sealed_frames,
                sealed_segments: segments.len() as u64 - 1,
                unsynced: 0,
                last_sync: Instant::now(),
                poisoned: None,
            };
            if scan.header.is_none() {
                // The file was truncated to zero above; give it a header.
                io.write_all(&mut wal.file, &encode_segment_header(shard, last_index))?;
                io.sync_data(&wal.file)?;
                wal.active_bytes = WAL_HEADER_LEN as u64;
                wal.active_frames = 0;
            }
            records.extend(scan.records);
            wal
        } else {
            let (file, path) = create_segment_io(&dir, shard, 0, io.as_ref())?;
            let _ = path;
            ShardWal {
                dir,
                shard,
                fsync: config.fsync,
                segment_max_bytes: config.segment_max_bytes,
                io: Arc::clone(&io),
                file,
                active_index: 0,
                active_bytes: WAL_HEADER_LEN as u64,
                active_frames: 0,
                sealed_bytes: 0,
                sealed_frames: 0,
                sealed_segments: 0,
                unsynced: 0,
                last_sync: Instant::now(),
                poisoned: None,
            }
        };
        wal.last_sync = Instant::now();
        Ok((wal, records))
    }

    /// The shard this writer logs for.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The rendered cause when this writer is poisoned by an earlier write or
    /// fsync failure, `None` while it is healthy.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Returns [`WalError::Poisoned`] once the writer has seen a write/fsync
    /// failure; every mutating entry point calls this first.
    fn check_poisoned(&self) -> Result<(), WalError> {
        match &self.poisoned {
            Some(reason) => Err(WalError::Poisoned {
                shard: self.shard,
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Marks the writer poisoned and passes the original failure through. The
    /// *first* caller sees the real error; everyone after sees `Poisoned`.
    fn poison(&mut self, op: &str, err: WalError) -> WalError {
        if self.poisoned.is_none() {
            self.poisoned = Some(format!("{op} failed: {err}"));
        }
        err
    }

    /// Appends one record as a checksummed frame, rotating the segment first
    /// if it is full, then applies the fsync policy. The frame is written
    /// with one `write_all`; durability is governed by the policy. Any write
    /// or fsync failure poisons the writer (see [`WalError::Poisoned`]).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        self.check_poisoned()?;
        let frame = encode_frame(record)?;
        if self.active_frames > 0 && self.active_bytes + frame.len() as u64 > self.segment_max_bytes
        {
            self.seal()?;
        }
        if let Err(err) = self.io.write_all(&mut self.file, &frame) {
            // A short write may have left torn bytes the in-memory counters
            // do not cover; appending past them would bury this frame.
            return Err(self.poison("append write", WalError::Io(err)));
        }
        self.active_bytes += frame.len() as u64;
        self.active_frames += 1;
        self.unsynced += 1;
        match self.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Interval(window) => {
                if self.last_sync.elapsed() >= window {
                    self.sync()?;
                }
            }
        }
        Ok(())
    }

    /// Forces every appended frame to disk now, regardless of policy. A
    /// failed `fdatasync` poisons the writer permanently: the kernel may have
    /// dropped the dirty pages, so a *retried* fsync that succeeds proves
    /// nothing about the frames the failed one covered.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.check_poisoned()?;
        if self.unsynced > 0 {
            if let Err(err) = self.io.sync_data(&self.file) {
                return Err(self.poison("fsync", WalError::Io(err)));
            }
        }
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// The *delta snapshot* primitive: syncs and seals the active segment and
    /// opens the next one. Everything appended so far — exactly the events
    /// since the last checkpoint not yet in a sealed segment — is now durable
    /// and immutable, without rewriting the checkpoint snapshot.
    pub fn seal(&mut self) -> Result<(), WalError> {
        self.check_poisoned()?;
        if let Err(err) = self.io.sync_data(&self.file) {
            return Err(self.poison("seal fsync", WalError::Io(err)));
        }
        self.unsynced = 0;
        self.last_sync = Instant::now();
        self.sealed_bytes += self.active_bytes;
        self.sealed_frames += self.active_frames;
        self.sealed_segments += 1;
        let next = self.active_index + 1;
        let (file, _path) = match create_segment_io(&self.dir, self.shard, next, self.io.as_ref()) {
            Ok(created) => created,
            Err(err) => return Err(self.poison("seal rotation", err)),
        };
        self.file = file;
        self.active_index = next;
        self.active_bytes = WAL_HEADER_LEN as u64;
        self.active_frames = 0;
        Ok(())
    }

    /// Checkpoint trim: deletes every segment (their events are now covered
    /// by the checkpoint snapshot) and starts a fresh active segment. The new
    /// segment keeps the monotonic index sequence, so a stale pre-checkpoint
    /// segment can never alias a live one.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.check_poisoned()?;
        let next = self.active_index + 1;
        let (file, _path) = match create_segment_io(&self.dir, self.shard, next, self.io.as_ref()) {
            Ok(created) => created,
            Err(err) => return Err(self.poison("reset rotation", err)),
        };
        let segments = match list_segments(&self.dir) {
            Ok(segments) => segments,
            Err(err) => return Err(self.poison("reset trim scan", err)),
        };
        for (index, path) in segments {
            if index != next {
                // A stale segment the checkpoint already covers must not
                // outlive the trim: a failed delete poisons the writer so the
                // operator reopens the log (which retries the trim) instead of
                // appending alongside a segment recovery will rescan.
                if let Err(err) = self.io.remove_file(&path) {
                    return Err(self.poison("reset trim", WalError::Io(err)));
                }
            }
        }
        fsync_dir(&self.dir);
        self.file = file;
        self.active_index = next;
        self.active_bytes = WAL_HEADER_LEN as u64;
        self.active_frames = 0;
        self.sealed_bytes = 0;
        self.sealed_frames = 0;
        self.sealed_segments = 0;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Live counters for `stats`.
    pub fn stats(&self) -> WalShardStats {
        WalShardStats {
            shard: self.shard,
            segments: self.sealed_segments + 1,
            frames: self.sealed_frames + self.active_frames,
            bytes: self.sealed_bytes + self.active_bytes,
            tail_frames: self.active_frames,
        }
    }
}

fn check_header(scan: &SegmentScan, shard: u32, index: u64) -> Result<(), WalError> {
    if let Some((header_shard, header_index)) = scan.header {
        if header_shard != shard || header_index != index {
            return Err(WalError::Corrupt {
                segment: scan.path.clone(),
                offset: 12,
                reason: format!(
                    "header claims shard {header_shard} segment {header_index}, \
                     expected shard {shard} segment {index}"
                ),
            });
        }
    }
    Ok(())
}

fn create_segment_io(
    dir: &Path,
    shard: u32,
    index: u64,
    io: &dyn StorageIo,
) -> Result<(File, PathBuf), WalError> {
    let path = segment_path(dir, index);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)?;
    io.write_all(&mut file, &encode_segment_header(shard, index))?;
    io.sync_data(&file)?;
    fsync_dir(dir);
    Ok((file, path))
}

/// Best-effort directory fsync so renames/creates survive a power loss on
/// filesystems that need it; ignored where unsupported.
pub(crate) fn fsync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

// ---------------------------------------------------------------------------
// Maintenance: inspect / truncate
// ---------------------------------------------------------------------------

/// What `wal inspect` reports for one segment file (always scanned
/// leniently: inspection describes damage, it never fails on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInspection {
    /// The segment file.
    pub path: PathBuf,
    /// Segment index from the file name.
    pub index: u64,
    /// Valid frames.
    pub frames: u64,
    /// Bytes of valid prefix.
    pub valid_bytes: u64,
    /// Actual file length.
    pub file_len: u64,
    /// Event-id range of the valid frames, as `(first, last)`.
    pub id_range: Option<(u64, u64)>,
    /// Damage description when the file has an invalid tail.
    pub damage: Option<String>,
}

/// What `wal inspect` reports for one shard directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInspection {
    /// Shard index (from the directory name).
    pub shard: u32,
    /// The shard directory.
    pub dir: PathBuf,
    /// Its segments, in index order.
    pub segments: Vec<SegmentInspection>,
}

/// What `wal inspect` reports for a whole WAL directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalInspection {
    /// The inspected directory.
    pub dir: PathBuf,
    /// The checkpoint snapshot: `Ok((bytes, events, next_event_id))` when it
    /// loads, `Err(message)` when present but unreadable, `None` when absent.
    pub checkpoint: Option<Result<(u64, usize, u64), String>>,
    /// Per-shard segment listings.
    pub shards: Vec<ShardInspection>,
}

/// Scans a WAL directory without modifying it: checkpoint, shards, segments,
/// frame counts, id ranges, and any damage (torn tails, corrupt frames).
pub fn inspect_wal(dir: &Path) -> Result<WalInspection, WalError> {
    let checkpoint = {
        let path = checkpoint_path(dir);
        if path.exists() {
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            Some(
                crate::EventStore::load_snapshot(&path)
                    .map(|store| (bytes, store.num_events(), store.next_event_id()))
                    .map_err(|e| e.to_string()),
            )
        } else {
            None
        }
    };
    let mut shards = Vec::new();
    for (shard, shard_path) in list_shard_dirs(dir)? {
        let mut segments = Vec::new();
        for (index, path) in list_segments(&shard_path)? {
            let segment = match scan_segment(&path, true) {
                Ok(scan) => SegmentInspection {
                    path: path.clone(),
                    index,
                    frames: scan.records.len() as u64,
                    valid_bytes: scan.valid_bytes,
                    file_len: scan.file_len,
                    id_range: match (scan.records.first(), scan.records.last()) {
                        (Some(first), Some(last)) => Some((first.id, last.id)),
                        _ => None,
                    },
                    damage: scan
                        .torn
                        .map(|torn| format!("at byte {}: {}", torn.offset, torn.reason)),
                },
                // Foreign files / unsupported versions: report, don't fail.
                Err(e) => SegmentInspection {
                    path: path.clone(),
                    index,
                    frames: 0,
                    valid_bytes: 0,
                    file_len: std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                    id_range: None,
                    damage: Some(e.to_string()),
                },
            };
            segments.push(segment);
        }
        shards.push(ShardInspection {
            shard,
            dir: shard_path,
            segments,
        });
    }
    Ok(WalInspection {
        dir: dir.to_path_buf(),
        checkpoint,
        shards,
    })
}

/// What `wal truncate` did to one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTruncation {
    /// Shard index.
    pub shard: u32,
    /// The first damaged segment, truncated in place to its valid prefix
    /// (`None` when the shard was clean).
    pub truncated: Option<PathBuf>,
    /// Bytes cut from the truncated segment.
    pub bytes_cut: u64,
    /// Later segments deleted outright (everything after the damage).
    pub segments_removed: u64,
    /// Valid frames lost inside the removed segments (frames after the
    /// damage point are unrecoverable by definition).
    pub frames_removed: u64,
}

/// Repairs a damaged WAL in place: for each shard, everything from the first
/// invalid frame onward is discarded — the damaged segment is truncated to
/// its valid prefix and all later segments are deleted. This is the manual
/// counterpart of the automatic torn-tail handling recovery applies to the
/// *last* segment only; use it when an earlier segment is damaged and
/// recovery refuses with [`WalError::Corrupt`].
pub fn truncate_wal(dir: &Path) -> Result<Vec<ShardTruncation>, WalError> {
    let mut report = Vec::new();
    for (shard, shard_path) in list_shard_dirs(dir)? {
        let mut truncation = ShardTruncation {
            shard,
            truncated: None,
            bytes_cut: 0,
            segments_removed: 0,
            frames_removed: 0,
        };
        let mut damaged = false;
        for (_index, path) in list_segments(&shard_path)? {
            if damaged {
                let scan = scan_segment(&path, true);
                if let Ok(scan) = scan {
                    truncation.frames_removed += scan.records.len() as u64;
                }
                std::fs::remove_file(&path)?;
                truncation.segments_removed += 1;
                continue;
            }
            let scan = match scan_segment(&path, true) {
                Ok(scan) => scan,
                Err(_) => {
                    // Foreign / unreadable file in the sequence: cut here.
                    damaged = true;
                    truncation.truncated = Some(path.clone());
                    truncation.bytes_cut += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    std::fs::remove_file(&path)?;
                    truncation.segments_removed += 1;
                    continue;
                }
            };
            if !scan.is_clean() {
                damaged = true;
                truncation.truncated = Some(path.clone());
                truncation.bytes_cut += scan.file_len - scan.valid_bytes;
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(scan.valid_bytes)?;
                file.sync_data()?;
            }
        }
        fsync_dir(&shard_path);
        report.push(truncation);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "locater-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(id: u64) -> WalRecord {
        WalRecord {
            id,
            t: 1_000 + id as i64,
            ap: (id % 3) as u32,
            mac: format!("aa:bb:cc:dd:ee:{id:02x}"),
            // Every third record carries an idempotency token, so round-trip
            // tests cover both payload shapes.
            request_id: id.is_multiple_of(3).then_some(0x1000 + id),
        }
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(
            FsyncPolicy::parse("every=8").unwrap(),
            FsyncPolicy::EveryN(8)
        );
        assert_eq!(
            FsyncPolicy::parse("interval=200").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(200))
        );
        for bad in ["", "sometimes", "every=", "every=0", "interval=-1"] {
            assert!(FsyncPolicy::parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
        assert_eq!(FsyncPolicy::EveryN(4).to_string(), "every=4");
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(50)).to_string(),
            "interval=50"
        );
    }

    #[test]
    fn append_and_rescan_roundtrips() {
        let dir = temp_dir("roundtrip");
        let config = Durability::new(&dir);
        let (mut wal, existing) = ShardWal::open(&config, 0).unwrap();
        assert!(existing.is_empty());
        let records: Vec<WalRecord> = (0..10).map(record).collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.frames, 10);
        assert_eq!(stats.segments, 1);
        drop(wal);
        // Reopen: the same records come back, in order.
        let (wal, recovered) = ShardWal::open(&config, 0).unwrap();
        assert_eq!(recovered, records);
        assert_eq!(wal.stats().frames, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_segments_and_survives_reopen() {
        let dir = temp_dir("rotation");
        // Tiny segments: every frame rotates.
        let config = Durability::new(&dir).with_segment_max_bytes(64);
        let (mut wal, _) = ShardWal::open(&config, 2).unwrap();
        let records: Vec<WalRecord> = (0..5).map(record).collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        assert!(wal.stats().segments > 1, "rotation must have happened");
        let total = wal.stats().frames;
        drop(wal);
        let (wal, recovered) = ShardWal::open(&config, 2).unwrap();
        assert_eq!(recovered, records);
        assert_eq!(wal.stats().frames, total);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_byte_boundary() {
        let dir = temp_dir("torn");
        let config = Durability::new(&dir);
        let (mut wal, _) = ShardWal::open(&config, 0).unwrap();
        for i in 0..3 {
            wal.append(&record(i)).unwrap();
        }
        let before_last = {
            let path = segment_path(&shard_dir(&dir, 0), 0);
            std::fs::metadata(&path).unwrap().len()
        };
        wal.append(&record(3)).unwrap();
        drop(wal);
        let path = segment_path(&shard_dir(&dir, 0), 0);
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every byte boundary inside the last frame: the
        // first three records always survive, the fourth only when complete.
        for cut in before_last..full.len() as u64 {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let (wal, recovered) = ShardWal::open(&config, 0).unwrap();
            assert_eq!(recovered.len(), 3, "cut at {cut}");
            assert_eq!(recovered, (0..3).map(record).collect::<Vec<_>>());
            // The writer truncated the file back to a frame boundary.
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                before_last,
                "cut at {cut}"
            );
            drop(wal);
            std::fs::write(&path, &full).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_middle_segment_is_a_typed_error() {
        let dir = temp_dir("corrupt-middle");
        let config = Durability::new(&dir).with_segment_max_bytes(64);
        let (mut wal, _) = ShardWal::open(&config, 0).unwrap();
        for i in 0..5 {
            wal.append(&record(i)).unwrap();
        }
        assert!(wal.stats().segments >= 3);
        drop(wal);
        // Flip one payload byte in the FIRST segment: not the tail, so the
        // open must refuse with a positioned Corrupt error, not truncate.
        let first = list_segments(&shard_dir(&dir, 0)).unwrap()[0].1.clone();
        let mut bytes = std::fs::read(&first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&first, &bytes).unwrap();
        let err = ShardWal::open(&config, 0).unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { .. }),
            "unexpected error: {err}"
        );
        assert!(err.to_string().contains("wal truncate"));
        // wal truncate repairs it: damage point onward is discarded.
        let report = truncate_wal(&dir).unwrap();
        assert_eq!(report.len(), 1);
        assert!(report[0].truncated.is_some());
        assert!(report[0].segments_removed > 0);
        let (_, recovered) = ShardWal::open(&config, 0).unwrap();
        assert!(recovered.len() < 5, "frames after the damage are gone");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_and_versions_are_typed_errors() {
        let dir = temp_dir("foreign");
        let seg = dir.join("seg-0000000000000000.wal");
        std::fs::write(&seg, b"definitely not a wal segment").unwrap();
        assert!(matches!(
            scan_segment(&seg, true),
            Err(WalError::NotAWalSegment(_))
        ));
        let mut header = encode_segment_header(0, 0).to_vec();
        header[8..12].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&seg, &header).unwrap();
        assert!(matches!(
            scan_segment(&seg, true),
            Err(WalError::UnsupportedVersion { found: 9, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_and_reset_manage_segments() {
        let dir = temp_dir("seal-reset");
        let config = Durability::new(&dir);
        let (mut wal, _) = ShardWal::open(&config, 1).unwrap();
        wal.append(&record(0)).unwrap();
        wal.seal().unwrap();
        wal.append(&record(1)).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.tail_frames, 1);
        wal.reset().unwrap();
        let stats = wal.stats();
        assert_eq!((stats.segments, stats.frames), (1, 0));
        // Indices stay monotonic across the reset.
        let segments = list_segments(&shard_dir(&dir, 1)).unwrap();
        assert_eq!(segments.len(), 1);
        assert!(segments[0].0 >= 2);
        drop(wal);
        let (_, recovered) = ShardWal::open(&config, 1).unwrap();
        assert!(recovered.is_empty(), "reset discarded all records");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_reset_trim_poisons_the_writer() {
        use crate::io::{FaultIo, FaultKind, FaultPlan};
        let dir = temp_dir("poison-reset");
        // The only remove ops are reset's stale-segment deletions; fault the
        // very first one.
        let plan = FaultPlan {
            removes: 1,
            horizon: 1,
            ..FaultPlan::quiet(3)
        };
        let io = std::sync::Arc::new(FaultIo::new(plan));
        let config = Durability::new(&dir).with_io(io.clone());
        let (mut wal, _) = ShardWal::open(&config, 0).unwrap();
        wal.append(&record(0)).unwrap();
        let err = wal.reset().unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "unexpected error: {err}");
        assert!(wal.poisoned().unwrap().contains("reset trim"));
        assert!(matches!(
            wal.append(&record(1)).unwrap_err(),
            WalError::Poisoned { shard: 0, .. }
        ));
        assert_eq!(io.fired(), vec![(FaultKind::RemoveFailure, 0)]);
        // The stale segment survived the failed delete; reopening recovers
        // its records (replay is idempotent, so nothing is lost or doubled).
        drop(wal);
        let (mut wal, recovered) = ShardWal::open(&Durability::new(&dir), 0).unwrap();
        assert_eq!(recovered.len(), 1);
        wal.reset().unwrap();
        assert_eq!(list_segments(&shard_dir(&dir, 0)).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_identifiers_fail_at_append_time() {
        let err = encode_record(&WalRecord {
            id: 0,
            t: 0,
            ap: 0,
            mac: "x".repeat(70_000),
            request_id: None,
        })
        .unwrap_err();
        assert!(matches!(err, WalError::Unencodable(_)));
    }

    #[test]
    fn failed_fsync_poisons_the_writer_stickily() {
        use crate::io::{FaultIo, FaultKind, FaultPlan};
        let dir = temp_dir("poison-sync");
        // Opening a fresh log consumes sync op 0 (the segment header sync);
        // the first append's fsync is sync op 1 — schedule the fault there.
        let plan = (0..500)
            .map(|seed| FaultPlan {
                seed,
                writes: 0,
                syncs: 1,
                reads: 0,
                renames: 0,
                removes: 0,
                horizon: 2,
            })
            .find(|&p| FaultIo::new(p).schedule() == vec![(FaultKind::SyncFailure, 1)])
            .expect("some seed schedules the sync fault at op 1");
        let io = std::sync::Arc::new(FaultIo::new(plan));
        let config = Durability::new(&dir).with_io(io.clone());
        let (mut wal, _) = ShardWal::open(&config, 0).unwrap();
        assert!(wal.poisoned().is_none());
        // First failure surfaces the real I/O error and poisons the writer.
        let err = wal.append(&record(0)).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "unexpected error: {err}");
        assert!(wal.poisoned().unwrap().contains("fsync"));
        // Every subsequent mutation is refused — no silent retry-fsync.
        for _ in 0..2 {
            let err = wal.append(&record(1)).unwrap_err();
            assert!(matches!(err, WalError::Poisoned { shard: 0, .. }));
        }
        assert!(matches!(wal.sync().unwrap_err(), WalError::Poisoned { .. }));
        assert!(matches!(wal.seal().unwrap_err(), WalError::Poisoned { .. }));
        assert!(matches!(
            wal.reset().unwrap_err(),
            WalError::Poisoned { .. }
        ));
        assert_eq!(io.fired(), vec![(FaultKind::SyncFailure, 1)]);
        drop(wal);
        // Reopening re-scans the durable prefix and yields a healthy writer.
        let clean = Durability::new(&dir);
        let (mut wal, _) = ShardWal::open(&clean, 0).unwrap();
        assert!(wal.poisoned().is_none());
        wal.append(&record(2)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_poisons_and_reopen_truncates_the_torn_frame() {
        use crate::io::{FaultIo, FaultKind, FaultPlan};
        let dir = temp_dir("poison-write");
        // Write op 0 is the segment header; the first frame is write op 1.
        let plan = (0..500)
            .map(|seed| FaultPlan {
                seed,
                writes: 1,
                syncs: 0,
                reads: 0,
                renames: 0,
                removes: 0,
                horizon: 2,
            })
            .find(|&p| FaultIo::new(p).schedule() == vec![(FaultKind::ShortWrite, 1)])
            .expect("some seed schedules a short write at op 1");
        let config = Durability::new(&dir).with_io(std::sync::Arc::new(FaultIo::new(plan)));
        let (mut wal, _) = ShardWal::open(&config, 0).unwrap();
        let err = wal.append(&record(0)).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "unexpected error: {err}");
        assert!(matches!(
            wal.append(&record(1)).unwrap_err(),
            WalError::Poisoned { .. }
        ));
        drop(wal);
        // The torn half-frame is on disk; reopening truncates it away and
        // recovers exactly the acked (empty) prefix.
        let seg = segment_path(&shard_dir(&dir, 0), 0);
        assert!(std::fs::metadata(&seg).unwrap().len() > WAL_HEADER_LEN as u64);
        let clean = Durability::new(&dir);
        let (mut wal, recovered) = ShardWal::open(&clean, 0).unwrap();
        assert!(recovered.is_empty(), "the torn frame was never acked");
        assert_eq!(
            std::fs::metadata(&seg).unwrap().len(),
            WAL_HEADER_LEN as u64
        );
        wal.append(&record(0)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_reports_shards_segments_and_damage() {
        let dir = temp_dir("inspect");
        let config = Durability::new(&dir);
        let (mut wal, _) = ShardWal::open(&config, 0).unwrap();
        for i in 0..4 {
            wal.append(&record(i)).unwrap();
        }
        drop(wal);
        // Tear the tail by cutting three bytes off.
        let seg = list_segments(&shard_dir(&dir, 0)).unwrap()[0].1.clone();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let inspection = inspect_wal(&dir).unwrap();
        assert!(inspection.checkpoint.is_none());
        assert_eq!(inspection.shards.len(), 1);
        let segment = &inspection.shards[0].segments[0];
        assert_eq!(segment.frames, 3);
        assert_eq!(segment.id_range, Some((0, 2)));
        assert!(segment.damage.is_some());
        assert!(segment.valid_bytes < segment.file_len);
        std::fs::remove_dir_all(&dir).ok();
    }
}
