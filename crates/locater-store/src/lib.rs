//! # locater-store
//!
//! Storage, ingestion and indexing substrate for LOCATER (paper §5, "Architecture of
//! LOCATER": ingestion engine + storage engine + the database of dirty data, clean
//! data and metadata).
//!
//! The centerpiece is [`EventStore`]: a **time-partitioned, segmented** store of WiFi
//! connectivity events organised for the access patterns of the cleaning engine:
//!
//! * **per-device segmented timelines** ([`DeviceTimeline`]) — each device's
//!   time-sorted history is split into immutable time-bucketed [`Segment`]s plus a
//!   mutable *head* segment receiving live appends. Gap detection, validity lookups
//!   and history scans prune whole segments by their time bounds before doing any
//!   per-event work, so windowed queries cost `O(window)`, not `O(history)`;
//! * **a global timeline index** ([`Timeline`]) — "which devices were connected
//!   around time `t`?" (needed to find the *neighbor devices* of the fine-grained
//!   algorithm) is a range scan over one sorted index;
//! * **device interning** — MAC-address strings are interned to dense
//!   [`DeviceId`](locater_events::DeviceId)s at ingestion; all downstream processing
//!   uses integer ids;
//! * **binary snapshot persistence** ([`EventStore::save_snapshot`] /
//!   [`EventStore::load_snapshot`]) — the whole store round-trips bit-identically
//!   through a compact, versioned, checksummed binary format (see [`snapshot`]), so
//!   cold starts skip CSV replay entirely;
//! * **streaming loaders** — CSV ([`EventStore::load_csv_reader`]) and NDJSON
//!   ([`EventStore::load_ndjson_reader`]) sources are ingested one line at a time in
//!   bounded memory, with parse *and* semantic errors annotated with their input
//!   line (and column, for CSV field errors);
//! * **durability** ([`wal`] + [`recovery`]) — a per-shard append-only
//!   write-ahead log of checksummed frames makes every acknowledged ingest
//!   crash-safe; recovery loads the last checkpoint snapshot and replays the
//!   log tail (truncating a torn final frame), reproducing the pre-crash
//!   store bit-identically. [`DurableEventStore`] is the single-store
//!   embedding;
//! * **compaction and tiered ageing** ([`compaction`]) —
//!   [`EventStore::compact`] evicts whole segment buckets below a retention
//!   horizon from all three structures in one coherent mutation, distilling
//!   the evicted history into per-device per-AP dwell summaries (the coarse
//!   tier) and an eviction-only spill store in the snapshot format (the cold
//!   tier), so an always-on service runs at bounded memory while answers
//!   inside the retained window stay byte-identical;
//! * **per-device sharding** — [`EventStore::split`] / [`EventStore::rejoin`]
//!   partition a store into per-device shards and reassemble them
//!   bit-identically ([`shard_of_device`] is the assignment), and the
//!   [`EventRead`] trait + [`ShardedRead`] view let readers treat the
//!   partitions as one logical store with answers identical to the combined
//!   one (the global [`Timeline`] keeps canonical `(t, device)` order exactly
//!   so that this merge is exact).
//!
//! ## Ingest, query, segment layout
//!
//! ```
//! use locater_events::Interval;
//! use locater_space::SpaceBuilder;
//! use locater_store::EventStore;
//!
//! let space = SpaceBuilder::new("demo")
//!     .add_access_point("wap1", &["r1", "r2"])
//!     .add_access_point("wap2", &["r2", "r3"])
//!     .build()
//!     .unwrap();
//! // Small segment span so this example shows several segments.
//! let mut store = EventStore::new(space).with_segment_span(3_600);
//! store.ingest_raw("aa:bb:cc:dd:ee:01", 100, "wap1").unwrap();
//! store.ingest_raw("aa:bb:cc:dd:ee:02", 150, "wap2").unwrap();
//! store.ingest_raw("aa:bb:cc:dd:ee:01", 4_000, "wap2").unwrap();
//! assert_eq!(store.num_devices(), 2);
//! assert_eq!(store.num_events(), 3);
//!
//! let d1 = store.device_id("aa:bb:cc:dd:ee:01").unwrap();
//! // Two events, one hour apart → two segments; the newest is the head.
//! let timeline = store.timeline_of(d1);
//! assert_eq!(timeline.len(), 2);
//! assert_eq!(timeline.num_segments(), 2);
//! assert_eq!(timeline.head().unwrap().bucket(), 1);
//! // Window queries only visit segments overlapping the window.
//! let in_window: Vec<i64> = store
//!     .events_of_in(d1, Interval::new(0, 3_600))
//!     .map(|e| e.t)
//!     .collect();
//! assert_eq!(in_window, vec![100]);
//! ```
//!
//! ## Snapshot round-trip
//!
//! ```
//! use locater_space::SpaceBuilder;
//! use locater_store::EventStore;
//!
//! let space = SpaceBuilder::new("demo")
//!     .add_access_point("wap1", &["r1"])
//!     .build()
//!     .unwrap();
//! let mut store = EventStore::new(space);
//! store.ingest_raw("aa:bb:cc:dd:ee:01", 1_000, "wap1").unwrap();
//!
//! // The snapshot embeds the space, devices and segment runs; reloading it
//! // reproduces the store bit-for-bit (event ids included).
//! let bytes = store.to_snapshot_bytes().unwrap();
//! let reloaded = EventStore::from_snapshot_bytes(&bytes).unwrap();
//! assert_eq!(reloaded, store);
//!
//! // Decoding failures are typed errors, never panics.
//! assert!(matches!(
//!     EventStore::from_snapshot_bytes(b"not a snapshot"),
//!     Err(locater_store::StoreError::NotASnapshot)
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colocation;
pub mod compaction;
mod csv;
mod error;
pub mod io;
mod ndjson;
mod read;
pub mod recovery;
mod segment;
mod shard;
pub mod snapshot;
mod stats;
mod store;
mod timeline;
pub mod wal;

pub use colocation::{
    ApPostings, ColocationIndex, ColocationIndexStats, DevicePostings, PostingCursor,
};
pub use compaction::{
    list_spills, load_spill, load_summaries, merge_dwell_summaries, merge_spills, persist_tiers,
    persist_tiers_io, spill_path, summary_path, CompactionReport, DwellSummary, TierStats,
};
pub use csv::{format_csv, parse_csv, parse_csv_line, RawEvent, CSV_HEADER};
pub use error::{IngestError, StoreError};
pub use io::{FaultIo, FaultKind, FaultPlan, RealIo, StorageIo};
pub use ndjson::{format_ndjson, parse_ndjson, parse_ndjson_line};
pub use read::{EventRead, ScanRead};
pub use recovery::{
    initialize_wal, recover_store, recover_store_io, write_checkpoint, write_checkpoint_io,
    AckedIngest, DurableEventStore, RecoveryReport,
};
pub use segment::{DeviceTimeline, EventsInRange, Segment, TimelineIter, DEFAULT_SEGMENT_SPAN};
pub use shard::{shard_of_device, ShardedRead};
pub use snapshot::{SnapshotIndexMode, MIN_SNAPSHOT_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use stats::DatasetStatistics;
pub use store::EventStore;
pub use timeline::{NearbyDevice, Timeline};
pub use wal::{
    checkpoint_path, inspect_wal, scan_segment, scan_segment_io, truncate_wal, Durability,
    FsyncPolicy, ShardWal, WalError, WalInspection, WalRecord, WalShardStats,
};
