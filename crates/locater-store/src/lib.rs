//! # locater-store
//!
//! Storage, ingestion and indexing substrate for LOCATER (paper §5, "Architecture of
//! LOCATER": ingestion engine + storage engine + the database of dirty data, clean
//! data and metadata).
//!
//! The centerpiece is [`EventStore`]: an in-memory, column-oriented store of WiFi
//! connectivity events organised for the access patterns of the cleaning engine:
//!
//! * **per-device sorted event sequences** (`E(d_i)`) — gap detection, validity
//!   lookups and history scans are binary searches over a dense, time-sorted vector;
//! * **a global timeline index** — "which devices were connected around time `t`?"
//!   (needed to find the *neighbor devices* of the fine-grained algorithm) is a range
//!   scan over one sorted vector;
//! * **device interning** — MAC-address strings are interned to dense [`DeviceId`](locater_events::DeviceId)s at
//!   ingestion; all downstream processing uses integer ids.
//!
//! The store also offers CSV import/export (the de-facto exchange format for
//! association logs), per-device validity-period (δ) estimation, dataset statistics
//! used in reports, and a streaming [`ingest`](EventStore::ingest_raw) API that accepts
//! slightly out-of-order events.
//!
//! ```
//! use locater_space::SpaceBuilder;
//! use locater_store::EventStore;
//!
//! let space = SpaceBuilder::new("demo")
//!     .add_access_point("wap1", &["r1", "r2"])
//!     .add_access_point("wap2", &["r2", "r3"])
//!     .build()
//!     .unwrap();
//! let mut store = EventStore::new(space);
//! store.ingest_raw("aa:bb:cc:dd:ee:01", 100, "wap1").unwrap();
//! store.ingest_raw("aa:bb:cc:dd:ee:02", 150, "wap2").unwrap();
//! store.ingest_raw("aa:bb:cc:dd:ee:01", 4_000, "wap2").unwrap();
//! assert_eq!(store.num_devices(), 2);
//! assert_eq!(store.num_events(), 3);
//! let d1 = store.device_id("aa:bb:cc:dd:ee:01").unwrap();
//! assert_eq!(store.events_of(d1).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv;
mod error;
mod stats;
mod store;
mod timeline;

pub use csv::{format_csv, parse_csv, RawEvent};
pub use error::IngestError;
pub use stats::DatasetStatistics;
pub use store::EventStore;
pub use timeline::{NearbyDevice, Timeline};
