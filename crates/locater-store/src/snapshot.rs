//! Versioned binary snapshot persistence for [`EventStore`].
//!
//! A snapshot captures the *entire* store — space metadata, device table,
//! per-device segment runs, validity configuration and event-id counter — in a
//! compact binary layout, so a service restart costs one sequential file read
//! instead of replaying (re-parsing, re-interning, re-sorting) the whole CSV
//! log. The wire layout of version 3:
//!
//! ```text
//! magic      8 B   "LOCATRSN"
//! version    u32   3
//! checksum   u64   FNV-1a 64 over the payload bytes
//! length     u64   payload byte count
//! payload:
//!   space     u32 len + Space JSON (UTF-8; full id-preserving form)
//!   validity  default/min/max δ (i64 ×3), percentile (f64 bits), min_samples (u64)
//!   span      i64   segment span in seconds
//!   next id   u64   event-id counter
//!   devices   u32 count, then per device: mac (u16 len + UTF-8), δ (i64)
//!   runs      per device: u32 segment count, then per segment:
//!             bucket (i64), u32 event count, events as (id u64, t i64, ap u32)
//!   index     u8 mode (0 = rebuild on load, 1 = embedded), then when 1,
//!             per device: u32 posting-list count, per list: ap (u32),
//!             u32 bucket count, per bucket: bucket (i64), u32 timestamp
//!             count, timestamps (i64 ×count)
//! ```
//!
//! All integers are little-endian. Events inside a segment are stored in the
//! segment's own (time-sorted, tie-stable) order, so replaying them through
//! [`DeviceTimeline::push`] reproduces the exact in-memory structure — the
//! round-trip is bit-identical, event ids and epoch-relevant ordering included.
//!
//! The co-location index (see [`crate::colocation`]) is a deterministic
//! function of the event runs, so it need not be persisted: the default
//! [`SnapshotIndexMode::Rebuild`] writes one flag byte and reconstructs the
//! index on load. [`SnapshotIndexMode::Embedded`] trades snapshot size for
//! cold-start time by persisting the posting lists verbatim (the decoded
//! index is validated against the runs). Version-1 snapshots (no index
//! section) are still read and rebuild on load.
//!
//! Versions 1 and 2 stored the space as name-canonical
//! [`SpaceMetadata`] JSON and re-interned names on load, which could
//! reassign [`locater_space::RoomId`]/[`AccessPointId`] values relative to
//! the saved store (metadata iterates access points in name order, not
//! first-mention order) — while the event records keep raw AP *ids*.
//! Version 3 stores the full [`Space`] form instead, which round-trips
//! every id verbatim, so `load(save(store))` equals the original store
//! bit-for-bit for any space. Old snapshots still load through the
//! metadata path (correct whenever name order and first-mention order
//! agree).
//!
//! Decoding failures surface as typed [`StoreError`]s ([`StoreError::NotASnapshot`],
//! [`StoreError::UnsupportedVersion`], [`StoreError::Truncated`],
//! [`StoreError::ChecksumMismatch`], [`StoreError::Corrupt`]) — never panics.

use crate::colocation::{ApPostings, ColocationIndex, DevicePostings};
use crate::error::StoreError;
use crate::segment::DeviceTimeline;
use crate::store::EventStore;
use locater_events::validity::ValidityConfig;
use locater_events::{Device, DeviceId, EventId, MacAddress, StoredEvent, Timestamp};
use locater_space::{AccessPointId, Space, SpaceMetadata};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes every snapshot starts with.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"LOCATRSN";
/// Newest snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 3;
/// Oldest snapshot format version this build still reads.
pub const MIN_SNAPSHOT_VERSION: u32 = 1;

/// How a snapshot treats the co-location index (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotIndexMode {
    /// Write only the event runs; the index is rebuilt on load (smallest
    /// file, deterministic bytes — the default).
    #[default]
    Rebuild,
    /// Persist the posting lists alongside the runs so a cold start skips the
    /// index rebuild (larger file).
    Embedded,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_payload(store: &EventStore, mode: SnapshotIndexMode) -> Result<Vec<u8>, StoreError> {
    let (space, validity, span, next_event_id, devices, timelines) = store.snapshot_parts();
    let mut out = Vec::with_capacity(64 + store.num_events() * 20);

    // The full id-preserving form, not `SpaceMetadata`: event records below
    // reference access points by raw id, so the space section must restore
    // the exact same id assignment on load.
    let space_json = space
        .to_json()
        .map_err(|e| StoreError::Space(e.to_string()))?;
    put_u32(&mut out, space_json.len() as u32);
    out.extend_from_slice(space_json.as_bytes());

    put_i64(&mut out, validity.default_delta);
    put_i64(&mut out, validity.min_delta);
    put_i64(&mut out, validity.max_delta);
    put_u64(&mut out, validity.percentile.to_bits());
    put_u64(&mut out, validity.min_samples as u64);

    put_i64(&mut out, span);
    put_u64(&mut out, next_event_id);

    put_u32(&mut out, devices.len() as u32);
    for device in devices {
        let mac = device.mac.as_str().as_bytes();
        // The length field is a u16; an oversized identifier must fail loudly
        // at write time, not truncate into an undecodable-but-checksummed file.
        let mac_len = u16::try_from(mac.len()).map_err(|_| {
            StoreError::Unencodable(format!(
                "device {} identifier is {} bytes (format limit {})",
                device.id,
                mac.len(),
                u16::MAX
            ))
        })?;
        put_u16(&mut out, mac_len);
        out.extend_from_slice(mac);
        put_i64(&mut out, device.delta);
    }
    for timeline in timelines {
        put_u32(&mut out, timeline.num_segments() as u32);
        for segment in timeline.segments() {
            put_i64(&mut out, segment.bucket());
            put_u32(&mut out, segment.len() as u32);
            for event in segment.events() {
                put_u64(&mut out, event.id.0);
                put_i64(&mut out, event.t);
                put_u32(&mut out, event.ap.raw());
            }
        }
    }

    match mode {
        SnapshotIndexMode::Rebuild => out.push(0),
        SnapshotIndexMode::Embedded => {
            out.push(1);
            for postings in store.colocation_index().devices() {
                put_u32(&mut out, postings.ap_lists().len() as u32);
                for list in postings.ap_lists() {
                    put_u32(&mut out, list.ap().raw());
                    put_u32(&mut out, list.num_buckets() as u32);
                    for (bucket, ts) in list.timestamps().bucket_runs() {
                        put_i64(&mut out, bucket);
                        put_u32(&mut out, ts.len() as u32);
                        for &t in ts {
                            put_i64(&mut out, t);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Decodes the embedded co-location index section (mode byte already read).
fn decode_index(
    d: &mut Decoder<'_>,
    span: Timestamp,
    device_count: usize,
    num_access_points: usize,
) -> Result<ColocationIndex, StoreError> {
    let mut devices = Vec::with_capacity(device_count.min(1 << 20));
    for idx in 0..device_count {
        let list_count = d.u32()? as usize;
        let mut lists = Vec::with_capacity(list_count.min(1 << 16));
        let mut prev_ap: Option<u32> = None;
        for _ in 0..list_count {
            let ap = d.u32()?;
            if prev_ap.is_some_and(|prev| ap <= prev) {
                return Err(StoreError::Corrupt(format!(
                    "device {idx}: index posting lists out of AP order"
                )));
            }
            prev_ap = Some(ap);
            if ap as usize >= num_access_points {
                return Err(StoreError::Corrupt(format!(
                    "device {idx}: index references unknown access point wap#{ap}"
                )));
            }
            let bucket_count = d.u32()? as usize;
            if bucket_count == 0 {
                return Err(StoreError::Corrupt(format!(
                    "device {idx}: empty index posting list for wap#{ap}"
                )));
            }
            // Validated timestamps arrive globally ascending (buckets
            // ascending, timestamps ascending inside each), so replaying them
            // through `record` is all O(1) appends and reproduces the exact
            // in-memory structure.
            let mut list = ApPostings::new(AccessPointId::new(ap), span);
            let mut prev_bucket = i64::MIN;
            for _ in 0..bucket_count {
                let bucket = d.i64()?;
                if bucket <= prev_bucket {
                    return Err(StoreError::Corrupt(format!(
                        "device {idx}: index buckets out of order"
                    )));
                }
                prev_bucket = bucket;
                let ts_count = d.u32()? as usize;
                if ts_count == 0 {
                    return Err(StoreError::Corrupt(format!(
                        "device {idx}: empty index bucket {bucket}"
                    )));
                }
                let mut prev_t = i64::MIN;
                for _ in 0..ts_count {
                    let t = d.i64()?;
                    if t < prev_t || t.div_euclid(span) != bucket {
                        return Err(StoreError::Corrupt(format!(
                            "device {idx}: index timestamps out of order or outside bucket {bucket}"
                        )));
                    }
                    prev_t = t;
                    list.record(t);
                }
            }
            lists.push(list);
        }
        devices.push(DevicePostings::from_lists(lists, span));
    }
    Ok(ColocationIndex::from_devices(span, devices))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        // Checked: a crafted length field near usize::MAX must surface as a
        // typed error, not an addition overflow / inverted-range panic.
        if n > self.bytes.len() - self.pos {
            return Err(StoreError::Truncated {
                needed: self.pos.saturating_add(n),
                available: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self, len: usize) -> Result<&'a str, StoreError> {
        std::str::from_utf8(self.take(len)?)
            .map_err(|_| StoreError::Corrupt("non-UTF-8 string".to_string()))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_payload(payload: &[u8], version: u32) -> Result<EventStore, StoreError> {
    let mut d = Decoder::new(payload);

    let space_len = d.u32()? as usize;
    let space_json = d.str(space_len)?;
    let space = if version >= 3 {
        // v3+: the full id-preserving form.
        Space::from_json(space_json).map_err(|e| StoreError::Space(e.to_string()))?
    } else {
        // v1/v2 stored name-canonical metadata; rebuilding re-interns names,
        // which matches the saved ids whenever name order and first-mention
        // order agree (true for the spaces that era's tooling produced).
        SpaceMetadata::from_json(space_json)
            .map_err(|e| StoreError::Space(e.to_string()))?
            .build()
            .map_err(|e| StoreError::Space(e.to_string()))?
    };

    let validity = ValidityConfig {
        default_delta: d.i64()?,
        min_delta: d.i64()?,
        max_delta: d.i64()?,
        percentile: f64::from_bits(d.u64()?),
        min_samples: d.u64()? as usize,
    };
    let span = d.i64()?;
    if span < 1 {
        return Err(StoreError::Corrupt(format!("segment span {span} < 1")));
    }
    let next_event_id = d.u64()?;

    let device_count = d.u32()? as usize;
    let mut devices = Vec::with_capacity(device_count.min(1 << 20));
    for idx in 0..device_count {
        let mac_len = d.u16()? as usize;
        let mac = MacAddress::parse(d.str(mac_len)?)
            .map_err(|e| StoreError::Corrupt(format!("device {idx}: {e}")))?;
        let delta = d.i64()?;
        devices.push(Device::new(DeviceId::new(idx as u32), mac, delta));
    }

    let mut timelines = Vec::with_capacity(device_count.min(1 << 20));
    for idx in 0..device_count {
        let mut timeline = DeviceTimeline::new(span);
        let segment_count = d.u32()? as usize;
        let mut prev_bucket = i64::MIN;
        for _ in 0..segment_count {
            let bucket = d.i64()?;
            if bucket <= prev_bucket {
                return Err(StoreError::Corrupt(format!(
                    "device {idx}: segment buckets out of order ({prev_bucket} then {bucket})"
                )));
            }
            prev_bucket = bucket;
            let event_count = d.u32()? as usize;
            if event_count == 0 {
                return Err(StoreError::Corrupt(format!(
                    "device {idx}: empty segment {bucket}"
                )));
            }
            let mut prev_t = i64::MIN;
            for _ in 0..event_count {
                let id = EventId::new(d.u64()?);
                let t = d.i64()?;
                let ap = AccessPointId::new(d.u32()?);
                if t.div_euclid(span) != bucket {
                    return Err(StoreError::Corrupt(format!(
                        "device {idx}: event {id} at t={t} outside segment bucket {bucket}"
                    )));
                }
                if t < prev_t {
                    return Err(StoreError::Corrupt(format!(
                        "device {idx}: events out of order inside segment {bucket}"
                    )));
                }
                prev_t = t;
                timeline.push(StoredEvent::new(id, t, ap));
            }
        }
        timelines.push(timeline);
    }
    // Version 1 predates the co-location index section; it rebuilds on load.
    let index = if version >= 2 {
        match d.take(1)?[0] {
            0 => None,
            1 => Some(decode_index(
                &mut d,
                span,
                device_count,
                space.num_access_points(),
            )?),
            mode => {
                return Err(StoreError::Corrupt(format!(
                    "unknown index mode byte {mode}"
                )));
            }
        }
    } else {
        None
    };
    if !d.done() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after payload",
            payload.len() - d.pos
        )));
    }
    EventStore::from_snapshot_parts(
        space,
        validity,
        span,
        next_event_id,
        devices,
        timelines,
        index,
    )
}

// ---------------------------------------------------------------------------
// Public surface on EventStore
// ---------------------------------------------------------------------------

impl EventStore {
    /// Encodes the store as a snapshot byte buffer (header + checksummed
    /// payload), with the default rebuild-on-load index mode.
    pub fn to_snapshot_bytes(&self) -> Result<Vec<u8>, StoreError> {
        self.to_snapshot_bytes_with(SnapshotIndexMode::default())
    }

    /// [`EventStore::to_snapshot_bytes`] with an explicit co-location index
    /// mode (see [`SnapshotIndexMode`]).
    pub fn to_snapshot_bytes_with(&self, mode: SnapshotIndexMode) -> Result<Vec<u8>, StoreError> {
        let payload = encode_payload(self, mode)?;
        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Decodes a snapshot produced by [`EventStore::to_snapshot_bytes`] (any
    /// version from [`MIN_SNAPSHOT_VERSION`] to [`SNAPSHOT_VERSION`]).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut d = Decoder::new(bytes);
        let magic = d.take(8).map_err(|_| StoreError::NotASnapshot)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(StoreError::NotASnapshot);
        }
        let version = d.u32()?;
        if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let expected = d.u64()?;
        let payload_len = d.u64()? as usize;
        let payload = d.take(payload_len)?;
        let actual = fnv1a(payload);
        if actual != expected {
            return Err(StoreError::ChecksumMismatch { expected, actual });
        }
        decode_payload(payload, version)
    }

    /// Writes the snapshot to a writer.
    pub fn write_snapshot(&self, writer: &mut impl Write) -> Result<(), StoreError> {
        let bytes = self.to_snapshot_bytes()?;
        writer.write_all(&bytes)?;
        Ok(())
    }

    /// Reads a snapshot from a reader (the input is buffered fully; snapshots
    /// are single files sized well below the store they decode into).
    pub fn read_snapshot(reader: &mut impl Read) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Self::from_snapshot_bytes(&bytes)
    }

    /// Saves the store as a snapshot file (rebuild-on-load index mode).
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.save_snapshot_with(path, SnapshotIndexMode::default())
    }

    /// Saves the store as a snapshot file with an explicit index mode.
    ///
    /// The write is atomic: the bytes go to a temporary file in the same
    /// directory which is renamed over `path` only after a successful
    /// `fsync`, so a crash mid-save never destroys an existing good snapshot.
    pub fn save_snapshot_with(
        &self,
        path: impl AsRef<Path>,
        mode: SnapshotIndexMode,
    ) -> Result<(), StoreError> {
        let bytes = self.to_snapshot_bytes_with(mode)?;
        write_atomic(path.as_ref(), &bytes)
    }

    /// Loads a store from a snapshot file.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        Self::from_snapshot_bytes(&bytes)
    }
}

/// Atomically replaces `path` with `bytes`: writes a temporary file in the
/// same directory, fsyncs it, and renames it into place — so a crash at any
/// point leaves either the old file or the new one, never a truncated mix.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    write_atomic_io(path, bytes, &crate::io::RealIo)
}

/// [`write_atomic`] with an explicit storage backend so chaos tests can fault
/// the write, the fsync, or the commit rename. Whatever fails, `path` still
/// holds either the old bytes or the new ones — the temporary is cleaned up
/// and a stale one is ignored by every reader (exact-name lookups only).
pub(crate) fn write_atomic_io(
    path: &Path,
    bytes: &[u8],
    io: &dyn crate::io::StorageIo,
) -> Result<(), StoreError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Corrupt(format!("invalid snapshot path {}", path.display())))?;
    let tmp = match dir {
        Some(dir) => dir.join(format!(".{file_name}.tmp-{}", std::process::id())),
        None => std::path::PathBuf::from(format!(".{file_name}.tmp-{}", std::process::id())),
    };
    let write = (|| -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        io.write_all(&mut file, bytes)?;
        io.sync_all(&file)?;
        Ok(())
    })();
    if let Err(err) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(StoreError::Io(err));
    }
    if let Err(err) = io.rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(StoreError::Io(err));
    }
    // Persist the rename itself where the filesystem requires it.
    if let Some(dir) = dir {
        if let Ok(handle) = std::fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::SpaceBuilder;

    fn sample_store() -> EventStore {
        let space = SpaceBuilder::new("snap-test")
            .add_access_point("wap1", &["r1", "r2"])
            .add_access_point("wap2", &["r2", "r3"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space).with_segment_span(1_000);
        store.ingest_raw("aa:bb:cc:dd:ee:01", 100, "wap1").unwrap();
        store.ingest_raw("aa:bb:cc:dd:ee:02", 150, "wap2").unwrap();
        store
            .ingest_raw("aa:bb:cc:dd:ee:01", 2_500, "wap2")
            .unwrap();
        store.ingest_raw("aa:bb:cc:dd:ee:01", 900, "wap1").unwrap(); // out of order
        store.estimate_deltas();
        store
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let store = sample_store();
        let bytes = store.to_snapshot_bytes().unwrap();
        let back = EventStore::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back, store);
        // And the re-encoded snapshot is byte-identical too.
        assert_eq!(back.to_snapshot_bytes().unwrap(), bytes);
    }

    #[test]
    fn io_roundtrip_through_writer_and_file() {
        let store = sample_store();
        let mut buf: Vec<u8> = Vec::new();
        store.write_snapshot(&mut buf).unwrap();
        let back = EventStore::read_snapshot(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back, store);

        let path = std::env::temp_dir().join(format!("locater-snap-{}.bin", std::process::id()));
        store.save_snapshot(&path).unwrap();
        let back = EventStore::load_snapshot(&path).unwrap();
        assert_eq!(back, store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn embedded_index_roundtrip_is_bit_identical() {
        let store = sample_store();
        let bytes = store
            .to_snapshot_bytes_with(SnapshotIndexMode::Embedded)
            .unwrap();
        assert!(
            bytes.len() > store.to_snapshot_bytes().unwrap().len(),
            "the embedded index section must actually be written"
        );
        let back = EventStore::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back, store);
        // Re-encoding in the same mode is deterministic.
        assert_eq!(
            back.to_snapshot_bytes_with(SnapshotIndexMode::Embedded)
                .unwrap(),
            bytes
        );
        // A structurally invalid index section is caught even when the
        // checksum is "right": blow up the last posting timestamp (it lands
        // outside its bucket) and re-checksum.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 4;
        corrupt[last] ^= 0x01;
        let checksum = super::fnv1a(&corrupt[28..]);
        corrupt[12..20].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            EventStore::from_snapshot_bytes(&corrupt),
            Err(StoreError::Corrupt(_))
        ));
    }

    /// The current payload with the space section swapped back to the
    /// v1/v2-era `SpaceMetadata` blob (everything after it is unchanged).
    fn legacy_payload(store: &EventStore) -> Vec<u8> {
        let current = store.to_snapshot_bytes().unwrap();
        let payload = &current[28..];
        let space_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
        let meta_json = SpaceMetadata::from_space(store.space()).to_json().unwrap();
        let mut out = Vec::new();
        out.extend_from_slice(&(meta_json.len() as u32).to_le_bytes());
        out.extend_from_slice(meta_json.as_bytes());
        out.extend_from_slice(&payload[4 + space_len..]);
        out
    }

    fn frame(version: u32, payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend_from_slice(&super::fnv1a(payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn version_1_snapshots_without_index_section_still_load() {
        // A v1 snapshot is the legacy (metadata-space) rebuild-mode payload
        // minus the trailing mode byte. Craft one and check it decodes
        // identically.
        let store = sample_store();
        let mut payload = legacy_payload(&store);
        payload.pop(); // strip mode byte
        let back = EventStore::from_snapshot_bytes(&frame(1, &payload)).unwrap();
        assert_eq!(back, store, "v1 snapshots rebuild the index on load");
    }

    #[test]
    fn version_2_snapshots_with_metadata_space_still_load() {
        // v2 kept the mode byte but stored the space as name-canonical
        // metadata rather than the id-preserving v3 form.
        let store = sample_store();
        let payload = legacy_payload(&store);
        let back = EventStore::from_snapshot_bytes(&frame(2, &payload)).unwrap();
        assert_eq!(back, store, "v2 snapshots rebuild the space from metadata");
    }

    #[test]
    fn unknown_index_mode_byte_is_corrupt() {
        let store = sample_store();
        let mut bytes = store.to_snapshot_bytes().unwrap();
        // The mode byte is the last payload byte; patch it and re-checksum.
        let last = bytes.len() - 1;
        bytes[last] = 7;
        let checksum = super::fnv1a(&bytes[28..]);
        bytes[12..20].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            EventStore::from_snapshot_bytes(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_magic_is_not_a_snapshot() {
        let mut bytes = sample_store().to_snapshot_bytes().unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            EventStore::from_snapshot_bytes(&bytes),
            Err(StoreError::NotASnapshot)
        ));
        assert!(matches!(
            EventStore::from_snapshot_bytes(b"tiny"),
            Err(StoreError::NotASnapshot)
        ));
    }

    #[test]
    fn unsupported_version_is_reported() {
        let mut bytes = sample_store().to_snapshot_bytes().unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            EventStore::from_snapshot_bytes(&bytes),
            Err(StoreError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        ));
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let bytes = sample_store().to_snapshot_bytes().unwrap();
        // Truncated mid-payload: the header's declared length cannot be read.
        let cut = &bytes[..bytes.len() - 7];
        assert!(matches!(
            EventStore::from_snapshot_bytes(cut),
            Err(StoreError::Truncated { .. })
        ));
        // A flipped payload byte fails the checksum.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(matches!(
            EventStore::from_snapshot_bytes(&corrupt),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn huge_declared_lengths_error_instead_of_panicking() {
        // A crafted header declaring a near-u64::MAX payload length must not
        // overflow the decoder's cursor arithmetic.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // checksum
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd length
        assert!(matches!(
            EventStore::from_snapshot_bytes(&bytes),
            Err(StoreError::Truncated { .. })
        ));
        // Same inside the payload: a huge space-JSON length field.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&super::fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            EventStore::from_snapshot_bytes(&bytes),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_device_identifiers_fail_at_write_time() {
        // MacAddress accepts arbitrary opaque identifiers, so a 70k-byte one is
        // reachable from input files; the u16 length field cannot carry it and
        // encoding must refuse rather than write a corrupt-but-checksummed file.
        let space = SpaceBuilder::new("long-mac")
            .add_access_point("wap1", &["r1"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        let huge_mac = "x".repeat(70_000);
        store.ingest_raw(&huge_mac, 100, "wap1").unwrap();
        assert!(matches!(
            store.to_snapshot_bytes(),
            Err(StoreError::Unencodable(_))
        ));
    }

    #[test]
    fn empty_store_roundtrips() {
        let space = SpaceBuilder::new("empty")
            .add_access_point("wap1", &["r1"])
            .build()
            .unwrap();
        let store = EventStore::new(space);
        let back = EventStore::from_snapshot_bytes(&store.to_snapshot_bytes().unwrap()).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.num_events(), 0);
    }
}
