//! Time-partitioned per-device timelines.
//!
//! A [`DeviceTimeline`] holds one device's events split into time-bucketed
//! [`Segment`]s of a fixed span (one week by default): events arriving in
//! timestamp order land in the newest segment — the *head* — and a segment is
//! *sealed* (never touched again on the fast path) as soon as an event for a
//! later bucket arrives. Window queries first prune whole segments by their
//! time bounds and only then binary-search inside the one or two boundary
//! segments, so a query over an 8-week history window on a device with a year
//! of data never looks at the other ten months.
//!
//! The concatenation of the segments is, by construction, exactly the dense
//! time-sorted sequence the pre-segmented store kept: equal timestamps share a
//! bucket, and within a bucket [`EventSeq::push`] preserves insertion order, so
//! every global-index-based algorithm (validity lookups, gap detection) behaves
//! bit-identically to the flat representation.

use locater_events::{gap_between, EventSeq, Gap, Interval, StoredEvent, Timestamp};

/// Default segment span: one week of seconds. Chosen so the paper's 8-week
/// training history touches ~9 segments while a year of data holds ~52.
pub const DEFAULT_SEGMENT_SPAN: Timestamp = locater_events::SECONDS_PER_WEEK;

/// One immutable-once-sealed time bucket of a device's history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    bucket: i64,
    events: EventSeq,
}

impl Segment {
    fn new(bucket: i64, event: StoredEvent) -> Self {
        let mut events = EventSeq::new();
        events.push(event);
        Self { bucket, events }
    }

    /// The bucket index (`t.div_euclid(span)`) all events of this segment share.
    pub fn bucket(&self) -> i64 {
        self.bucket
    }

    /// The events of the segment, time-sorted.
    pub fn events(&self) -> &[StoredEvent] {
        self.events.events()
    }

    /// Number of events in the segment.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the segment holds no events (never the case inside a timeline).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the first event (segments are never empty inside a timeline).
    pub fn min_t(&self) -> Timestamp {
        self.events.first().map(|e| e.t).unwrap_or(Timestamp::MAX)
    }

    /// Timestamp of the last event.
    pub fn max_t(&self) -> Timestamp {
        self.events.last().map(|e| e.t).unwrap_or(Timestamp::MIN)
    }
}

/// A device's event history as a run of time-bucketed segments.
///
/// The last segment is the mutable *head*; earlier segments are sealed. All
/// read APIs present the concatenated, globally time-sorted view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceTimeline {
    span: Timestamp,
    /// Segments sorted by bucket; the last one is the head.
    segments: Vec<Segment>,
    /// Global index of each segment's first event (`starts[i] = Σ len(segments[..i])`).
    starts: Vec<usize>,
    len: usize,
}

impl Default for DeviceTimeline {
    fn default() -> Self {
        Self::new(DEFAULT_SEGMENT_SPAN)
    }
}

impl DeviceTimeline {
    /// Creates an empty timeline with the given segment span in seconds.
    pub fn new(span: Timestamp) -> Self {
        Self {
            span: span.max(1),
            segments: Vec::new(),
            starts: Vec::new(),
            len: 0,
        }
    }

    /// The segment span in seconds.
    pub fn segment_span(&self) -> Timestamp {
        self.span
    }

    /// Total number of events across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the device has no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The segments, oldest first. The last one is the mutable head.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The mutable head segment (the newest bucket seen so far), if any.
    pub fn head(&self) -> Option<&Segment> {
        self.segments.last()
    }

    fn bucket_of(&self, t: Timestamp) -> i64 {
        t.div_euclid(self.span)
    }

    /// Index of the first segment with an event after `at` — i.e.
    /// `partition_point(|s| s.max_t() <= at)` — found by bucket-id arithmetic:
    /// the binary search only reads the inline bucket ids (no dereference into
    /// the event vectors), and at most the one segment sharing `at`'s bucket
    /// is inspected.
    fn seg_after(&self, at: Timestamp) -> usize {
        let target = self.bucket_of(at);
        let idx = self.segments.partition_point(|s| s.bucket < target);
        match self.segments.get(idx) {
            Some(s) if s.bucket == target && s.max_t() <= at => idx + 1,
            _ => idx,
        }
    }

    /// Like [`DeviceTimeline::seg_after`] for the strict bound:
    /// `partition_point(|s| s.max_t() < at)`.
    fn seg_from(&self, at: Timestamp) -> usize {
        let target = self.bucket_of(at);
        let idx = self.segments.partition_point(|s| s.bucket < target);
        match self.segments.get(idx) {
            Some(s) if s.bucket == target && s.max_t() < at => idx + 1,
            _ => idx,
        }
    }

    /// Appends an event. Events arriving in timestamp order go to the head
    /// segment in O(1); an event for a later bucket seals the head and opens a
    /// new one; rare out-of-order events are spliced into their owning bucket.
    pub fn push(&mut self, event: StoredEvent) {
        let bucket = self.bucket_of(event.t);
        match self.segments.last_mut() {
            None => {
                self.segments.push(Segment::new(bucket, event));
                self.starts.push(0);
            }
            Some(head) if bucket == head.bucket => head.events.push(event),
            Some(head) if bucket > head.bucket => {
                self.starts.push(self.len);
                self.segments.push(Segment::new(bucket, event));
            }
            Some(_) => {
                // Out-of-order arrival into a sealed bucket.
                let idx = self.segments.partition_point(|s| s.bucket < bucket);
                if idx < self.segments.len() && self.segments[idx].bucket == bucket {
                    self.segments[idx].events.push(event);
                } else {
                    self.segments.insert(idx, Segment::new(bucket, event));
                    self.starts.insert(idx, 0);
                }
                for (i, start) in self.starts.iter_mut().enumerate() {
                    if i > idx {
                        *start += 1;
                    }
                }
                // A freshly inserted segment inherits the start of its successor.
                if self.segments[idx].len() == 1 {
                    self.starts[idx] = if idx == 0 {
                        0
                    } else {
                        self.starts[idx - 1] + self.segments[idx - 1].len()
                    };
                }
            }
        }
        self.len += 1;
    }

    /// The event at global index `idx` (0-based, time order).
    pub fn get(&self, idx: usize) -> Option<&StoredEvent> {
        if idx >= self.len {
            return None;
        }
        let seg = self.starts.partition_point(|&s| s <= idx) - 1;
        self.segments[seg].events().get(idx - self.starts[seg])
    }

    /// Number of events with `t <= at` (a global partition point).
    pub fn partition_le(&self, at: Timestamp) -> usize {
        let seg = self.seg_after(at);
        if seg == self.segments.len() {
            return self.len;
        }
        self.starts[seg] + self.segments[seg].events().partition_point(|e| e.t <= at)
    }

    /// Number of events with `t < at`.
    pub fn partition_lt(&self, at: Timestamp) -> usize {
        let seg = self.seg_from(at);
        if seg == self.segments.len() {
            return self.len;
        }
        self.starts[seg] + self.segments[seg].events().partition_point(|e| e.t < at)
    }

    /// First event, if any.
    pub fn first(&self) -> Option<&StoredEvent> {
        self.segments.first().and_then(|s| s.events.first())
    }

    /// Last event, if any.
    pub fn last(&self) -> Option<&StoredEvent> {
        self.segments.last().and_then(|s| s.events.last())
    }

    /// Time span `[first.t, last.t]` covered by the device, if non-empty.
    pub fn span(&self) -> Option<Interval> {
        match (self.first(), self.last()) {
            (Some(f), Some(l)) => Some(Interval::new(f.t, l.t + 1)),
            _ => None,
        }
    }

    /// Iterates over all events in time order, across segments.
    pub fn iter(&self) -> TimelineIter<'_> {
        TimelineIter {
            current: [].iter(),
            rest: self.segments.iter(),
        }
    }

    /// Iterates over the events starting at global index `from` (time order).
    pub fn iter_from(&self, from: usize) -> TimelineIter<'_> {
        if from >= self.len {
            return TimelineIter {
                current: [].iter(),
                rest: [].iter(),
            };
        }
        let seg = self.starts.partition_point(|&s| s <= from) - 1;
        TimelineIter {
            current: self.segments[seg].events()[from - self.starts[seg]..].iter(),
            rest: self.segments[seg + 1..].iter(),
        }
    }

    /// Events with `t` in `[range.start, range.end)` — segments that do not
    /// overlap the range are pruned before any per-event work happens.
    pub fn in_range(&self, range: Interval) -> EventsInRange<'_> {
        let first = self.seg_from(range.start);
        EventsInRange {
            range,
            current: [].iter(),
            rest: self.segments[first..].iter(),
        }
    }

    /// The event whose validity interval covers `at` (with its global index),
    /// mirroring [`EventSeq::covering_event`] — only the segments around `at`
    /// are consulted.
    ///
    /// Only the three events around the partition point can be involved, so
    /// they are fetched with **one** segment lookup (plus at most one step
    /// into each adjacent segment) instead of repeated global-index searches
    /// — this runs once per nearby device on every neighbor scan.
    pub fn covering_event(&self, at: Timestamp, delta: Timestamp) -> Option<(usize, StoredEvent)> {
        if self.len == 0 {
            return None;
        }
        // The partition point `pos` (count of events with `t <= at`) and the
        // events at pos − 1, pos and pos + 1, located with one segment search.
        let seg = self.seg_after(at);
        let (pos, curr, next, prev) = if seg == self.segments.len() {
            (self.len, None, None, self.last())
        } else {
            let events = self.segments[seg].events();
            let off = events.partition_point(|e| e.t <= at);
            debug_assert!(off < events.len(), "segment chosen to contain t > at");
            let next = events
                .get(off + 1)
                .or_else(|| self.segments.get(seg + 1).and_then(|s| s.events().first()));
            let prev = if off > 0 {
                Some(&events[off - 1])
            } else if seg > 0 {
                self.segments[seg - 1].events().last()
            } else {
                None
            };
            (self.starts[seg] + off, Some(&events[off]), next, prev)
        };
        // Validity of an event given its successor: `[t − δ, t + δ)` truncated
        // at the successor (identical to [`DeviceTimeline::validity_interval`]).
        let validity = |event: &StoredEvent, succ: Option<&StoredEvent>| {
            let end = match succ {
                Some(next) => next.t.min(event.t + delta),
                None => event.t + delta,
            };
            Interval::new(event.t - delta, end)
        };
        if let Some(curr) = curr {
            if validity(curr, next).contains(at)
                && prev.is_none_or(|prev| !validity(prev, Some(curr)).contains(at))
            {
                return Some((pos, *curr));
            }
        }
        let prev = prev?;
        if validity(prev, curr).contains(at) {
            Some((pos - 1, *prev))
        } else {
            None
        }
    }

    /// The gap containing `at`, if `at` falls in one — found from the two
    /// events around `at` without scanning history (mirrors
    /// [`locater_events::gap_containing`]).
    pub fn gap_at(&self, at: Timestamp, delta: Timestamp) -> Option<Gap> {
        let pos = self.partition_le(at);
        if pos == 0 || pos >= self.len {
            return None;
        }
        let prev = self.get(pos - 1).expect("pos >= 1");
        let next = self.get(pos).expect("pos < len");
        let gap = gap_between(prev, next, delta)?;
        gap.contains(at).then_some(gap)
    }

    /// All gaps of the device (`GAP(d_i)`), across segment boundaries.
    pub fn gaps(&self, delta: Timestamp) -> Vec<Gap> {
        let mut out = Vec::new();
        let mut prev: Option<&StoredEvent> = None;
        for event in self.iter() {
            if let Some(p) = prev {
                if let Some(gap) = gap_between(p, event, delta) {
                    out.push(gap);
                }
            }
            prev = Some(event);
        }
        out
    }

    /// Gaps whose interval overlaps `window`. Only the consecutive event pairs
    /// that can bound such a gap are visited: a gap `[prev.t + δ, next.t − δ)`
    /// overlaps `window` only if `next.t > window.start + δ` and
    /// `prev.t < window.end − δ`, and both conditions are monotone in the pair
    /// index, so the qualifying pairs form one contiguous, binary-searchable run.
    pub fn gaps_in_window(&self, window: Interval, delta: Timestamp) -> Vec<Gap> {
        if self.len < 2 {
            return Vec::new();
        }
        let lo = self
            .partition_le(window.start.saturating_add(delta))
            .saturating_sub(1);
        let hi = self
            .partition_lt(window.end.saturating_sub(delta))
            .min(self.len - 1);
        if lo >= hi {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut events = self.iter_from(lo);
        let mut prev = events.next().expect("lo < len");
        for next in events.take(hi - lo) {
            if let Some(gap) = gap_between(prev, next, delta) {
                if gap.interval().overlaps(&window) {
                    out.push(gap);
                }
            }
            prev = next;
        }
        out
    }

    /// Evicts every segment whose bucket is `< cut_bucket` (a prefix —
    /// segments are bucket-sorted) and returns them, oldest first. Global
    /// indexes rebase so the surviving events keep consistent positions, and
    /// the freed capacity is released. Buckets partition time uniformly, so
    /// this removes exactly the events with `t < cut_bucket · span`.
    pub fn evict_before_bucket(&mut self, cut_bucket: i64) -> Vec<Segment> {
        let n = self.segments.partition_point(|s| s.bucket < cut_bucket);
        if n == 0 {
            return Vec::new();
        }
        let evicted: Vec<Segment> = self.segments.drain(..n).collect();
        let removed: usize = evicted.iter().map(Segment::len).sum();
        self.starts.drain(..n);
        for start in &mut self.starts {
            *start -= removed;
        }
        self.len -= removed;
        self.segments.shrink_to_fit();
        self.starts.shrink_to_fit();
        evicted
    }

    /// Approximate heap footprint of the timeline in bytes (allocated
    /// capacity across the segment table, the start index and the per-segment
    /// event arrays).
    pub fn approx_bytes(&self) -> usize {
        self.segments.capacity() * std::mem::size_of::<Segment>()
            + self.starts.capacity() * std::mem::size_of::<usize>()
            + self
                .segments
                .iter()
                .map(|s| s.events.approx_bytes())
                .sum::<usize>()
    }

    /// Materializes the timeline into one contiguous [`EventSeq`] (mainly for
    /// tests and format conversions; queries should use the segment-pruned
    /// accessors instead).
    pub fn to_seq(&self) -> EventSeq {
        let mut seq = EventSeq::new();
        for event in self.iter() {
            seq.push(*event);
        }
        seq
    }
}

impl<'a> IntoIterator for &'a DeviceTimeline {
    type Item = &'a StoredEvent;
    type IntoIter = TimelineIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over all events of a [`DeviceTimeline`], in time order.
#[derive(Debug, Clone)]
pub struct TimelineIter<'a> {
    current: std::slice::Iter<'a, StoredEvent>,
    rest: std::slice::Iter<'a, Segment>,
}

impl<'a> Iterator for TimelineIter<'a> {
    type Item = &'a StoredEvent;

    fn next(&mut self) -> Option<&'a StoredEvent> {
        loop {
            if let Some(event) = self.current.next() {
                return Some(event);
            }
            self.current = self.rest.next()?.events().iter();
        }
    }
}

/// Segment-pruned iterator over the events of a [`DeviceTimeline`] with
/// timestamps in a half-open range. Cheap to construct (no allocation) and
/// [`Clone`], so window scans can be restarted.
#[derive(Debug, Clone)]
pub struct EventsInRange<'a> {
    range: Interval,
    current: std::slice::Iter<'a, StoredEvent>,
    rest: std::slice::Iter<'a, Segment>,
}

impl<'a> Iterator for EventsInRange<'a> {
    type Item = &'a StoredEvent;

    fn next(&mut self) -> Option<&'a StoredEvent> {
        loop {
            if let Some(event) = self.current.next() {
                return Some(event);
            }
            let segment = self.rest.next()?;
            if segment.min_t() >= self.range.end {
                // Segments are time-ordered: nothing later can overlap.
                self.rest = [].iter();
                return None;
            }
            self.current = segment.events.in_range(self.range).iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_events::{EventId, StoredEvent};
    use locater_space::AccessPointId;

    fn ev(id: u64, t: Timestamp, ap: u32) -> StoredEvent {
        StoredEvent::new(EventId::new(id), t, AccessPointId::new(ap))
    }

    fn timeline(span: Timestamp, ts: &[Timestamp]) -> DeviceTimeline {
        let mut tl = DeviceTimeline::new(span);
        for (i, &t) in ts.iter().enumerate() {
            tl.push(ev(i as u64, t, (i % 3) as u32));
        }
        tl
    }

    #[test]
    fn in_order_appends_seal_completed_buckets() {
        let tl = timeline(100, &[10, 20, 150, 420]);
        assert_eq!(tl.num_segments(), 3);
        assert_eq!(tl.segments()[0].bucket(), 0);
        assert_eq!(tl.segments()[1].bucket(), 1);
        assert_eq!(tl.segments()[2].bucket(), 4);
        assert_eq!(tl.head().unwrap().bucket(), 4);
        assert_eq!(tl.len(), 4);
        let ts: Vec<Timestamp> = tl.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![10, 20, 150, 420]);
    }

    #[test]
    fn out_of_order_events_splice_into_their_bucket() {
        let mut tl = timeline(100, &[10, 250, 420]);
        tl.push(ev(9, 150, 0)); // sealed-bucket insert (new middle segment)
        tl.push(ev(10, 20, 1)); // sealed-bucket insert (existing segment)
        let ts: Vec<Timestamp> = tl.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![10, 20, 150, 250, 420]);
        assert_eq!(tl.num_segments(), 4);
        // Global indexing stays consistent after the splices.
        for (i, t) in [10, 20, 150, 250, 420].iter().enumerate() {
            assert_eq!(tl.get(i).unwrap().t, *t);
        }
        assert_eq!(tl.get(5), None);
    }

    #[test]
    fn matches_flat_eventseq_for_any_order() {
        let ts = [500i64, 10, 10, 700, 10, 320, 320, 9_000, 4, 4, 4];
        let mut tl = DeviceTimeline::new(250);
        let mut seq = EventSeq::new();
        for (i, &t) in ts.iter().enumerate() {
            tl.push(ev(i as u64, t, (i % 2) as u32));
            seq.push(ev(i as u64, t, (i % 2) as u32));
        }
        assert_eq!(tl.to_seq(), seq);
        // Global partition points agree with the flat representation.
        for probe in [-5, 0, 4, 10, 11, 320, 5_000, 10_000] {
            assert_eq!(
                tl.partition_le(probe),
                seq.events().partition_point(|e| e.t <= probe)
            );
            assert_eq!(
                tl.partition_lt(probe),
                seq.events().partition_point(|e| e.t < probe)
            );
        }
    }

    #[test]
    fn in_range_prunes_but_agrees_with_filter() {
        let tl = timeline(100, &[10, 20, 150, 420, 421, 999]);
        let window = Interval::new(15, 421);
        let got: Vec<Timestamp> = tl.in_range(window).map(|e| e.t).collect();
        assert_eq!(got, vec![20, 150, 420]);
        assert!(tl.in_range(Interval::new(2_000, 3_000)).next().is_none());
        assert_eq!(tl.in_range(Interval::new(0, 10_000)).count(), 6);
    }

    #[test]
    fn covering_and_gap_cross_segment_boundaries() {
        // Events in different buckets: 90 and 410 with δ = 50.
        let tl = timeline(100, &[90, 410]);
        let (idx, e) = tl.covering_event(100, 50).unwrap();
        assert_eq!((idx, e.t), (0, 90));
        let (idx, e) = tl.covering_event(370, 50).unwrap();
        assert_eq!((idx, e.t), (1, 410));
        assert!(tl.covering_event(250, 50).is_none());
        let gap = tl.gap_at(250, 50).unwrap();
        assert_eq!((gap.prev_t, gap.next_t), (90, 410));
        assert_eq!((gap.start, gap.end), (140, 360));
        assert!(tl.gap_at(100, 50).is_none());
        assert!(tl.gap_at(-10, 50).is_none());
        assert!(tl.gap_at(10_000, 50).is_none());
        assert_eq!(tl.gaps(50).len(), 1);
    }

    #[test]
    fn windowed_gaps_match_full_scan() {
        let tl = timeline(1_000, &[0, 100, 5_000, 5_050, 12_000, 40_000, 40_100]);
        let delta = 200;
        let all = tl.gaps(delta);
        for window in [
            Interval::new(0, 60_000),
            Interval::new(4_000, 6_000),
            Interval::new(300, 301),
            Interval::new(13_000, 39_000),
            Interval::new(-500, 50),
            Interval::new(60_000, 70_000),
        ] {
            let expect: Vec<Gap> = all
                .iter()
                .filter(|g| g.interval().overlaps(&window))
                .copied()
                .collect();
            assert_eq!(
                tl.gaps_in_window(window, delta),
                expect,
                "window {window:?}"
            );
        }
    }

    #[test]
    fn empty_timeline_answers_are_empty() {
        let tl = DeviceTimeline::default();
        assert!(tl.is_empty());
        assert_eq!(tl.len(), 0);
        assert!(tl.head().is_none());
        assert!(tl.first().is_none() && tl.last().is_none());
        assert!(tl.span().is_none());
        assert!(tl.covering_event(5, 10).is_none());
        assert!(tl.gap_at(5, 10).is_none());
        assert!(tl.gaps(10).is_empty());
        assert!(tl.gaps_in_window(Interval::new(0, 100), 10).is_empty());
        assert_eq!(tl.iter().count(), 0);
        assert_eq!(tl.segment_span(), DEFAULT_SEGMENT_SPAN);
    }

    #[test]
    fn evict_before_bucket_rebases_global_indexes() {
        let mut tl = timeline(100, &[10, 20, 150, 420, 421, 999]);
        let evicted = tl.evict_before_bucket(4);
        assert_eq!(evicted.len(), 2);
        let old: Vec<Timestamp> = evicted
            .iter()
            .flat_map(|s| s.events().iter().map(|e| e.t))
            .collect();
        assert_eq!(old, vec![10, 20, 150]);
        assert_eq!(tl.len(), 3);
        let ts: Vec<Timestamp> = tl.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![420, 421, 999]);
        // Global indexing, partition points and window scans stay consistent.
        assert_eq!(tl.get(0).unwrap().t, 420);
        assert_eq!(tl.get(2).unwrap().t, 999);
        assert_eq!(tl.partition_le(421), 2);
        assert_eq!(tl.partition_lt(999), 2);
        let got: Vec<Timestamp> = tl
            .in_range(Interval::new(421, 1_000))
            .map(|e| e.t)
            .collect();
        assert_eq!(got, vec![421, 999]);
        // Nothing below the cut: a second eviction at the same cut is a no-op.
        assert!(tl.evict_before_bucket(4).is_empty());
        // Evicting everything empties the timeline.
        assert_eq!(tl.evict_before_bucket(i64::MAX).len(), 2);
        assert!(tl.is_empty());
        assert_eq!(tl.iter().count(), 0);
    }

    #[test]
    fn negative_buckets_are_supported() {
        // Timestamps below zero bucket via div_euclid (snapshot loads may carry
        // synthetic negative probes even though ingestion rejects them).
        let tl = timeline(100, &[-250, -50, 70]);
        assert_eq!(tl.segments()[0].bucket(), -3);
        let ts: Vec<Timestamp> = tl.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![-250, -50, 70]);
    }
}
