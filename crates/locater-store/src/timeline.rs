//! Global timeline index over all connectivity events.
//!
//! The fine-grained localization algorithm needs, for a query `(d_i, t_q)`, the set of
//! *neighbor devices*: devices that are online around `t_q` in regions overlapping the
//! queried device's region (paper §4.2). The [`Timeline`] answers "which devices were
//! connected in `[t_q − slack, t_q + slack]`, and to which AP?" with one binary search
//! plus a short range scan.

use locater_events::{Device, DeviceId, EventId, Timestamp};
use locater_space::{AccessPointId, RegionId};
use serde::{Deserialize, Serialize};

/// One entry of the global timeline: a device connected to an AP at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Event timestamp.
    pub t: Timestamp,
    /// Device that produced the event.
    pub device: DeviceId,
    /// Id of the event (breaks `(t, device)` ties canonically).
    pub id: EventId,
    /// Access point that logged it.
    pub ap: AccessPointId,
}

/// A device observed near a probe time, with its closest event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NearbyDevice {
    /// The device.
    pub device: DeviceId,
    /// Access point of the event closest to the probe time.
    pub ap: AccessPointId,
    /// Timestamp of that closest event.
    pub t: Timestamp,
}

/// Time-sorted index of all events of all devices.
///
/// Entries are kept in **canonical `(t, device, id)` order**: ties at the same
/// timestamp are ordered by device id, and ties of the *same* device at the
/// same timestamp by event id. This makes the index — and everything derived
/// from it, most importantly the neighbor order of
/// [`Timeline::devices_near`] — a pure function of the event *set*, independent
/// of the interleaving the events arrived in (backfill included). That
/// representation transparency is what lets a sharded deployment (per-device
/// partitioned stores, see [`crate::ShardedRead`]) reproduce the answers of a
/// single store bit for bit, and what makes late/out-of-order ingest safe.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

/// The canonical ordering key of a timeline entry: time, device id, event id.
#[inline]
fn entry_key(entry: &TimelineEntry) -> (Timestamp, DeviceId, EventId) {
    (entry.t, entry.device, entry.id)
}

/// Scans canonically ordered timeline entries and reports each device once with
/// its event closest to `around` (earlier event wins exact-distance ties).
/// Shared by [`Timeline::devices_near`] and the multi-shard merged view so the
/// two can never diverge.
pub(crate) fn devices_near_in<'a>(
    window: impl IntoIterator<Item = &'a TimelineEntry>,
    around: Timestamp,
    exclude: Option<DeviceId>,
) -> Vec<NearbyDevice> {
    let mut best: Vec<NearbyDevice> = Vec::new();
    // Slot of each device in `best` (dense device ids index directly), so the
    // dedup/closest pass stays O(1) per entry instead of rescanning `best` —
    // the window of a busy building holds thousands of entries, and the old
    // linear probe made this scan quadratic. Insertion order — the canonical
    // first-event order — is unchanged.
    const NO_SLOT: u32 = u32::MAX;
    let mut slot_of: Vec<u32> = Vec::new();
    for entry in window {
        if Some(entry.device) == exclude {
            continue;
        }
        let idx = entry.device.index();
        if idx >= slot_of.len() {
            slot_of.resize(idx + 1, NO_SLOT);
        }
        match slot_of[idx] {
            NO_SLOT => {
                slot_of[idx] = best.len() as u32;
                best.push(NearbyDevice {
                    device: entry.device,
                    ap: entry.ap,
                    t: entry.t,
                });
            }
            slot => {
                let existing = &mut best[slot as usize];
                if (entry.t - around).abs() < (existing.t - around).abs() {
                    existing.ap = entry.ap;
                    existing.t = entry.t;
                }
            }
        }
    }
    best
}

/// Scans canonically ordered timeline entries (a window of `[at − slack,
/// at + slack]` with `slack` the global max δ) and reports every device with a
/// *covering* event at `at`, paired with that event's region — the shared fast
/// path behind [`crate::EventRead::devices_online_at`] for the store and the
/// multi-shard view.
///
/// Correctness relies on two facts, both property-tested against the
/// reference `devices_near` + `covering_event` composition:
///
/// * a covering event lies within δ ≤ slack of `at`, so only the device's
///   nearest past and nearest future events **inside the window** can cover;
/// * validity truncation by a successor event can never exclude `at` itself:
///   the successor of the nearest past event is the nearest future event (or
///   lies beyond the window), and both are strictly after `at`.
///
/// The covering event is the nearest past event when it covers (`at − t < δ`),
/// else the nearest future event when that covers (`t − at ≤ δ` — the validity
/// interval is closed on the left) — exactly the preference order of
/// [`crate::DeviceTimeline::covering_event`]. Devices are reported in the
/// canonical first-event order of the window, matching the reference.
pub(crate) fn devices_online_in<'a>(
    window: impl IntoIterator<Item = &'a TimelineEntry>,
    at: Timestamp,
    exclude: Option<DeviceId>,
    devices: &[Device],
) -> Vec<(DeviceId, RegionId)> {
    struct Candidate {
        device: DeviceId,
        /// Last window entry with `t <= at` (timestamp, AP).
        past: Option<(Timestamp, AccessPointId)>,
        /// First window entry with `t > at`.
        future: Option<(Timestamp, AccessPointId)>,
    }
    let mut candidates: Vec<Candidate> = Vec::with_capacity(64);
    const NO_SLOT: u32 = u32::MAX;
    // Sized once up front: the entries' device ids are dense indices into the
    // replicated device table.
    let mut slot_of: Vec<u32> = vec![NO_SLOT; devices.len()];
    for entry in window {
        if Some(entry.device) == exclude {
            continue;
        }
        let idx = entry.device.index();
        if idx >= slot_of.len() {
            slot_of.resize(idx + 1, NO_SLOT);
        }
        let slot = match slot_of[idx] {
            NO_SLOT => {
                slot_of[idx] = candidates.len() as u32;
                candidates.push(Candidate {
                    device: entry.device,
                    past: None,
                    future: None,
                });
                candidates.len() - 1
            }
            slot => slot as usize,
        };
        let candidate = &mut candidates[slot];
        if entry.t <= at {
            // Scan order is canonical, so the last such entry wins — the
            // event `partition_le` would find.
            candidate.past = Some((entry.t, entry.ap));
        } else if candidate.future.is_none() {
            candidate.future = Some((entry.t, entry.ap));
        }
    }
    candidates
        .into_iter()
        .filter_map(|candidate| {
            let delta = devices[candidate.device.index()].delta;
            if let Some((t, ap)) = candidate.past {
                // Covers iff `at < min(successor.t, t + δ)`; the successor is
                // after `at`, so only `t + δ` can exclude it.
                if at - t < delta {
                    return Some((candidate.device, ap.region()));
                }
            }
            if let Some((t, ap)) = candidate.future {
                // Validity starts at `t − δ` inclusive.
                if t - at <= delta {
                    return Some((candidate.device, ap.region()));
                }
            }
            None
        })
        .collect()
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records an event, keeping the index in canonical `(t, device, id)`
    /// order. Appends are O(1) when events arrive in canonical order;
    /// out-of-order backfill splices into place.
    pub fn record(&mut self, t: Timestamp, device: DeviceId, id: EventId, ap: AccessPointId) {
        let entry = TimelineEntry { t, device, id, ap };
        let key = entry_key(&entry);
        match self.entries.last() {
            Some(last) if entry_key(last) > key => {
                let pos = self.entries.partition_point(|e| entry_key(e) <= key);
                self.entries.insert(pos, entry);
            }
            _ => self.entries.push(entry),
        }
    }

    /// Drops every entry with `t < cut` (a prefix — entries are time-sorted)
    /// and releases the freed capacity. Returns the number of entries removed.
    pub fn trim_before(&mut self, cut: Timestamp) -> usize {
        let n = self.entries.partition_point(|e| e.t < cut);
        if n > 0 {
            self.entries.drain(..n);
            self.entries.shrink_to_fit();
        }
        n
    }

    /// Approximate heap footprint of the index in bytes (allocated capacity).
    pub fn approx_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<TimelineEntry>()
    }

    /// All entries with `t` in `[from, to)`.
    pub fn range(&self, from: Timestamp, to: Timestamp) -> &[TimelineEntry] {
        let lo = self.entries.partition_point(|e| e.t < from);
        let hi = self.entries.partition_point(|e| e.t < to);
        &self.entries[lo..hi]
    }

    /// Devices observed in `[around − slack, around + slack]`, excluding `exclude`,
    /// each reported once with the event closest in time to `around`. Devices
    /// are listed in the canonical `(t, device)` order of their first event in
    /// the window.
    pub fn devices_near(
        &self,
        around: Timestamp,
        slack: Timestamp,
        exclude: Option<DeviceId>,
    ) -> Vec<NearbyDevice> {
        devices_near_in(
            self.range(around - slack, around + slack + 1),
            around,
            exclude,
        )
    }

    /// Number of events per day index, for statistics.
    pub fn events_per_day(&self) -> std::collections::BTreeMap<i64, usize> {
        let mut out = std::collections::BTreeMap::new();
        for e in &self.entries {
            *out.entry(locater_events::clock::day_index(e.t))
                .or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: Timestamp, d: u32, ap: u32) -> (Timestamp, DeviceId, AccessPointId) {
        (t, DeviceId::new(d), AccessPointId::new(ap))
    }

    fn timeline(entries: &[(Timestamp, DeviceId, AccessPointId)]) -> Timeline {
        let mut tl = Timeline::new();
        for (i, &(t, d, ap)) in entries.iter().enumerate() {
            tl.record(t, d, EventId::new(i as u64), ap);
        }
        tl
    }

    #[test]
    fn record_keeps_sorted_order() {
        let tl = timeline(&[entry(300, 0, 0), entry(100, 1, 1), entry(200, 2, 0)]);
        let ts: Vec<Timestamp> = tl.range(0, 1_000).iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![100, 200, 300]);
        assert_eq!(tl.len(), 3);
        assert!(!tl.is_empty());
    }

    #[test]
    fn range_is_half_open() {
        let tl = timeline(&[entry(100, 0, 0), entry(200, 1, 0), entry(300, 2, 0)]);
        assert_eq!(tl.range(100, 300).len(), 2);
        assert_eq!(tl.range(101, 300).len(), 1);
        assert_eq!(tl.range(400, 500).len(), 0);
    }

    #[test]
    fn devices_near_reports_closest_event_per_device() {
        let tl = timeline(&[
            entry(90, 1, 0),
            entry(110, 1, 2), // closer to 100 than 90? |110-100|=10 < |90-100|=10 → tie, keeps first
            entry(95, 2, 1),
            entry(500, 3, 0),
        ]);
        let near = tl.devices_near(100, 50, None);
        assert_eq!(near.len(), 2);
        let d1 = near.iter().find(|d| d.device == DeviceId::new(1)).unwrap();
        assert_eq!(d1.t, 90); // tie resolved in favour of the first seen
        let d2 = near.iter().find(|d| d.device == DeviceId::new(2)).unwrap();
        assert_eq!(d2.ap, AccessPointId::new(1));
    }

    #[test]
    fn devices_near_excludes_requested_device() {
        let tl = timeline(&[entry(100, 1, 0), entry(100, 2, 1)]);
        let near = tl.devices_near(100, 10, Some(DeviceId::new(1)));
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].device, DeviceId::new(2));
    }

    #[test]
    fn devices_near_picks_nearest_of_multiple_events() {
        let tl = timeline(&[entry(50, 1, 0), entry(98, 1, 3), entry(140, 1, 5)]);
        let near = tl.devices_near(100, 60, None);
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].ap, AccessPointId::new(3));
        assert_eq!(near[0].t, 98);
    }

    #[test]
    fn record_is_order_independent_with_ids() {
        // Same event set, opposite arrival orders → identical indexes.
        let mut forward = Timeline::new();
        let mut backward = Timeline::new();
        let events = [
            (100, 0u32, 0u64, 0u32),
            (100, 0, 1, 2),
            (100, 1, 2, 1),
            (50, 0, 3, 0),
        ];
        for &(t, d, id, ap) in &events {
            forward.record(
                t,
                DeviceId::new(d),
                EventId::new(id),
                AccessPointId::new(ap),
            );
        }
        for &(t, d, id, ap) in events.iter().rev() {
            backward.record(
                t,
                DeviceId::new(d),
                EventId::new(id),
                AccessPointId::new(ap),
            );
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn trim_before_drops_exact_prefix() {
        let mut tl = timeline(&[entry(100, 0, 0), entry(200, 1, 0), entry(300, 2, 0)]);
        assert_eq!(tl.trim_before(200), 1);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.range(0, 1_000).first().unwrap().t, 200);
        assert_eq!(tl.trim_before(1_000), 2);
        assert!(tl.is_empty());
        assert_eq!(tl.trim_before(1_000), 0);
        assert!(tl.approx_bytes() < std::mem::size_of::<TimelineEntry>() * 4);
    }

    #[test]
    fn events_per_day_counts() {
        let day = locater_events::SECONDS_PER_DAY;
        let tl = timeline(&[entry(10, 0, 0), entry(20, 1, 0), entry(day + 5, 0, 0)]);
        let per_day = tl.events_per_day();
        assert_eq!(per_day.get(&0), Some(&2));
        assert_eq!(per_day.get(&1), Some(&1));
    }
}
