//! Property-based tests for the segmented event store.

use locater_events::Interval;
use locater_space::{Space, SpaceBuilder};
use locater_store::{EventRead, EventStore, ShardedRead};
use proptest::prelude::*;

fn space() -> Space {
    SpaceBuilder::new("prop")
        .add_access_point("wap0", &["a", "b"])
        .add_access_point("wap1", &["b", "c"])
        .add_access_point("wap2", &["c", "d"])
        .build()
        .unwrap()
}

fn arb_events() -> impl Strategy<Value = Vec<(u8, i64, u8)>> {
    prop::collection::vec((0u8..6, 0i64..500_000, 0u8..3), 1..150)
}

/// A store with a deliberately small segment span so arbitrary event sets
/// produce many segments (and plenty of cross-segment boundaries).
fn build_store(events: &[(u8, i64, u8)], span: i64) -> EventStore {
    let mut store = EventStore::new(space()).with_segment_span(span);
    for (dev, t, ap) in events {
        store
            .ingest_raw(&format!("device-{dev}"), *t, &format!("wap{ap}"))
            .unwrap();
    }
    store
}

proptest! {
    /// Ingestion never loses events: per-device timeline lengths sum to the total,
    /// every device timeline is globally sorted, and segment bucketing is consistent
    /// with the configured span.
    #[test]
    fn ingestion_preserves_and_sorts_events(events in arb_events(), span in 1_000i64..100_000) {
        let store = build_store(&events, span);
        prop_assert_eq!(store.num_events(), events.len());
        let mut total = 0usize;
        for device in store.devices() {
            let timeline = store.timeline_of(device.id);
            total += timeline.len();
            let ts: Vec<i64> = timeline.iter().map(|e| e.t).collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&ts, &sorted);
            for segment in timeline.segments() {
                prop_assert!(!segment.is_empty());
                for e in segment.events() {
                    prop_assert_eq!(e.t.div_euclid(span), segment.bucket());
                }
            }
        }
        prop_assert_eq!(total, events.len());
    }

    /// The segmented representation is invisible to readers: window queries and
    /// windowed gap detection agree exactly with brute-force filters over the full
    /// history.
    #[test]
    fn segment_pruned_queries_match_full_scans(
        events in arb_events(),
        span in 500i64..80_000,
        win_start in -10_000i64..510_000,
        win_len in 0i64..200_000,
    ) {
        let store = build_store(&events, span);
        let window = Interval::new(win_start, win_start + win_len);
        for device in store.devices() {
            let timeline = store.timeline_of(device.id);
            let all: Vec<_> = timeline.iter().copied().collect();
            let expect_events: Vec<i64> = all
                .iter()
                .filter(|e| e.t >= window.start && e.t < window.end)
                .map(|e| e.t)
                .collect();
            let got_events: Vec<i64> = store
                .events_of_in(device.id, window)
                .map(|e| e.t)
                .collect();
            prop_assert_eq!(got_events, expect_events);

            let full_gaps = store.gaps_of(device.id);
            let expect_gaps: Vec<_> = full_gaps
                .iter()
                .filter(|g| g.interval().overlaps(&window))
                .copied()
                .collect();
            prop_assert_eq!(store.gaps_of_in(device.id, window), expect_gaps);
        }
    }

    /// Segmentation is a pure function of the event order, not of the span: any two
    /// spans produce identical query answers.
    #[test]
    fn segment_span_does_not_change_answers(events in arb_events(), probe in 0i64..500_000) {
        let fine = build_store(&events, 2_000);
        let coarse = build_store(&events, 1_000_000);
        for device in fine.devices() {
            prop_assert_eq!(
                fine.covering_event(device.id, probe),
                coarse.covering_event(device.id, probe)
            );
            prop_assert_eq!(fine.gap_at(device.id, probe), coarse.gap_at(device.id, probe));
            prop_assert_eq!(fine.gaps_of(device.id), coarse.gaps_of(device.id));
        }
    }

    /// CSV roundtrips preserve the number of events and devices.
    #[test]
    fn csv_roundtrip(events in arb_events()) {
        let store = build_store(&events, 50_000);
        let csv = store.to_csv();
        let back = EventStore::from_csv(space(), &csv).unwrap();
        prop_assert_eq!(back.num_events(), store.num_events());
        prop_assert_eq!(back.num_devices(), store.num_devices());
    }

    /// Snapshot roundtrips are **bit-identical**: the reloaded store compares equal
    /// (devices, deltas, segment runs, event ids, global timeline order — the
    /// ordering the service's epoch bookkeeping depends on) and re-encodes to the
    /// same bytes.
    #[test]
    fn snapshot_roundtrip_is_bit_identical(events in arb_events(), span in 1_000i64..100_000) {
        let mut store = build_store(&events, span);
        store.estimate_deltas();
        let bytes = store.to_snapshot_bytes().unwrap();
        let back = EventStore::from_snapshot_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &store);
        prop_assert_eq!(back.to_snapshot_bytes().unwrap(), bytes);
    }

    /// Any truncation of a valid snapshot fails with a typed error — never a panic,
    /// never a silently short store.
    #[test]
    fn truncated_snapshots_error_out(events in arb_events(), cut_fraction in 0.0f64..1.0) {
        let store = build_store(&events, 10_000);
        let bytes = store.to_snapshot_bytes().unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(EventStore::from_snapshot_bytes(&bytes[..cut]).is_err());
    }

    /// A probe instant is never both covered by an event and inside a gap, and
    /// devices_online_at only reports devices with covering events.
    #[test]
    fn online_devices_are_covered(events in arb_events(), probe in 0i64..500_000) {
        let store = build_store(&events, 25_000);
        for (device, region) in store.devices_online_at(probe, None) {
            let covering = store.covering_event(device, probe);
            prop_assert!(covering.is_some());
            prop_assert_eq!(covering.unwrap().1.region(), region);
            prop_assert!(store.gap_at(device, probe).is_none());
        }
    }

    /// Splitting a store into per-device shards and rejoining reproduces it
    /// bit for bit — snapshot bytes included — for any shard count.
    #[test]
    fn split_rejoin_roundtrip_is_bit_identical(
        events in arb_events(),
        span in 1_000i64..100_000,
        shards in 1usize..9,
    ) {
        let store = build_store(&events, span);
        let pieces = store.split(shards);
        prop_assert_eq!(pieces.len(), shards);
        let rejoined = EventStore::rejoin(&pieces).unwrap();
        prop_assert_eq!(&rejoined, &store);
        prop_assert_eq!(
            rejoined.to_snapshot_bytes().unwrap(),
            store.to_snapshot_bytes().unwrap()
        );
    }

    /// The multi-shard read view is indistinguishable from the combined store:
    /// routed timeline reads and the merged canonical neighbor scan agree
    /// exactly (ties across devices included — `arb_events` produces plenty).
    #[test]
    fn sharded_read_is_indistinguishable_from_combined_store(
        events in arb_events(),
        span in 1_000i64..100_000,
        shards in 1usize..9,
        probe in 0i64..500_000,
        slack in 1i64..50_000,
    ) {
        let store = build_store(&events, span);
        let pieces = store.split(shards);
        let view = ShardedRead::new(pieces.iter().collect());
        prop_assert_eq!(EventRead::num_events(&view), store.num_events());
        prop_assert_eq!(
            view.devices_near(probe, slack, None),
            store.devices_near(probe, slack, None)
        );
        prop_assert_eq!(
            view.devices_online_at(probe, None),
            store.devices_online_at(probe, None)
        );
        for device in store.devices() {
            prop_assert_eq!(view.gap_at(device.id, probe), store.gap_at(device.id, probe));
            prop_assert_eq!(
                view.covering_event(device.id, probe),
                store.covering_event(device.id, probe)
            );
        }
    }

    /// The co-location index holds exactly the timeline's `(t, ap)` multiset:
    /// per-AP window slices, counts and existence probes agree with naive
    /// timeline filters for arbitrary ingest orders and windows, and totals
    /// sum up across the posting lists.
    #[test]
    fn colocation_index_matches_timeline_filters(
        events in arb_events(),
        span in 1_000i64..100_000,
        start in 0i64..500_000,
        width in 1i64..200_000,
    ) {
        let store = build_store(&events, span);
        let window = Interval::new(start, start + width);
        for device in store.devices() {
            let postings = store.device_postings(device.id);
            prop_assert_eq!(postings.len(), store.timeline_of(device.id).len());
            prop_assert_eq!(
                postings.count_in(window),
                store.events_of_in(device.id, window).count()
            );
            let mut per_ap: std::collections::BTreeMap<u32, Vec<i64>> =
                std::collections::BTreeMap::new();
            for event in store.events_of_in(device.id, window) {
                per_ap.entry(event.ap.raw()).or_default().push(event.t);
            }
            for list in postings.ap_lists() {
                let expected = per_ap.remove(&list.ap().raw()).unwrap_or_default();
                let got: Vec<i64> = list.timestamps_in(window).collect();
                prop_assert_eq!(&got, &expected);
                prop_assert_eq!(list.slice_in(window), expected.as_slice());
                prop_assert_eq!(list.count_in(window), expected.len());
                prop_assert_eq!(list.any_in(window), !expected.is_empty());
            }
            // Every windowed AP group was accounted for by some posting list.
            prop_assert!(per_ap.is_empty());
        }
    }
}

// ---------------------------------------------------------------------------
// Compaction, tiered ageing, and the pinned-id backfill path
// ---------------------------------------------------------------------------

proptest! {
    /// The backfill-splice path is fully order-independent: replaying the
    /// same labelled event set in *any* permutation — devices pre-interned
    /// in canonical order, each event ingested under its pinned id — yields
    /// a bit-identical store, snapshot bytes included. This is the invariant
    /// WAL replay and spill merging stand on.
    #[test]
    fn pinned_id_replay_is_permutation_invariant(
        events in arb_events(),
        span in 1_000i64..100_000,
        perm_seed in 0u64..u64::MAX,
    ) {
        let mut reference = EventStore::new(space()).with_segment_span(span);
        let mut labeled = Vec::with_capacity(events.len());
        for (dev, t, ap) in &events {
            let id = reference.ingest_raw(&mac_of(*dev), *t, &format!("wap{ap}")).unwrap();
            labeled.push((id.0, mac_of(*dev), *t, format!("wap{ap}")));
        }

        // Seeded Fisher–Yates: every case gets its own permutation.
        let mut state = perm_seed | 1;
        let mut rand = move |n: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % n as u64) as usize
        };
        for i in (1..labeled.len()).rev() {
            labeled.swap(i, rand(i + 1));
        }

        let mut replay = EventStore::new(space()).with_segment_span(span);
        for (dev, _, _) in &events {
            replay.intern_device(&mac_of(*dev)).unwrap();
        }
        for (id, mac, t, ap) in &labeled {
            replay.set_next_event_id(*id);
            replay.ingest_raw(mac, *t, ap).unwrap();
        }
        replay.set_next_event_id(reference.next_event_id());

        prop_assert_eq!(&replay, &reference);
        prop_assert_eq!(
            replay.to_snapshot_bytes().unwrap(),
            reference.to_snapshot_bytes().unwrap()
        );
    }

    /// Compaction's coordinated trim evicts exactly the events below the
    /// bucket-aligned cut and nothing else: every timeline read and every
    /// co-location posting inside a window at or above the cut is identical
    /// to the untrimmed store's.
    #[test]
    fn compaction_trim_never_drops_an_in_window_posting(
        events in arb_events(),
        span in 500i64..50_000,
        horizon in 0i64..600_000,
        start_off in 0i64..150_000,
        width in 1i64..150_000,
    ) {
        let full = build_store(&events, span);
        let mut compacted = build_store(&events, span);
        let report = compacted.compact(horizon);
        let cut = report.cut;
        prop_assert_eq!(
            compacted.num_events(),
            events.iter().filter(|(_, t, _)| *t >= cut).count(),
            "the cut evicts exactly the events below it"
        );
        prop_assert_eq!(report.evicted_events, full.num_events() - compacted.num_events());

        let window = Interval::new(cut + start_off, cut + start_off + width);
        for device in full.devices() {
            prop_assert_eq!(
                compacted.events_of_in(device.id, window).copied().collect::<Vec<_>>(),
                full.events_of_in(device.id, window).copied().collect::<Vec<_>>()
            );
            let slices = |store: &EventStore| -> std::collections::BTreeMap<u32, Vec<i64>> {
                store
                    .device_postings(device.id)
                    .ap_lists()
                    .iter()
                    .map(|list| (list.ap().raw(), list.timestamps_in(window).collect()))
                    .filter(|(_, ts): &(u32, Vec<i64>)| !ts.is_empty())
                    .collect()
            };
            prop_assert_eq!(slices(&compacted), slices(&full));
        }
    }

    /// Compact → snapshot → load is bit-identical, and the spill tier the
    /// run produces is itself an ordinary round-trippable snapshot holding
    /// exactly the evicted events.
    #[test]
    fn compact_snapshot_load_roundtrip_is_bit_identical(
        events in arb_events(),
        span in 500i64..50_000,
        horizon in 0i64..600_000,
    ) {
        let mut store = build_store(&events, span);
        store.estimate_deltas();
        let report = store.compact(horizon);

        let bytes = store.to_snapshot_bytes().unwrap();
        let back = EventStore::from_snapshot_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &store);
        prop_assert_eq!(back.to_snapshot_bytes().unwrap(), bytes);

        match report.spill {
            Some(spill) => {
                prop_assert_eq!(spill.num_events(), report.evicted_events);
                prop_assert_eq!(spill.num_events() + store.num_events(), events.len());
                let spill_bytes = spill.to_snapshot_bytes().unwrap();
                let spill_back = EventStore::from_snapshot_bytes(&spill_bytes).unwrap();
                prop_assert_eq!(&spill_back, &spill);
                prop_assert_eq!(spill_back.to_snapshot_bytes().unwrap(), spill_bytes);
            }
            None => prop_assert_eq!(report.evicted_events, 0),
        }
    }
}

// ---------------------------------------------------------------------------
// Durability: WAL round-trips and replay idempotence
// ---------------------------------------------------------------------------

use locater_store::{recover_store, write_checkpoint, Durability, DurableEventStore, FsyncPolicy};
use std::sync::atomic::{AtomicU64, Ordering};

static WAL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique WAL scratch directory per proptest case.
fn wal_scratch() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "locater-store-prop-wal-{}-{}",
        std::process::id(),
        WAL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Small segments and batched fsync so arbitrary traces exercise rotation
/// and the unsynced-append path, not just one fat segment.
fn wal_config(dir: &std::path::Path) -> Durability {
    Durability::new(dir)
        .with_fsync(FsyncPolicy::EveryN(16))
        .with_segment_max_bytes(256)
}

fn mac_of(dev: u8) -> String {
    format!("aa:00:00:00:00:{:02x}", dev + 1)
}

proptest! {
    /// Any trace — out-of-order *splice* ingests, cross-device timestamp
    /// ties, arbitrary AP churn — written through the WAL recovers
    /// byte-identically (snapshot bytes included) to a store that ingested
    /// the same trace directly. Recovery is also idempotent: replaying the
    /// same log twice yields the same bytes, and the log is untouched.
    #[test]
    fn wal_roundtrip_recovers_spliced_ingests_byte_identically(events in arb_events()) {
        let dir = wal_scratch();
        let mut expected = EventStore::new(space());
        {
            let (mut durable, _) =
                DurableEventStore::open(wal_config(&dir), EventStore::new(space())).unwrap();
            for (dev, t, ap) in &events {
                let appended = durable.ingest_raw(&mac_of(*dev), *t, &format!("wap{ap}")).unwrap();
                let direct = expected.ingest_raw(&mac_of(*dev), *t, &format!("wap{ap}")).unwrap();
                prop_assert_eq!(appended, direct.0, "ids advance in lockstep");
            }
            // Dropped without a checkpoint: a crash once the OS buffers land.
        }
        let expected_bytes = expected.to_snapshot_bytes().unwrap();
        let (first, report) = recover_store(&dir, EventStore::new(space())).unwrap();
        prop_assert_eq!(report.replayed, events.len() as u64);
        prop_assert_eq!(report.skipped, 0);
        prop_assert_eq!(first.to_snapshot_bytes().unwrap(), expected_bytes.clone());
        // Read-only and repeatable: a second replay of the same log agrees.
        let (second, _) = recover_store(&dir, EventStore::new(space())).unwrap();
        prop_assert_eq!(second.to_snapshot_bytes().unwrap(), expected_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The checkpoint/trim crash window: a checkpoint written *without*
    /// trimming the log (the state left by a crash between the two steps)
    /// replays idempotently — frames the checkpoint already covers are
    /// skipped by id, the rest are applied, and the recovered bytes equal
    /// the direct store's.
    #[test]
    fn checkpoint_crash_window_replay_is_idempotent(
        events in arb_events(),
        cut_seed in 0u64..1_000,
    ) {
        let dir = wal_scratch();
        let cut = (cut_seed as usize) % (events.len() + 1);
        let mut expected = EventStore::new(space());
        {
            let (mut durable, _) =
                DurableEventStore::open(wal_config(&dir), EventStore::new(space())).unwrap();
            for (i, (dev, t, ap)) in events.iter().enumerate() {
                if i == cut {
                    // Checkpoint the prefix but leave every frame in place.
                    write_checkpoint(&dir, durable.store()).unwrap();
                }
                durable.ingest_raw(&mac_of(*dev), *t, &format!("wap{ap}")).unwrap();
                expected.ingest_raw(&mac_of(*dev), *t, &format!("wap{ap}")).unwrap();
            }
            if cut == events.len() {
                write_checkpoint(&dir, durable.store()).unwrap();
            }
        }
        let (recovered, report) = recover_store(&dir, EventStore::new(space())).unwrap();
        prop_assert_eq!(report.base_events, cut);
        prop_assert_eq!(report.skipped, cut as u64, "covered frames are skipped by id");
        prop_assert_eq!(report.replayed, (events.len() - cut) as u64);
        prop_assert_eq!(
            recovered.to_snapshot_bytes().unwrap(),
            expected.to_snapshot_bytes().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
