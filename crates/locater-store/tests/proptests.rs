//! Property-based tests for the event store.

use locater_space::{Space, SpaceBuilder};
use locater_store::EventStore;
use proptest::prelude::*;

fn space() -> Space {
    SpaceBuilder::new("prop")
        .add_access_point("wap0", &["a", "b"])
        .add_access_point("wap1", &["b", "c"])
        .add_access_point("wap2", &["c", "d"])
        .build()
        .unwrap()
}

fn arb_events() -> impl Strategy<Value = Vec<(u8, i64, u8)>> {
    prop::collection::vec((0u8..6, 0i64..500_000, 0u8..3), 1..150)
}

proptest! {
    /// Ingestion never loses events: per-device sequence lengths sum to the total, and
    /// every device sequence is sorted.
    #[test]
    fn ingestion_preserves_and_sorts_events(events in arb_events()) {
        let mut store = EventStore::new(space());
        for (dev, t, ap) in &events {
            let mac = format!("device-{dev}");
            let ap_name = format!("wap{ap}");
            store.ingest_raw(&mac, *t, &ap_name).unwrap();
        }
        prop_assert_eq!(store.num_events(), events.len());
        let mut total = 0usize;
        for device in store.devices() {
            let seq = store.events_of(device.id);
            total += seq.len();
            let ts: Vec<i64> = seq.events().iter().map(|e| e.t).collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ts, sorted);
        }
        prop_assert_eq!(total, events.len());
    }

    /// CSV roundtrips preserve the number of events and devices.
    #[test]
    fn csv_roundtrip(events in arb_events()) {
        let mut store = EventStore::new(space());
        for (dev, t, ap) in &events {
            store.ingest_raw(&format!("device-{dev}"), *t, &format!("wap{ap}")).unwrap();
        }
        let csv = store.to_csv();
        let back = EventStore::from_csv(space(), &csv).unwrap();
        prop_assert_eq!(back.num_events(), store.num_events());
        prop_assert_eq!(back.num_devices(), store.num_devices());
    }

    /// A probe instant is never both covered by an event and inside a gap, and
    /// devices_online_at only reports devices with covering events.
    #[test]
    fn online_devices_are_covered(events in arb_events(), probe in 0i64..500_000) {
        let mut store = EventStore::new(space());
        for (dev, t, ap) in &events {
            store.ingest_raw(&format!("device-{dev}"), *t, &format!("wap{ap}")).unwrap();
        }
        for (device, region) in store.devices_online_at(probe, None) {
            let covering = store.covering_event(device, probe);
            prop_assert!(covering.is_some());
            prop_assert_eq!(covering.unwrap().1.region(), region);
            prop_assert!(store.gap_at(device, probe).is_none());
        }
    }
}
