//! The LOCATER wire protocol: one typed, versioned request/response vocabulary
//! for every way of talking to a live service.
//!
//! Frames are newline-delimited JSON (NDJSON): each line is one externally
//! tagged [`WireRequest`] or [`WireResponse`]. The same definitions drive
//!
//! * the TCP server (`locater-server`), which reads request lines off sockets
//!   and writes response lines back in request order;
//! * the `locater-cli serve` stdin REPL, whose legacy line syntax
//!   (`ingest …` / `locate …` / `stats` / `quit`) is a thin compatibility
//!   parser over the same frames ([`parse_repl_line`]) — raw JSON frames are
//!   accepted on stdin too;
//! * the `locater-load` load generator and the `locater-cli request` one-shot
//!   client.
//!
//! There is exactly one protocol definition; anything that can be said over a
//! socket can be said over stdio and vice versa.
//!
//! ```
//! use locater_proto::{decode_request, encode_request, WireRequest};
//!
//! let frame = encode_request(&WireRequest::Locate {
//!     mac: Some("aa:bb:cc:dd:ee:01".into()),
//!     device: None,
//!     t: 2_500,
//!     fine_mode: None,
//!     cache: None,
//! });
//! assert!(frame.starts_with("{\"Locate\""));
//! assert_eq!(decode_request(&frame).unwrap(), decode_request(&frame).unwrap());
//! ```
//!
//! ## Versioning
//!
//! [`PROTOCOL_VERSION`] names the current frame vocabulary; servers report it
//! in [`WireResponse::Pong`] and [`WireStats::version`] so clients can detect
//! skew. Additions (new variants, new optional fields) bump the version;
//! unknown variants decode to a structured [`WireError::Parse`], never a
//! panic.

use locater_core::system::{
    Answer, CacheMode, FineMode, LocateRequest, LocateResponse, ShardStats,
};
use locater_core::LocaterError;
use locater_events::clock::Timestamp;
use locater_events::DeviceId;
use locater_store::{parse_csv, IngestError, RawEvent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The wire-protocol version this crate speaks (reported by `ping`/`stats`).
///
/// v2 added [`WireRequest::Compact`] / [`WireResponse::Compacted`] and the
/// tiering gauges on [`WireStats`] / [`WireShardStats`] (all `#[serde(default)]`,
/// so v1 responses still decode).
///
/// v3 added the resilience surface: optional `request_id` on the ingest
/// requests (servers deduplicate replays, making client retries idempotent
/// across reconnects), the `degraded` flag on [`WireResponse::Located`]
/// (coarse-only answer under deadline pressure), the
/// [`WireError::retryable`] classification, and the `panics` / `degraded` /
/// `deduped` counters on [`WireStats`]. All additions are `#[serde(default)]`
/// optional, so v2 frames still decode.
pub const PROTOCOL_VERSION: u32 = 3;

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One request frame: a single NDJSON line sent to a live service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Liveness / version probe; answered with [`WireResponse::Pong`].
    Ping,
    /// Append one connectivity event.
    Ingest {
        /// Device MAC address / log identifier.
        mac: String,
        /// Timestamp in seconds since the deployment epoch.
        t: Timestamp,
        /// Access point name.
        ap: String,
        /// Client-chosen idempotency token: a server remembers recently seen
        /// ids and acknowledges a replayed id *without* appending again, so a
        /// client that lost the ack mid-reconnect can retry safely. `None`
        /// opts out (every frame appends).
        #[serde(default)]
        request_id: Option<u64>,
    },
    /// Append a batch of events atomically with respect to queries.
    IngestBatch {
        /// The events, in ingest order.
        events: Vec<RawEvent>,
        /// Idempotency token covering the whole batch (see
        /// [`WireRequest::Ingest::request_id`]).
        #[serde(default)]
        request_id: Option<u64>,
    },
    /// Answer a location query, with optional per-request overrides.
    Locate {
        /// Device MAC address, if the caller knows it.
        #[serde(default)]
        mac: Option<String>,
        /// Already-resolved device id, if the caller has one.
        #[serde(default)]
        device: Option<DeviceId>,
        /// Query time.
        t: Timestamp,
        /// Per-request fine-grained mode override (I-FINE / D-FINE).
        #[serde(default)]
        fine_mode: Option<FineMode>,
        /// Per-request caching engine override.
        #[serde(default)]
        cache: Option<CacheMode>,
    },
    /// Report service statistics ([`WireStats`]).
    Stats,
    /// Persist the current store as a binary snapshot at the given path.
    Snapshot {
        /// Server-side filesystem path to write.
        path: String,
    },
    /// Compact the store: age history out of the hot tier (see
    /// `ShardedLocaterService::compact_to` in `locater-core`). Spill-file
    /// placement is server configuration (`--spill-dir`), not part of the
    /// request.
    Compact {
        /// Seconds of history to retain behind the event-time watermark.
        /// `None` falls back to the server's configured `--retain`; a request
        /// with neither is rejected with [`WireError::BadRequest`].
        #[serde(default)]
        retain: Option<Timestamp>,
        /// Absolute horizon timestamp instead of a relative retention
        /// (mutually exclusive with `retain`; `retain` wins if both appear).
        #[serde(default)]
        horizon: Option<Timestamp>,
    },
    /// Gracefully drain the service: in-flight requests finish, new ones are
    /// rejected with [`WireError::ShuttingDown`], and the configured drain
    /// snapshot (if any) is written before the server exits.
    Shutdown,
}

impl WireRequest {
    /// The wire form of a typed [`LocateRequest`] (diagnostics do not cross
    /// the wire; per-request mode/cache overrides do).
    pub fn locate(request: &LocateRequest) -> Self {
        WireRequest::Locate {
            mac: request.mac.clone(),
            device: request.device,
            t: request.t,
            fine_mode: request.fine_mode,
            cache: request.cache,
        }
    }

    /// The typed [`LocateRequest`] of a [`WireRequest::Locate`] frame
    /// (`None` for every other variant).
    pub fn to_locate(&self) -> Option<LocateRequest> {
        match self {
            WireRequest::Locate {
                mac,
                device,
                t,
                fine_mode,
                cache,
            } => Some(LocateRequest {
                mac: mac.clone(),
                device: *device,
                t: *t,
                fine_mode: *fine_mode,
                cache: *cache,
                diagnostics: false,
            }),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One response frame: a single NDJSON line written back for each request, in
/// request order.
// `Stats` dominates the enum size, but stats frames are rare and encoded
// immediately — boxing would complicate every construction site for no
// meaningful saving on the hot (Ingested/Located) variants.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// One event was appended.
    Ingested {
        /// Echo of the ingested MAC.
        mac: String,
        /// Echo of the ingested timestamp.
        t: Timestamp,
        /// Echo of the ingested access point name.
        ap: String,
        /// The device's ingest epoch after the append.
        device_epoch: u64,
    },
    /// A batch was appended.
    IngestedBatch {
        /// Number of events appended.
        appended: usize,
    },
    /// Answer to [`WireRequest::Locate`] — the same payload
    /// [`LocateResponse`] carries in process, minus diagnostics.
    Located {
        /// The cleaned answer.
        answer: Answer,
        /// The queried device's ingest epoch at answer time.
        device_epoch: u64,
        /// Total events in the store when the answer was computed.
        events_seen: usize,
        /// `true` when the server answered coarse-only because the request's
        /// deadline expired before the fine step could run: the answer is
        /// building/region-accurate but the room is unresolved.
        #[serde(default)]
        degraded: bool,
    },
    /// Answer to [`WireRequest::Stats`].
    Stats(WireStats),
    /// A snapshot was written.
    SnapshotSaved {
        /// The path written.
        path: String,
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// Answer to [`WireRequest::Compact`]: the cumulative compaction gauges
    /// after the run (a run that evicted nothing still answers, with the
    /// counters unchanged).
    Compacted(WireCompactionStats),
    /// Acknowledgement of [`WireRequest::Shutdown`]: the drain has begun.
    ShuttingDown,
    /// The request failed; the frame slot is preserved so pipelined responses
    /// stay in request order.
    Error(WireError),
}

impl WireResponse {
    /// The wire form of an in-process locate result.
    pub fn located(response: &LocateResponse) -> Self {
        Self::located_degraded(response, false)
    }

    /// The wire form of an in-process locate result, with the degradation
    /// flag set explicitly (the deadline-expired coarse-only path).
    pub fn located_degraded(response: &LocateResponse, degraded: bool) -> Self {
        WireResponse::Located {
            answer: response.answer.clone(),
            device_epoch: response.device_epoch,
            events_seen: response.events_seen,
            degraded,
        }
    }

    /// `true` for [`WireResponse::Error`] frames.
    pub fn is_error(&self) -> bool {
        matches!(self, WireResponse::Error(_))
    }
}

/// Structured request failures. Every variant is a *response*: the connection
/// stays usable and pipelined ordering is preserved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    /// The line was not a valid protocol frame.
    Parse {
        /// 1-based request line number on the connection (0 when unknown).
        line: u64,
        /// 1-based byte column within the line (0 when unknown).
        column: u64,
        /// What went wrong.
        message: String,
    },
    /// The query referenced a device that has never appeared in the log.
    UnknownDevice {
        /// The unresolvable identifier.
        mac: String,
    },
    /// The frame was well-formed but the request was invalid.
    BadRequest {
        /// What went wrong.
        message: String,
    },
    /// An ingest was rejected (unknown access point, bad MAC, bad row, …).
    Ingest {
        /// What went wrong.
        message: String,
    },
    /// Admission control rejected the request: the bounded in-flight queue is
    /// full. Explicit backpressure — retry later; nothing was dropped
    /// silently.
    Overloaded {
        /// Requests executing when the request was rejected.
        in_flight: usize,
        /// Requests queued when the request was rejected.
        queued: usize,
        /// The configured admission limit (queued + in-flight).
        limit: usize,
    },
    /// The service is draining; no new requests are admitted.
    ShuttingDown,
    /// An internal error (learning substrate, snapshot I/O, …).
    Internal {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse {
                line,
                column,
                message,
            } => match (line, column) {
                (0, 0) => write!(f, "parse error: {message}"),
                (line, 0) => write!(f, "parse error at line {line}: {message}"),
                (0, column) => write!(f, "parse error at column {column}: {message}"),
                (line, column) => {
                    write!(f, "parse error at line {line}, column {column}: {message}")
                }
            },
            WireError::UnknownDevice { mac } => write!(f, "unknown device: {mac}"),
            WireError::BadRequest { message } => f.write_str(message),
            WireError::Ingest { message } => f.write_str(message),
            WireError::Overloaded {
                in_flight,
                queued,
                limit,
            } => write!(
                f,
                "overloaded: {in_flight} in flight + {queued} queued at limit {limit}, retry later"
            ),
            WireError::ShuttingDown => f.write_str("shutting down"),
            WireError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl WireError {
    /// Whether a client may safely retry the request that produced this
    /// error. Transient server conditions — backpressure, a drain racing the
    /// request, an isolated worker panic — are retryable (pair ingest retries
    /// with a `request_id` so a replay that *did* land is not applied twice);
    /// deterministic rejections (malformed frame, unknown device, invalid
    /// ingest) would fail identically on every attempt and are not.
    pub fn retryable(&self) -> bool {
        match self {
            WireError::Overloaded { .. } | WireError::ShuttingDown | WireError::Internal { .. } => {
                true
            }
            WireError::Parse { .. }
            | WireError::UnknownDevice { .. }
            | WireError::BadRequest { .. }
            | WireError::Ingest { .. } => false,
        }
    }

    /// Stamps the 1-based connection line number onto a parse error (other
    /// variants are returned unchanged).
    pub fn at_line(self, line: u64) -> Self {
        match self {
            WireError::Parse {
                column, message, ..
            } => WireError::Parse {
                line,
                column,
                message,
            },
            other => other,
        }
    }
}

impl From<LocaterError> for WireError {
    fn from(e: LocaterError) -> Self {
        match e {
            LocaterError::UnknownDevice(mac) => WireError::UnknownDevice { mac },
            LocaterError::MissingDevice => WireError::BadRequest {
                message: e.to_string(),
            },
            LocaterError::Learning(message) => WireError::Internal { message },
        }
    }
}

impl From<IngestError> for WireError {
    fn from(e: IngestError) -> Self {
        WireError::Ingest {
            message: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Statistics payload
// ---------------------------------------------------------------------------

/// Service-wide statistics: store totals, cache liveness, and the serving
/// layer's admission counters (uptime, in-flight/queued, rejections) — enough
/// for a load harness to assert that backpressure actually engaged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireStats {
    /// The server's [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Milliseconds since the serving process started.
    pub uptime_ms: u64,
    /// Total events stored across all shards.
    pub events: usize,
    /// Distinct devices known.
    pub devices: usize,
    /// Shard count.
    pub shards: usize,
    /// Affinity edges physically held (live and stale).
    pub edges: usize,
    /// Affinity edges live under current epochs.
    pub live_edges: usize,
    /// Affinity samples physically held.
    pub samples: usize,
    /// Affinity samples live under current epochs.
    pub live_samples: usize,
    /// Co-location-index AP posting lists.
    pub index_ap_lists: usize,
    /// Co-location-index time buckets.
    pub index_buckets: usize,
    /// Requests executed to completion since start (successes and errors).
    pub requests_served: u64,
    /// Requests executing right now.
    pub in_flight: usize,
    /// Requests admitted but not yet executing.
    pub queued: usize,
    /// Requests rejected by admission control since start.
    pub rejected_overloaded: u64,
    /// Requests rejected because the service was draining.
    pub rejected_shutting_down: u64,
    /// Worker panics isolated into [`WireError::Internal`] responses since
    /// start (each one is a bug worth a report — but never a wedged server).
    /// Defaulted for pre-v3 responses.
    #[serde(default)]
    pub panics: u64,
    /// Locate requests answered coarse-only because their deadline expired.
    /// Defaulted for pre-v3 responses.
    #[serde(default)]
    pub degraded: u64,
    /// Replayed ingest `request_id`s acknowledged without re-applying.
    /// Defaulted for pre-v3 responses.
    #[serde(default)]
    pub deduped: u64,
    /// Completed replay-dedup entries aged out of the FIFO window since
    /// start. Nonzero under load means a client could retry past the
    /// window and double-apply — raise the window (it is sized off the
    /// server's `--queue` admission limit). Defaulted for pre-v3 responses.
    #[serde(default)]
    pub dedup_evicted: u64,
    /// Approximate resident heap bytes across all shard stores (allocated
    /// capacity of timelines, global index and posting lists). Defaulted for
    /// v1 responses.
    #[serde(default)]
    pub resident_bytes: usize,
    /// Mutable head segments across all shards. Defaulted for v1 responses.
    #[serde(default)]
    pub head_segments: usize,
    /// Sealed (immutable) segments across all shards. Defaulted for v1
    /// responses.
    #[serde(default)]
    pub sealed_segments: usize,
    /// Cumulative compaction gauges since boot. Defaulted (all zero) for v1
    /// responses.
    #[serde(default)]
    pub compaction: WireCompactionStats,
    /// Per-shard breakdown.
    pub per_shard: Vec<WireShardStats>,
    /// Write-ahead-log gauges — present only when the server runs with
    /// `--wal-dir`. Absent on the wire (or `null`) for non-durable servers
    /// and for responses from older servers, which also keeps new clients
    /// compatible with them.
    #[serde(default)]
    pub wal: Option<WireWalStats>,
}

/// The wire form of the server's write-ahead-log gauges (see
/// `ShardedLocaterService::wal_status` in `locater-core`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireWalStats {
    /// The WAL directory the server logs to.
    pub dir: String,
    /// The fsync policy, rendered (`always` / `every=N` / `interval=MS`).
    pub fsync: String,
    /// Live segment files across all shards.
    pub segments: u64,
    /// Frames (logged events) across all shards — the replay cost of a crash
    /// right now.
    pub frames: u64,
    /// Bytes across all shard logs.
    pub bytes: u64,
    /// Milliseconds since the last checkpoint.
    pub last_checkpoint_age_ms: u64,
    /// Checkpoints taken since boot.
    pub checkpoints: u64,
}

/// The wire form of the service's cumulative compaction gauges (see
/// `ShardedLocaterService::compaction_status` in `locater-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct WireCompactionStats {
    /// Compaction runs since boot that evicted at least one event.
    pub runs: u64,
    /// Events evicted from the hot tier since boot.
    pub evicted_events: u64,
    /// Sealed segments evicted since boot.
    pub evicted_segments: u64,
    /// Bucket-aligned cut of the most recent effective run (`None` before the
    /// first eviction): every event with `t <` this is out of the hot tier.
    #[serde(default)]
    pub last_cut: Option<Timestamp>,
    /// Dwell-summary rows accumulated in the summary tier.
    pub summary_rows: usize,
}

/// The wire form of one shard's counters (see
/// [`ShardStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireShardStats {
    /// Shard index.
    pub shard: usize,
    /// Events stored in this shard's partition.
    pub events: usize,
    /// Devices whose home shard this is.
    pub owned_devices: usize,
    /// Affinity edges physically held by this shard's cache.
    pub edges: usize,
    /// Affinity edges live under current epochs.
    pub live_edges: usize,
    /// Affinity samples physically held.
    pub samples: usize,
    /// Affinity samples live under current epochs.
    pub live_samples: usize,
    /// Co-location-index AP posting lists held by this shard.
    pub index_ap_lists: usize,
    /// Co-location-index time buckets held by this shard.
    pub index_buckets: usize,
    /// Mutable head segments in this shard's partition. Defaulted for v1
    /// responses.
    #[serde(default)]
    pub head_segments: usize,
    /// Sealed segments in this shard's partition. Defaulted for v1 responses.
    #[serde(default)]
    pub sealed_segments: usize,
    /// Approximate resident heap bytes of this shard's store partition.
    /// Defaulted for v1 responses.
    #[serde(default)]
    pub resident_bytes: usize,
}

impl From<ShardStats> for WireShardStats {
    fn from(s: ShardStats) -> Self {
        Self {
            shard: s.shard,
            events: s.events,
            owned_devices: s.owned_devices,
            edges: s.edges,
            live_edges: s.live_edges,
            samples: s.samples,
            live_samples: s.live_samples,
            index_ap_lists: s.index_ap_lists,
            index_buckets: s.index_buckets,
            head_segments: s.head_segments,
            sealed_segments: s.sealed_segments,
            resident_bytes: s.resident_bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// NDJSON codec
// ---------------------------------------------------------------------------

/// Encodes a request as one NDJSON line (no trailing newline; JSON string
/// escaping guarantees the frame itself contains none).
pub fn encode_request(request: &WireRequest) -> String {
    serde_json::to_string(request).expect("wire frames always serialize")
}

/// Encodes a response as one NDJSON line.
pub fn encode_response(response: &WireResponse) -> String {
    serde_json::to_string(response).expect("wire frames always serialize")
}

/// Decodes one request line. Failures are structured [`WireError::Parse`]
/// values carrying the 1-based byte column when the JSON parser reported one
/// (the connection line number is stamped by the caller via
/// [`WireError::at_line`]).
pub fn decode_request(line: &str) -> Result<WireRequest, WireError> {
    decode_frame(line)
}

/// Decodes one response line (used by clients; same error shape as
/// [`decode_request`]).
pub fn decode_response(line: &str) -> Result<WireResponse, WireError> {
    decode_frame(line)
}

fn decode_frame<T: Deserialize>(line: &str) -> Result<T, WireError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Err(WireError::Parse {
            line: 0,
            column: 0,
            message: "empty frame".to_string(),
        });
    }
    serde_json::from_str(trimmed).map_err(|e| WireError::Parse {
        line: 0,
        column: e.offset().map(|o| o as u64 + 1).unwrap_or(0),
        message: e.to_string(),
    })
}

// ---------------------------------------------------------------------------
// REPL compatibility syntax
// ---------------------------------------------------------------------------

/// One parsed line of the legacy `serve` REPL syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplCommand {
    /// A protocol request (from either the verb syntax or a raw JSON frame).
    Request(WireRequest),
    /// `quit` / `exit`: end the REPL session without draining the service.
    Quit,
    /// A blank line or `#` comment.
    Empty,
}

/// Parses one stdin line of the `locater-cli serve` REPL: the legacy verb
/// syntax (`ingest <mac,timestamp,ap>`, `locate <mac> <timestamp>`, `stats`,
/// `compact [retain-seconds]`, `ping`, `snapshot <path>`, `shutdown`, `quit`)
/// *or* a raw NDJSON
/// [`WireRequest`] frame — the REPL is the wire protocol over stdio.
///
/// ```
/// use locater_proto::{parse_repl_line, ReplCommand, WireRequest};
///
/// let parsed = parse_repl_line("locate aa:bb:cc:dd:ee:01 2500").unwrap();
/// let ReplCommand::Request(WireRequest::Locate { mac, t, .. }) = parsed else {
///     panic!("expected a locate request");
/// };
/// assert_eq!(mac.as_deref(), Some("aa:bb:cc:dd:ee:01"));
/// assert_eq!(t, 2_500);
///
/// // Raw frames work too:
/// assert_eq!(
///     parse_repl_line("\"Ping\"").unwrap(),
///     ReplCommand::Request(WireRequest::Ping)
/// );
/// ```
pub fn parse_repl_line(line: &str) -> Result<ReplCommand, WireError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(ReplCommand::Empty);
    }
    if line.starts_with('{') || line.starts_with('"') {
        return decode_request(line).map(ReplCommand::Request);
    }
    let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let rest = rest.trim();
    match verb {
        "quit" | "exit" => Ok(ReplCommand::Quit),
        "shutdown" => Ok(ReplCommand::Request(WireRequest::Shutdown)),
        "ping" => Ok(ReplCommand::Request(WireRequest::Ping)),
        "stats" => Ok(ReplCommand::Request(WireRequest::Stats)),
        "compact" => {
            if rest.is_empty() {
                return Ok(ReplCommand::Request(WireRequest::Compact {
                    retain: None,
                    horizon: None,
                }));
            }
            let Ok(retain) = rest.parse::<Timestamp>() else {
                return Err(WireError::BadRequest {
                    message: "usage: compact [retain-seconds]".to_string(),
                });
            };
            Ok(ReplCommand::Request(WireRequest::Compact {
                retain: Some(retain),
                horizon: None,
            }))
        }
        "snapshot" => {
            if rest.is_empty() {
                Err(WireError::BadRequest {
                    message: "usage: snapshot <path>".to_string(),
                })
            } else {
                Ok(ReplCommand::Request(WireRequest::Snapshot {
                    path: rest.to_string(),
                }))
            }
        }
        "ingest" => {
            let csv = format!("mac,timestamp,ap\n{rest}\n");
            match parse_csv(&csv) {
                Ok(rows) if rows.len() == 1 => {
                    let row = rows.into_iter().next().expect("one row");
                    Ok(ReplCommand::Request(WireRequest::Ingest {
                        mac: row.mac,
                        t: row.t,
                        ap: row.ap,
                        request_id: None,
                    }))
                }
                Ok(_) => Err(WireError::BadRequest {
                    message: "ingest takes exactly one mac,timestamp,ap line".to_string(),
                }),
                Err(e) => Err(e.into()),
            }
        }
        "locate" => {
            let mut parts = rest.split_whitespace();
            let (Some(mac), Some(t)) = (parts.next(), parts.next()) else {
                return Err(WireError::BadRequest {
                    message: "usage: locate <mac> <timestamp>".to_string(),
                });
            };
            let Ok(t) = t.parse::<Timestamp>() else {
                return Err(WireError::BadRequest {
                    message: "timestamp must be an integer number of seconds".to_string(),
                });
            };
            Ok(ReplCommand::Request(WireRequest::Locate {
                mac: Some(mac.to_string()),
                device: None,
                t,
                fine_mode: None,
                cache: None,
            }))
        }
        other => Err(WireError::BadRequest {
            message: format!(
                "unknown command {other:?} (ingest / locate / stats / compact / snapshot / ping / shutdown / quit)"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_are_single_lines() {
        let requests = [
            WireRequest::Ping,
            WireRequest::Ingest {
                mac: "aa\nbb".into(),
                t: 12,
                ap: "wap\"1".into(),
                request_id: Some(9),
            },
            WireRequest::Stats,
            WireRequest::Shutdown,
        ];
        for request in &requests {
            let line = encode_request(request);
            assert!(!line.contains('\n'), "frame must be one line: {line}");
            assert_eq!(&decode_request(&line).unwrap(), request);
        }
    }

    #[test]
    fn locate_request_roundtrips_through_typed_form() {
        let typed = LocateRequest::by_mac("aa:bb", 77)
            .with_fine_mode(FineMode::Dependent)
            .with_cache(CacheMode::Disabled);
        let wire = WireRequest::locate(&typed);
        assert_eq!(wire.to_locate().unwrap(), typed);
        assert_eq!(WireRequest::Ping.to_locate(), None);
    }

    #[test]
    fn parse_errors_carry_columns_and_lines() {
        let err = decode_request("{\"Locate\": nope}").unwrap_err();
        let WireError::Parse { line, column, .. } = err.clone() else {
            panic!("expected parse error, got {err:?}");
        };
        assert_eq!(line, 0);
        assert_eq!(column, 12, "column is 1-based byte position");
        let stamped = err.at_line(41);
        let WireError::Parse { line, column, .. } = stamped else {
            unreachable!()
        };
        assert_eq!((line, column), (41, 12));
    }

    #[test]
    fn unknown_variants_are_parse_errors() {
        let err = decode_request("{\"Frobnicate\":{}}").unwrap_err();
        let WireError::Parse { message, .. } = err else {
            panic!("expected parse error");
        };
        assert!(message.contains("Frobnicate"), "message: {message}");
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::Overloaded {
            in_flight: 2,
            queued: 14,
            limit: 16,
        };
        assert!(e.to_string().contains("overloaded"));
        assert!(e.to_string().contains("16"));
        assert_eq!(
            WireError::UnknownDevice {
                mac: "ghost".into()
            }
            .to_string(),
            "unknown device: ghost"
        );
        assert_eq!(
            WireError::Parse {
                line: 3,
                column: 9,
                message: "x".into()
            }
            .to_string(),
            "parse error at line 3, column 9: x"
        );
        assert_eq!(
            WireError::Parse {
                line: 3,
                column: 0,
                message: "x".into()
            }
            .to_string(),
            "parse error at line 3: x"
        );
    }

    #[test]
    fn locater_errors_map_to_wire_errors() {
        assert_eq!(
            WireError::from(LocaterError::UnknownDevice("ab".into())),
            WireError::UnknownDevice { mac: "ab".into() }
        );
        assert!(matches!(
            WireError::from(LocaterError::MissingDevice),
            WireError::BadRequest { .. }
        ));
        assert!(matches!(
            WireError::from(LocaterError::Learning("x".into())),
            WireError::Internal { .. }
        ));
    }

    #[test]
    fn repl_verbs_map_to_requests() {
        assert_eq!(parse_repl_line("  ").unwrap(), ReplCommand::Empty);
        assert_eq!(parse_repl_line("# hi").unwrap(), ReplCommand::Empty);
        assert_eq!(parse_repl_line("quit").unwrap(), ReplCommand::Quit);
        assert_eq!(parse_repl_line("exit").unwrap(), ReplCommand::Quit);
        assert_eq!(
            parse_repl_line("shutdown").unwrap(),
            ReplCommand::Request(WireRequest::Shutdown)
        );
        assert_eq!(
            parse_repl_line("stats").unwrap(),
            ReplCommand::Request(WireRequest::Stats)
        );
        assert_eq!(
            parse_repl_line("ping").unwrap(),
            ReplCommand::Request(WireRequest::Ping)
        );
        assert_eq!(
            parse_repl_line("snapshot /tmp/x.snap").unwrap(),
            ReplCommand::Request(WireRequest::Snapshot {
                path: "/tmp/x.snap".into()
            })
        );
        assert_eq!(
            parse_repl_line("compact").unwrap(),
            ReplCommand::Request(WireRequest::Compact {
                retain: None,
                horizon: None
            })
        );
        assert_eq!(
            parse_repl_line("compact 604800").unwrap(),
            ReplCommand::Request(WireRequest::Compact {
                retain: Some(604_800),
                horizon: None
            })
        );
        assert_eq!(
            parse_repl_line("ingest aa:bb,100,wap1").unwrap(),
            ReplCommand::Request(WireRequest::Ingest {
                mac: "aa:bb".into(),
                t: 100,
                ap: "wap1".into(),
                request_id: None,
            })
        );
        let locate = parse_repl_line("locate aa:bb 250").unwrap();
        assert_eq!(
            locate,
            ReplCommand::Request(WireRequest::Locate {
                mac: Some("aa:bb".into()),
                device: None,
                t: 250,
                fine_mode: None,
                cache: None,
            })
        );
    }

    #[test]
    fn pre_v3_frames_still_decode() {
        // A v2 ingest frame has no request_id; it must decode to None.
        let decoded = decode_request(r#"{"Ingest":{"mac":"aa:bb","t":5,"ap":"wap1"}}"#).unwrap();
        assert_eq!(
            decoded,
            WireRequest::Ingest {
                mac: "aa:bb".into(),
                t: 5,
                ap: "wap1".into(),
                request_id: None,
            }
        );
        let decoded = decode_request(r#"{"IngestBatch":{"events":[]}}"#).unwrap();
        assert_eq!(
            decoded,
            WireRequest::IngestBatch {
                events: Vec::new(),
                request_id: None,
            }
        );
    }

    #[test]
    fn retryable_classification_is_stable() {
        let retryable = [
            WireError::Overloaded {
                in_flight: 1,
                queued: 1,
                limit: 2,
            },
            WireError::ShuttingDown,
            WireError::Internal {
                message: "worker panic".into(),
            },
        ];
        for e in &retryable {
            assert!(e.retryable(), "{e} must be retryable");
        }
        let terminal = [
            WireError::Parse {
                line: 1,
                column: 1,
                message: "x".into(),
            },
            WireError::UnknownDevice {
                mac: "ghost".into(),
            },
            WireError::BadRequest {
                message: "x".into(),
            },
            WireError::Ingest {
                message: "x".into(),
            },
        ];
        for e in &terminal {
            assert!(!e.retryable(), "{e} must not be retryable");
        }
    }

    #[test]
    fn repl_rejects_bad_lines() {
        assert!(matches!(
            parse_repl_line("locate onlymac"),
            Err(WireError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_repl_line("locate aa 1x0"),
            Err(WireError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_repl_line("ingest broken-line"),
            Err(WireError::Ingest { .. }) | Err(WireError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_repl_line("snapshot"),
            Err(WireError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_repl_line("compact soon"),
            Err(WireError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_repl_line("frobnicate now"),
            Err(WireError::BadRequest { .. })
        ));
        assert!(matches!(
            parse_repl_line("{\"broken\""),
            Err(WireError::Parse { .. })
        ));
    }
}
