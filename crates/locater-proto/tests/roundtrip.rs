//! Protocol round-trip and malformed-frame coverage: every `WireRequest` /
//! `WireResponse` variant survives encode → decode bit-identically, and every
//! malformed frame decodes to a structured parse error (never a panic).

use locater_core::coarse::CoarseMethod;
use locater_core::system::{Answer, CacheMode, FineMode, Location};
use locater_events::DeviceId;
use locater_proto::{
    decode_request, decode_response, encode_request, encode_response, WireCompactionStats,
    WireError, WireRequest, WireResponse, WireShardStats, WireStats, WireWalStats,
    PROTOCOL_VERSION,
};
use locater_space::{RegionId, RoomId};
use locater_store::RawEvent;

fn sample_stats() -> WireStats {
    WireStats {
        version: PROTOCOL_VERSION,
        uptime_ms: 12_345,
        events: 10,
        devices: 3,
        shards: 2,
        edges: 4,
        live_edges: 3,
        samples: 9,
        live_samples: 7,
        index_ap_lists: 5,
        index_buckets: 6,
        requests_served: 100,
        in_flight: 2,
        queued: 1,
        rejected_overloaded: 11,
        rejected_shutting_down: 1,
        panics: 1,
        degraded: 5,
        deduped: 3,
        dedup_evicted: 1,
        resident_bytes: 65_536,
        head_segments: 3,
        sealed_segments: 12,
        compaction: WireCompactionStats {
            runs: 2,
            evicted_events: 400,
            evicted_segments: 8,
            last_cut: Some(604_800),
            summary_rows: 17,
        },
        per_shard: vec![
            WireShardStats {
                shard: 0,
                events: 6,
                owned_devices: 2,
                edges: 4,
                live_edges: 3,
                samples: 9,
                live_samples: 7,
                index_ap_lists: 3,
                index_buckets: 4,
                head_segments: 2,
                sealed_segments: 7,
                resident_bytes: 40_960,
            },
            WireShardStats {
                shard: 1,
                events: 4,
                owned_devices: 1,
                edges: 0,
                live_edges: 0,
                samples: 0,
                live_samples: 0,
                index_ap_lists: 2,
                index_buckets: 2,
                head_segments: 1,
                sealed_segments: 5,
                resident_bytes: 24_576,
            },
        ],
        wal: Some(WireWalStats {
            dir: "/var/lib/locater/wal".into(),
            fsync: "every=32".into(),
            segments: 3,
            frames: 128,
            bytes: 4_096,
            last_checkpoint_age_ms: 60_000,
            checkpoints: 2,
        }),
    }
}

fn every_request() -> Vec<WireRequest> {
    vec![
        WireRequest::Ping,
        WireRequest::Ingest {
            mac: "aa:bb:cc:dd:ee:01".into(),
            t: 1_000,
            ap: "wap1".into(),
            request_id: None,
        },
        WireRequest::Ingest {
            mac: "aa:bb:cc:dd:ee:02".into(),
            t: 1_001,
            ap: "wap2".into(),
            request_id: Some(u64::MAX),
        },
        WireRequest::IngestBatch {
            events: vec![
                RawEvent::new("aa", 1, "wap1"),
                RawEvent::new("bb \"quoted\" \\ name", 2, "wap,2"),
            ],
            request_id: Some(17),
        },
        WireRequest::IngestBatch {
            events: vec![],
            request_id: None,
        },
        WireRequest::Locate {
            mac: Some("aa".into()),
            device: None,
            t: 2_500,
            fine_mode: None,
            cache: None,
        },
        WireRequest::Locate {
            mac: None,
            device: Some(DeviceId::new(7)),
            t: -3,
            fine_mode: Some(FineMode::Dependent),
            cache: Some(CacheMode::Disabled),
        },
        WireRequest::Stats,
        WireRequest::Snapshot {
            path: "/tmp/drain dir/store.snap".into(),
        },
        WireRequest::Compact {
            retain: Some(604_800),
            horizon: None,
        },
        WireRequest::Compact {
            retain: None,
            horizon: Some(1_209_600),
        },
        WireRequest::Compact {
            retain: None,
            horizon: None,
        },
        WireRequest::Shutdown,
    ]
}

fn every_response() -> Vec<WireResponse> {
    let answer = Answer {
        device: DeviceId::new(3),
        t: 2_500,
        location: Location::Room {
            room: RoomId::new(4),
            region: RegionId::new(1),
        },
        coarse_method: CoarseMethod::Classifier,
        confidence: 0.8125,
    };
    let mut responses = vec![
        WireResponse::Pong {
            version: PROTOCOL_VERSION,
        },
        WireResponse::Ingested {
            mac: "aa".into(),
            t: 9,
            ap: "wap1".into(),
            device_epoch: 4,
        },
        WireResponse::IngestedBatch { appended: 41 },
        WireResponse::Located {
            answer: answer.clone(),
            device_epoch: 2,
            events_seen: 77,
            degraded: false,
        },
        WireResponse::Located {
            answer: Answer {
                location: Location::Outside,
                coarse_method: CoarseMethod::OutOfSpan,
                ..answer.clone()
            },
            device_epoch: 0,
            events_seen: 0,
            degraded: false,
        },
        WireResponse::Located {
            answer: Answer {
                location: Location::Region(RegionId::new(2)),
                coarse_method: CoarseMethod::Fallback,
                ..answer
            },
            device_epoch: 1,
            events_seen: 1,
            degraded: true,
        },
        WireResponse::Stats(sample_stats()),
        WireResponse::SnapshotSaved {
            path: "/tmp/x.snap".into(),
            bytes: 123_456,
        },
        WireResponse::Compacted(WireCompactionStats {
            runs: 1,
            evicted_events: 250,
            evicted_segments: 5,
            last_cut: Some(86_400),
            summary_rows: 9,
        }),
        WireResponse::Compacted(WireCompactionStats::default()),
        WireResponse::ShuttingDown,
    ];
    let errors = [
        WireError::Parse {
            line: 3,
            column: 14,
            message: "expected ','".into(),
        },
        WireError::UnknownDevice {
            mac: "ghost".into(),
        },
        WireError::BadRequest {
            message: "usage: locate <mac> <timestamp>".into(),
        },
        WireError::Ingest {
            message: "unknown access point: wap9".into(),
        },
        WireError::Overloaded {
            in_flight: 4,
            queued: 12,
            limit: 16,
        },
        WireError::ShuttingDown,
        WireError::Internal {
            message: "boom".into(),
        },
    ];
    responses.extend(errors.into_iter().map(WireResponse::Error));
    responses
}

#[test]
fn every_request_variant_roundtrips() {
    for request in every_request() {
        let line = encode_request(&request);
        assert!(!line.contains('\n'), "one frame per line: {line}");
        let back = decode_request(&line).unwrap_or_else(|e| panic!("decode {line}: {e}"));
        assert_eq!(back, request);
        // Re-encoding is byte-identical (canonical encoder).
        assert_eq!(encode_request(&back), line);
    }
}

#[test]
fn every_response_variant_roundtrips() {
    for response in every_response() {
        let line = encode_response(&response);
        assert!(!line.contains('\n'), "one frame per line: {line}");
        let back = decode_response(&line).unwrap_or_else(|e| panic!("decode {line}: {e}"));
        assert_eq!(back, response);
        assert_eq!(encode_response(&back), line);
    }
}

/// A `stats` frame from a server predating the WAL gauges (no `wal` key at
/// all) still decodes — the field is optional on the wire.
#[test]
fn stats_without_wal_field_still_decodes() {
    let mut stats = sample_stats();
    stats.wal = None;
    let line = encode_response(&WireResponse::Stats(stats.clone()));
    let stripped = line.replace(",\"wal\":null", "");
    assert_ne!(stripped, line, "the null wal field was present to strip");
    let back = decode_response(&stripped).unwrap();
    assert_eq!(back, WireResponse::Stats(stats));
}

/// A `stats` frame from a v1 server (no tiering gauges anywhere) still
/// decodes — every v2 stats field defaults.
#[test]
fn v1_stats_without_tiering_fields_still_decodes() {
    let mut stats = sample_stats();
    stats.wal = None;
    let line = encode_response(&WireResponse::Stats(stats.clone()));
    let mut stripped = line.replace(",\"wal\":null", "");
    for key in [
        "resident_bytes",
        "head_segments",
        "sealed_segments",
        "last_cut",
    ] {
        while let Some(start) = stripped.find(&format!(",\"{key}\":")) {
            let tail = &stripped[start + 1..];
            let len = tail
                .char_indices()
                .find(|&(_, c)| c == ',' || c == '}')
                .map(|(i, _)| i)
                .unwrap_or(tail.len());
            stripped.replace_range(start..start + 1 + len, "");
        }
    }
    stripped = stripped.replace(
        ",\"compaction\":{\"runs\":2,\"evicted_events\":400,\"evicted_segments\":8,\"summary_rows\":17}",
        "",
    );
    assert_ne!(stripped, line, "the v2 fields were present to strip");
    let back = decode_response(&stripped).unwrap();
    stats.resident_bytes = 0;
    stats.head_segments = 0;
    stats.sealed_segments = 0;
    stats.compaction = WireCompactionStats::default();
    for shard in &mut stats.per_shard {
        shard.resident_bytes = 0;
        shard.head_segments = 0;
        shard.sealed_segments = 0;
    }
    assert_eq!(back, WireResponse::Stats(stats));
}

/// A deterministic LCG-driven fuzz pass: random structured requests round-trip,
/// including MACs exercising JSON escaping and extreme timestamps.
#[test]
fn fuzzed_requests_roundtrip() {
    let mut state = 0x4d595df4d0f33173u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let alphabet: Vec<char> = "ab:01\"\\\n\t,{}[]é个 ".chars().collect();
    let rand_string = |n: &mut dyn FnMut() -> u32| {
        let len = (n() % 12) as usize;
        (0..len)
            .map(|_| alphabet[(n() % alphabet.len() as u32) as usize])
            .collect::<String>()
    };
    for _ in 0..500 {
        let t = (next() as i64) * if next() % 2 == 0 { 1 } else { -1 };
        let request = match next() % 5 {
            0 => WireRequest::Ping,
            1 => WireRequest::Ingest {
                mac: rand_string(&mut next),
                t,
                ap: rand_string(&mut next),
                request_id: (next() % 2 == 0).then(|| next() as u64),
            },
            2 => WireRequest::Locate {
                mac: (next() % 2 == 0).then(|| rand_string(&mut next)),
                device: (next() % 2 == 0).then(|| DeviceId::new(next())),
                t,
                fine_mode: match next() % 3 {
                    0 => None,
                    1 => Some(FineMode::Independent),
                    _ => Some(FineMode::Dependent),
                },
                cache: match next() % 3 {
                    0 => None,
                    1 => Some(CacheMode::Enabled),
                    _ => Some(CacheMode::Disabled),
                },
            },
            3 => WireRequest::IngestBatch {
                events: (0..next() % 4)
                    .map(|i| RawEvent::new(rand_string(&mut next), i as i64, "wap"))
                    .collect(),
                request_id: (next() % 2 == 0).then(|| next() as u64),
            },
            _ => WireRequest::Snapshot {
                path: rand_string(&mut next),
            },
        };
        let line = encode_request(&request);
        assert!(!line.contains('\n'));
        assert_eq!(decode_request(&line).unwrap(), request);
    }
}

/// Malformed frames decode to structured parse errors — never a panic, and
/// the reported column points into the offending line where known.
#[test]
fn malformed_frames_yield_structured_parse_errors() {
    let cases: &[&str] = &[
        "",
        "   ",
        "not json at all",
        "{",
        "}",
        "{\"Locate\"",
        "{\"Locate\":}",
        "{\"Locate\":{\"t\":}}",
        "{\"Locate\":{\"t\":1,}}",
        "{\"Locate\":{\"t\":\"high noon\"}}",
        "{\"Locate\":{}}",
        "{\"Ingest\":{\"mac\":\"aa\"}}",
        "{\"Ingest\":[1,2]}",
        "\"NotAVariant\"",
        "{\"NotAVariant\":{}}",
        "{\"Locate\":{\"t\":1},\"Stats\":null}",
        "[\"Ping\"]",
        "123",
        "null",
        "true",
        "\"Ping\" \"Ping\"",
        "{\"Ingest\":{\"mac\":\"aa\",\"t\":99999999999999999999999999999999999999999,\"ap\":\"w\"}}",
        "{\"Locate\":{\"t\":1e309}}",
        "\"unterminated",
        "{\"Snapshot\":{\"path\":\"\\q\"}}",
    ];
    for &case in cases {
        match decode_request(case) {
            Err(WireError::Parse { .. }) => {}
            other => panic!("frame {case:?} produced {other:?}, expected a parse error"),
        }
        match decode_response(case) {
            Err(WireError::Parse { .. }) => {}
            other => panic!("response frame {case:?} produced {other:?}"),
        }
    }
}
