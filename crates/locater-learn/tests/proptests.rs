//! Property-based tests for the learning substrate.

use locater_learn::{Dataset, LogisticRegression, StandardScaler, TrainConfig};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..5, 2usize..4, 4usize..40).prop_flat_map(|(nf, nc, n)| {
        (
            Just(nf),
            Just(nc),
            prop::collection::vec((prop::collection::vec(-10.0f64..10.0, nf), 0usize..nc), n),
        )
            .prop_map(|(nf, nc, rows)| {
                let mut d = Dataset::new(nf, nc);
                for (features, label) in rows {
                    d.push(features, label);
                }
                d
            })
    })
}

proptest! {
    /// Softmax probabilities always form a distribution, whatever the training data.
    #[test]
    fn predicted_probabilities_form_a_distribution(data in arb_dataset(), probe in prop::collection::vec(-20.0f64..20.0, 2..5)) {
        let config = TrainConfig { epochs: 30, ..TrainConfig::default() };
        let model = LogisticRegression::fit(&data, &config).unwrap();
        let mut probe = probe;
        probe.resize(model.num_features(), 0.0);
        let p = model.predict_proba(&probe);
        prop_assert_eq!(p.len(), model.num_classes());
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v) && v.is_finite()));
    }

    /// Standardization maps the training rows to (approximately) zero mean.
    #[test]
    fn scaler_centers_training_data(data in arb_dataset()) {
        let scaler = StandardScaler::fit(&data);
        let nf = data.num_features();
        let mut sums = vec![0.0; nf];
        for (row, _) in data.iter() {
            let t = scaler.transform(row);
            for (s, v) in sums.iter_mut().zip(t) {
                *s += v;
            }
        }
        for s in sums {
            prop_assert!((s / data.len() as f64).abs() < 1e-6);
        }
    }

    /// Training never panics and accuracy is a valid fraction.
    #[test]
    fn accuracy_is_in_unit_interval(data in arb_dataset()) {
        let config = TrainConfig { epochs: 20, ..TrainConfig::default() };
        let model = LogisticRegression::fit(&data, &config).unwrap();
        let acc = model.accuracy(&data);
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}
