//! Semi-supervised self-training (paper §3, Algorithm 1).
//!
//! Starting from a heuristically labelled set `S_labeled` and an unlabelled set
//! `S_unlabeled`, the algorithm repeatedly:
//!
//! 1. trains a logistic-regression classifier on `S_labeled`;
//! 2. predicts a label and a confidence (variance of the class-probability array) for
//!    every element of `S_unlabeled`;
//! 3. moves the most confidently predicted element(s) into `S_labeled` with the
//!    predicted label;
//!
//! until `S_unlabeled` is empty, and returns the classifier trained in the last round.
//!
//! The paper promotes exactly one gap per round; with thousands of gaps that costs a
//! full retraining per gap, so [`SelfTrainingConfig::promote_per_round`] makes the
//! batch size configurable (1 reproduces the paper exactly and is the default).

use crate::dataset::Dataset;
use crate::error::LearnError;
use crate::logistic::{LogisticRegression, TrainConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the self-training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelfTrainingConfig {
    /// Training hyper-parameters used in every round.
    pub train: TrainConfig,
    /// Number of unlabelled samples promoted per round (paper: 1).
    pub promote_per_round: usize,
    /// Safety bound on the number of rounds (the loop otherwise ends when the
    /// unlabelled pool is exhausted).
    pub max_rounds: usize,
}

impl Default for SelfTrainingConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            promote_per_round: 1,
            max_rounds: 10_000,
        }
    }
}

/// Summary of a finished self-training run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelfTrainingReport {
    /// Number of training rounds executed.
    pub rounds: usize,
    /// Number of samples that started labelled.
    pub initially_labeled: usize,
    /// Number of unlabelled samples promoted by the loop.
    pub promoted: usize,
}

/// The classifier produced by Algorithm 1, together with the labels it assigned to the
/// initially unlabelled samples.
#[derive(Debug, Clone)]
pub struct SelfTrainingClassifier {
    model: LogisticRegression,
    assigned_labels: Vec<usize>,
    report: SelfTrainingReport,
}

impl SelfTrainingClassifier {
    /// Runs Algorithm 1.
    ///
    /// `labeled` is `S_labeled`; `unlabeled` are the feature vectors of `S_unlabeled`
    /// (same dimensionality). Returns an error if `labeled` is empty.
    pub fn train(
        labeled: &Dataset,
        unlabeled: &[Vec<f64>],
        config: &SelfTrainingConfig,
    ) -> Result<Self, LearnError> {
        if labeled.is_empty() {
            return Err(LearnError::EmptyDataset);
        }
        let mut working = labeled.clone();
        let mut pool: Vec<(usize, Vec<f64>)> = unlabeled.iter().cloned().enumerate().collect();
        let mut assigned_labels = vec![0usize; unlabeled.len()];
        let mut model = LogisticRegression::fit(&working, &config.train)?;
        let mut rounds = 0usize;
        let promote = config.promote_per_round.max(1);

        while !pool.is_empty() && rounds < config.max_rounds {
            rounds += 1;
            // Score every unlabelled sample with the current model.
            let mut scored: Vec<(usize, f64, usize)> = pool
                .iter()
                .enumerate()
                .map(|(pool_idx, (_, features))| {
                    let prediction = model.predict(features);
                    (pool_idx, prediction.variance(), prediction.label)
                })
                .collect();
            // Highest confidence (variance) first.
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let take = promote.min(scored.len());
            // Remove promoted items from the pool in descending pool-index order so the
            // indices stay valid while swapping out.
            let mut chosen: Vec<(usize, usize)> = scored[..take]
                .iter()
                .map(|&(pool_idx, _, label)| (pool_idx, label))
                .collect();
            chosen.sort_by_key(|&(pool_idx, _)| std::cmp::Reverse(pool_idx));
            for (pool_idx, label) in chosen {
                let (original_idx, features) = pool.swap_remove(pool_idx);
                assigned_labels[original_idx] = label;
                working.push(features, label);
            }
            model = LogisticRegression::fit(&working, &config.train)?;
        }

        let promoted = unlabeled.len() - pool.len();
        Ok(Self {
            model,
            assigned_labels,
            report: SelfTrainingReport {
                rounds,
                initially_labeled: labeled.len(),
                promoted,
            },
        })
    }

    /// The classifier trained in the final round.
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }

    /// Labels assigned to the initially unlabelled samples, in their original order.
    pub fn assigned_labels(&self) -> &[usize] {
        &self.assigned_labels
    }

    /// Run statistics.
    pub fn report(&self) -> &SelfTrainingReport {
        &self.report
    }

    /// Convenience: predicts the class of a new feature vector with the final model.
    pub fn predict(&self, features: &[f64]) -> usize {
        self.model.predict(features).label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters; only a few points are labelled.
    fn clustered_problem() -> (Dataset, Vec<Vec<f64>>, Vec<usize>) {
        let mut labeled = Dataset::new(2, 2);
        labeled.push(vec![0.0, 0.0], 0);
        labeled.push(vec![0.2, 0.1], 0);
        labeled.push(vec![5.0, 5.0], 1);
        labeled.push(vec![5.2, 4.9], 1);
        let mut unlabeled = Vec::new();
        let mut truth = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.05;
            unlabeled.push(vec![0.1 + jitter, 0.2 + jitter]);
            truth.push(0);
            unlabeled.push(vec![4.9 - jitter, 5.1 - jitter]);
            truth.push(1);
        }
        (labeled, unlabeled, truth)
    }

    #[test]
    fn self_training_labels_clusters_correctly() {
        let (labeled, unlabeled, truth) = clustered_problem();
        let clf =
            SelfTrainingClassifier::train(&labeled, &unlabeled, &SelfTrainingConfig::default())
                .unwrap();
        let correct = clf
            .assigned_labels()
            .iter()
            .zip(&truth)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct as f64 / truth.len() as f64 > 0.95);
        assert_eq!(clf.report().initially_labeled, 4);
        assert_eq!(clf.report().promoted, unlabeled.len());
        assert_eq!(clf.report().rounds, unlabeled.len()); // one promotion per round
    }

    #[test]
    fn batched_promotion_takes_fewer_rounds() {
        let (labeled, unlabeled, _) = clustered_problem();
        let config = SelfTrainingConfig {
            promote_per_round: 8,
            ..SelfTrainingConfig::default()
        };
        let clf = SelfTrainingClassifier::train(&labeled, &unlabeled, &config).unwrap();
        assert!(clf.report().rounds <= unlabeled.len() / 8 + 1);
        assert_eq!(clf.report().promoted, unlabeled.len());
    }

    #[test]
    fn no_unlabeled_data_still_trains_a_model() {
        let (labeled, _, _) = clustered_problem();
        let clf =
            SelfTrainingClassifier::train(&labeled, &[], &SelfTrainingConfig::default()).unwrap();
        assert_eq!(clf.report().rounds, 0);
        assert_eq!(clf.report().promoted, 0);
        assert_eq!(clf.predict(&[0.0, 0.1]), 0);
        assert_eq!(clf.predict(&[5.0, 5.0]), 1);
    }

    #[test]
    fn empty_labeled_set_is_an_error() {
        let err = SelfTrainingClassifier::train(
            &Dataset::new(2, 2),
            &[vec![1.0, 2.0]],
            &SelfTrainingConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, LearnError::EmptyDataset);
    }

    #[test]
    fn max_rounds_bounds_the_loop() {
        let (labeled, unlabeled, _) = clustered_problem();
        let config = SelfTrainingConfig {
            max_rounds: 3,
            ..SelfTrainingConfig::default()
        };
        let clf = SelfTrainingClassifier::train(&labeled, &unlabeled, &config).unwrap();
        assert_eq!(clf.report().rounds, 3);
        assert_eq!(clf.report().promoted, 3);
    }
}
