//! # locater-learn
//!
//! The learning substrate used by LOCATER's coarse-grained localization (paper §3).
//!
//! The paper trains, per device, two **logistic regression** classifiers over gap
//! feature vectors — one that decides whether the device is *inside or outside* the
//! building during a gap, one that decides *which region* it is in when inside — and
//! grows their training sets with a **semi-supervised self-training loop**
//! (Algorithm 1): starting from heuristically (bootstrap) labelled gaps, the
//! classifier is retrained repeatedly, each round promoting the unlabeled gap it is
//! most confident about (confidence = variance of the predicted class-probability
//! array) into the labelled set.
//!
//! This crate provides exactly that machinery, with no external ML dependency:
//!
//! * [`Dataset`] — dense `f64` feature matrix plus integer class labels.
//! * [`StandardScaler`] — per-feature standardization fitted on the training set.
//! * [`LogisticRegression`] — multinomial (softmax) logistic regression trained by
//!   batch gradient descent with L2 regularization; binary classification is the
//!   two-class special case.
//! * [`SelfTrainingClassifier`] — Algorithm 1, generic over the number of classes,
//!   with a configurable promotion batch size for large datasets.
//! * [`metrics`] — accuracy and confusion matrices used by the evaluation harness.
//!
//! ```
//! use locater_learn::{Dataset, LogisticRegression, TrainConfig};
//!
//! // A linearly separable toy problem: class = (x0 + x1 > 1.0).
//! let mut data = Dataset::new(2, 2);
//! for i in 0..40 {
//!     let x0 = (i % 10) as f64 / 10.0;
//!     let x1 = (i / 10) as f64 / 4.0;
//!     data.push(vec![x0, x1], if x0 + x1 > 1.0 { 1 } else { 0 });
//! }
//! let model = LogisticRegression::fit(&data, &TrainConfig::default()).unwrap();
//! assert_eq!(model.predict(&[0.9, 0.9]).label, 1);
//! assert_eq!(model.predict(&[0.1, 0.1]).label, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod logistic;
pub mod metrics;
mod scaler;
mod semi;

pub use dataset::Dataset;
pub use error::LearnError;
pub use logistic::{LogisticRegression, Prediction, TrainConfig};
pub use scaler::StandardScaler;
pub use semi::{SelfTrainingClassifier, SelfTrainingConfig, SelfTrainingReport};
