//! Per-feature standardization.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Standardizes features to zero mean and unit variance, fitted on a training set.
///
/// Gap feature vectors mix very different scales (seconds-of-day up to 86,400,
/// day-of-week in 0..7, densities below 1); gradient-descent logistic regression needs
/// them on comparable scales to converge in a reasonable number of epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on a dataset.
    pub fn fit(data: &Dataset) -> Self {
        let nf = data.num_features();
        let n = data.len().max(1) as f64;
        let mut means = vec![0.0; nf];
        for (row, _) in data.iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; nf];
        for (row, _) in data.iter() {
            for ((var, &m), &v) in vars.iter_mut().zip(&means).zip(row) {
                let d = v - m;
                *var += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Identity scaler for `num_features` features (useful when features are already
    /// normalized).
    pub fn identity(num_features: usize) -> Self {
        Self {
            means: vec![0.0; num_features],
            stds: vec![1.0; num_features],
        }
    }

    /// Number of features this scaler was fitted for.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Standardizes a single feature vector in place.
    pub fn transform_in_place(&self, row: &mut [f64]) {
        for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Returns a standardized copy of a feature vector.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.transform_in_place(&mut out);
        out
    }

    /// Standardizes every row of a dataset in place.
    pub fn transform_dataset(&self, data: &mut Dataset) {
        data.transform_rows(|row| self.transform_in_place(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(2, 2);
        d.push(vec![0.0, 100.0], 0);
        d.push(vec![2.0, 200.0], 1);
        d.push(vec![4.0, 300.0], 0);
        d
    }

    #[test]
    fn fitted_scaler_centers_and_scales() {
        let data = sample();
        let scaler = StandardScaler::fit(&data);
        let t = scaler.transform(&[2.0, 200.0]);
        assert!(t[0].abs() < 1e-12);
        assert!(t[1].abs() < 1e-12);
        let t = scaler.transform(&[4.0, 300.0]);
        assert!(t[0] > 0.0 && t[1] > 0.0);
        let t = scaler.transform(&[0.0, 100.0]);
        assert!(t[0] < 0.0 && t[1] < 0.0);
    }

    #[test]
    fn transformed_dataset_has_zero_mean_unit_variance() {
        let mut data = sample();
        let scaler = StandardScaler::fit(&data);
        scaler.transform_dataset(&mut data);
        for f in 0..2 {
            let mean: f64 =
                (0..data.len()).map(|i| data.row(i)[f]).sum::<f64>() / data.len() as f64;
            let var: f64 = (0..data.len())
                .map(|i| (data.row(i)[f] - mean).powi(2))
                .sum::<f64>()
                / data.len() as f64;
            assert!(mean.abs() < 1e-9, "feature {f} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "feature {f} var {var}");
        }
    }

    #[test]
    fn constant_features_do_not_divide_by_zero() {
        let mut d = Dataset::new(1, 2);
        d.push(vec![5.0], 0);
        d.push(vec![5.0], 1);
        let scaler = StandardScaler::fit(&d);
        let t = scaler.transform(&[5.0]);
        assert!(t[0].is_finite());
        assert!(t[0].abs() < 1e-12);
    }

    #[test]
    fn identity_scaler_is_noop() {
        let scaler = StandardScaler::identity(3);
        assert_eq!(scaler.num_features(), 3);
        assert_eq!(scaler.transform(&[1.0, -2.0, 3.5]), vec![1.0, -2.0, 3.5]);
    }
}
