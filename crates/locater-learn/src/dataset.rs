//! Dense labelled datasets.

use crate::error::LearnError;
use serde::{Deserialize, Serialize};

/// A dense labelled dataset: `n` rows of `num_features` `f64` features and one class
/// label in `0..num_classes` per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    num_features: usize,
    num_classes: usize,
    features: Vec<f64>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset for `num_features` features and `num_classes` classes.
    pub fn new(num_features: usize, num_classes: usize) -> Self {
        Self {
            num_features,
            num_classes: num_classes.max(2),
            features: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per row.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Appends a row. Panics on dimension mismatch in debug builds; use
    /// [`Dataset::try_push`] for checked insertion.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        self.try_push(features, label).expect("invalid row");
    }

    /// Appends a row, validating dimensionality and label range.
    pub fn try_push(&mut self, features: Vec<f64>, label: usize) -> Result<(), LearnError> {
        if features.len() != self.num_features {
            return Err(LearnError::DimensionMismatch {
                expected: self.num_features,
                got: features.len(),
            });
        }
        if label >= self.num_classes {
            return Err(LearnError::InvalidLabel {
                label,
                num_classes: self.num_classes,
            });
        }
        self.features.extend_from_slice(&features);
        self.labels.push(label);
        Ok(())
    }

    /// The feature row at `index`.
    pub fn row(&self, index: usize) -> &[f64] {
        let start = index * self.num_features;
        &self.features[start..start + self.num_features]
    }

    /// The label of row `index`.
    pub fn label(&self, index: usize) -> usize {
        self.labels[index]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates over `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> + '_ {
        (0..self.len()).map(move |i| (self.row(i), self.label(i)))
    }

    /// Number of rows per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &label in &self.labels {
            counts[label] += 1;
        }
        counts
    }

    /// `true` if at least two distinct classes appear in the data.
    pub fn has_multiple_classes(&self) -> bool {
        self.class_counts().iter().filter(|&&c| c > 0).count() >= 2
    }

    /// Applies a function to every feature row in place (used by the scaler).
    pub fn transform_rows(&mut self, mut f: impl FnMut(&mut [f64])) {
        for i in 0..self.labels.len() {
            let start = i * self.num_features;
            f(&mut self.features[start..start + self.num_features]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access_rows() {
        let mut d = Dataset::new(2, 3);
        d.push(vec![1.0, 2.0], 0);
        d.push(vec![3.0, 4.0], 2);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.row(0), &[1.0, 2.0]);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.label(1), 2);
        assert_eq!(d.labels(), &[0, 2]);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_classes(), 3);
    }

    #[test]
    fn try_push_validates_dimensions_and_labels() {
        let mut d = Dataset::new(2, 2);
        assert!(matches!(
            d.try_push(vec![1.0], 0),
            Err(LearnError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            d.try_push(vec![1.0, 2.0], 5),
            Err(LearnError::InvalidLabel {
                label: 5,
                num_classes: 2
            })
        ));
        assert!(d.try_push(vec![1.0, 2.0], 1).is_ok());
    }

    #[test]
    fn class_counts_and_multiplicity() {
        let mut d = Dataset::new(1, 3);
        d.push(vec![0.0], 0);
        d.push(vec![1.0], 0);
        d.push(vec![2.0], 2);
        assert_eq!(d.class_counts(), vec![2, 0, 1]);
        assert!(d.has_multiple_classes());

        let mut single = Dataset::new(1, 2);
        single.push(vec![0.0], 1);
        assert!(!single.has_multiple_classes());
    }

    #[test]
    fn minimum_two_classes_enforced() {
        let d = Dataset::new(3, 0);
        assert_eq!(d.num_classes(), 2);
    }

    #[test]
    fn iter_yields_rows_in_order() {
        let mut d = Dataset::new(1, 2);
        d.push(vec![5.0], 1);
        d.push(vec![6.0], 0);
        let collected: Vec<(f64, usize)> = d.iter().map(|(r, l)| (r[0], l)).collect();
        assert_eq!(collected, vec![(5.0, 1), (6.0, 0)]);
    }

    #[test]
    fn transform_rows_mutates_in_place() {
        let mut d = Dataset::new(2, 2);
        d.push(vec![1.0, 2.0], 0);
        d.push(vec![3.0, 4.0], 1);
        d.transform_rows(|row| {
            for v in row.iter_mut() {
                *v *= 10.0;
            }
        });
        assert_eq!(d.row(0), &[10.0, 20.0]);
        assert_eq!(d.row(1), &[30.0, 40.0]);
    }
}
