//! Classifier evaluation metrics.

use serde::{Deserialize, Serialize};

/// A confusion matrix over `n` classes: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    num_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `num_classes` classes.
    pub fn new(num_classes: usize) -> Self {
        Self {
            num_classes,
            counts: vec![0; num_classes * num_classes],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.counts[truth * self.num_classes + predicted] += 1;
    }

    /// Number of observations with `truth` and `predicted`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.num_classes + predicted]
    }

    /// Total number of observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of observations on the diagonal.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.num_classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class: `TP / (TP + FP)`. Returns 0 when the class was never
    /// predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let predicted: u64 = (0..self.num_classes).map(|t| self.count(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of one class: `TP / (TP + FN)`. Returns 0 when the class never occurred.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let actual: u64 = (0..self.num_classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// Macro-averaged F1 score over all classes.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        for c in 0..self.num_classes {
            let p = self.precision(c);
            let r = self.recall(c);
            sum += if p + r > 0.0 {
                2.0 * p * r / (p + r)
            } else {
                0.0
            };
        }
        sum / self.num_classes as f64
    }
}

/// Plain accuracy of a sequence of `(truth, predicted)` pairs.
pub fn accuracy(pairs: &[(usize, usize)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().filter(|(t, p)| t == p).count() as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 0);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(0, 1), 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let mut m = ConfusionMatrix::new(2);
        // class 1: TP=3, FP=1, FN=2
        for _ in 0..3 {
            m.record(1, 1);
        }
        m.record(0, 1);
        for _ in 0..2 {
            m.record(1, 0);
        }
        for _ in 0..4 {
            m.record(0, 0);
        }
        assert!((m.precision(1) - 0.75).abs() < 1e-12);
        assert!((m.recall(1) - 0.6).abs() < 1e-12);
        assert!(m.macro_f1() > 0.0 && m.macro_f1() < 1.0);
    }

    #[test]
    fn degenerate_cases_return_zero() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(0), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(accuracy(&[]), 0.0);
    }

    #[test]
    fn plain_accuracy() {
        assert!((accuracy(&[(0, 0), (1, 1), (1, 0), (2, 2)]) - 0.75).abs() < 1e-12);
    }
}
