//! Error type for the learning substrate.

use std::fmt;

/// Errors produced while assembling datasets or training models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// The dataset is empty.
    EmptyDataset,
    /// A feature vector had the wrong dimensionality.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Number of features actually provided.
        got: usize,
    },
    /// A label was outside `0..num_classes`.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes of the dataset.
        num_classes: usize,
    },
    /// Training diverged (non-finite loss), typically caused by non-finite features.
    Diverged,
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            LearnError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {got}"
                )
            }
            LearnError::InvalidLabel { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            LearnError::Diverged => write!(f, "training diverged (non-finite loss)"),
        }
    }
}

impl std::error::Error for LearnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = LearnError::DimensionMismatch {
            expected: 3,
            got: 5,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
        let e = LearnError::InvalidLabel {
            label: 9,
            num_classes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(LearnError::EmptyDataset.to_string().contains("empty"));
        assert!(LearnError::Diverged.to_string().contains("diverged"));
    }
}
