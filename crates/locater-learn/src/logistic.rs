//! Multinomial (softmax) logistic regression trained by batch gradient descent.
//!
//! The paper's coarse-grained localization trains logistic-regression classifiers over
//! gap feature vectors (§3). We implement the multinomial form; the inside/outside
//! classifier is simply the two-class case. No external linear-algebra dependency is
//! used: the model is small (≲10 features, ≲1 + |G| classes) and dense loops are fast
//! enough (performance-book guidance: keep the inner loop allocation-free).

use crate::dataset::Dataset;
use crate::error::LearnError;
use crate::scaler::StandardScaler;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for gradient-descent training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate. Default 0.1.
    pub learning_rate: f64,
    /// Number of full-batch epochs. Default 200.
    pub epochs: usize,
    /// L2 regularization strength. Default 1e-3.
    pub l2: f64,
    /// Whether to fit a [`StandardScaler`] on the training data. Default `true`.
    pub standardize: bool,
    /// Early-stopping tolerance on the training loss improvement. Default 1e-7.
    pub tolerance: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            epochs: 200,
            l2: 1e-3,
            standardize: true,
            tolerance: 1e-7,
        }
    }
}

/// Result of classifying one feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The most probable class.
    pub label: usize,
    /// Class probabilities (sum to 1).
    pub probabilities: Vec<f64>,
}

impl Prediction {
    /// Probability of the predicted class.
    pub fn confidence(&self) -> f64 {
        self.probabilities[self.label]
    }

    /// Variance of the probability array. The paper's Algorithm 1 uses this as the
    /// prediction-confidence score for self-training: a peaked distribution (high
    /// variance) means the classifier is sure of its label.
    pub fn variance(&self) -> f64 {
        let n = self.probabilities.len() as f64;
        let mean = 1.0 / n;
        self.probabilities
            .iter()
            .map(|p| (p - mean).powi(2))
            .sum::<f64>()
            / n
    }
}

/// A trained multinomial logistic regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    num_features: usize,
    num_classes: usize,
    /// Row-major `[num_classes × num_features]` weight matrix.
    weights: Vec<f64>,
    biases: Vec<f64>,
    scaler: StandardScaler,
}

impl LogisticRegression {
    /// Trains a model on `data` with the given configuration.
    pub fn fit(data: &Dataset, config: &TrainConfig) -> Result<Self, LearnError> {
        if data.is_empty() {
            return Err(LearnError::EmptyDataset);
        }
        let nf = data.num_features();
        let nc = data.num_classes();
        let scaler = if config.standardize {
            StandardScaler::fit(data)
        } else {
            StandardScaler::identity(nf)
        };

        let n = data.len() as f64;
        let mut weights = vec![0.0; nc * nf];
        let mut biases = vec![0.0; nc];
        let mut grad_w = vec![0.0; nc * nf];
        let mut grad_b = vec![0.0; nc];
        let mut probs = vec![0.0; nc];
        let mut scaled_row = vec![0.0; nf];
        let mut prev_loss = f64::INFINITY;

        for _ in 0..config.epochs {
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            grad_b.iter_mut().for_each(|g| *g = 0.0);
            let mut loss = 0.0;

            for (row, label) in data.iter() {
                scaled_row.copy_from_slice(row);
                scaler.transform_in_place(&mut scaled_row);
                softmax_into(&weights, &biases, &scaled_row, nf, nc, &mut probs);
                if !probs[label].is_finite() {
                    return Err(LearnError::Diverged);
                }
                loss -= (probs[label].max(1e-15)).ln();
                for c in 0..nc {
                    let err = probs[c] - if c == label { 1.0 } else { 0.0 };
                    grad_b[c] += err;
                    let wrow = &mut grad_w[c * nf..(c + 1) * nf];
                    for (g, &x) in wrow.iter_mut().zip(&scaled_row) {
                        *g += err * x;
                    }
                }
            }

            if !loss.is_finite() {
                return Err(LearnError::Diverged);
            }
            // L2 penalty and parameter update.
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= config.learning_rate * (g / n + config.l2 * *w);
            }
            for (b, g) in biases.iter_mut().zip(&grad_b) {
                *b -= config.learning_rate * (g / n);
            }
            let avg_loss = loss / n;
            if (prev_loss - avg_loss).abs() < config.tolerance {
                break;
            }
            prev_loss = avg_loss;
        }

        Ok(Self {
            num_features: nf,
            num_classes: nc,
            weights,
            biases,
            scaler,
        })
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Class probabilities for one feature vector.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        debug_assert_eq!(features.len(), self.num_features);
        let scaled = self.scaler.transform(features);
        let mut probs = vec![0.0; self.num_classes];
        softmax_into(
            &self.weights,
            &self.biases,
            &scaled,
            self.num_features,
            self.num_classes,
            &mut probs,
        );
        probs
    }

    /// Predicts the most probable class along with the full probability array.
    pub fn predict(&self, features: &[f64]) -> Prediction {
        let probabilities = self.predict_proba(features);
        let label = argmax(&probabilities);
        Prediction {
            label,
            probabilities,
        }
    }

    /// Accuracy over a labelled dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|(row, label)| self.predict(row).label == *label)
            .count();
        correct as f64 / data.len() as f64
    }
}

fn softmax_into(weights: &[f64], biases: &[f64], x: &[f64], nf: usize, nc: usize, out: &mut [f64]) {
    let mut max_logit = f64::NEG_INFINITY;
    for c in 0..nc {
        let wrow = &weights[c * nf..(c + 1) * nf];
        let logit: f64 = biases[c] + wrow.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        out[c] = logit;
        if logit > max_logit {
            max_logit = logit;
        }
    }
    let mut sum = 0.0;
    for o in out.iter_mut() {
        *o = (*o - max_logit).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_binary() -> Dataset {
        let mut d = Dataset::new(2, 2);
        for i in 0..50 {
            let x = i as f64 / 50.0;
            d.push(vec![x, 0.3], 0);
            d.push(vec![x + 2.0, 0.7], 1);
        }
        d
    }

    #[test]
    fn learns_a_separable_binary_problem() {
        let data = separable_binary();
        let model = LogisticRegression::fit(&data, &TrainConfig::default()).unwrap();
        assert!(model.accuracy(&data) > 0.95);
        assert_eq!(model.predict(&[0.2, 0.3]).label, 0);
        assert_eq!(model.predict(&[2.5, 0.7]).label, 1);
        assert_eq!(model.num_classes(), 2);
        assert_eq!(model.num_features(), 2);
    }

    #[test]
    fn learns_a_three_class_problem() {
        let mut d = Dataset::new(2, 3);
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.01;
            d.push(vec![0.0 + jitter, 0.0], 0);
            d.push(vec![5.0 + jitter, 0.0], 1);
            d.push(vec![0.0 + jitter, 5.0], 2);
        }
        let model = LogisticRegression::fit(&d, &TrainConfig::default()).unwrap();
        assert!(model.accuracy(&d) > 0.95);
        assert_eq!(model.predict(&[0.1, 0.1]).label, 0);
        assert_eq!(model.predict(&[5.1, 0.2]).label, 1);
        assert_eq!(model.predict(&[0.2, 5.2]).label, 2);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = separable_binary();
        let model = LogisticRegression::fit(&data, &TrainConfig::default()).unwrap();
        let p = model.predict_proba(&[1.0, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let d = Dataset::new(2, 2);
        assert_eq!(
            LogisticRegression::fit(&d, &TrainConfig::default()).unwrap_err(),
            LearnError::EmptyDataset
        );
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let mut d = Dataset::new(1, 2);
        for i in 0..10 {
            d.push(vec![i as f64], 1);
        }
        let model = LogisticRegression::fit(&d, &TrainConfig::default()).unwrap();
        assert_eq!(model.predict(&[3.0]).label, 1);
    }

    #[test]
    fn prediction_confidence_and_variance() {
        let data = separable_binary();
        let model = LogisticRegression::fit(&data, &TrainConfig::default()).unwrap();
        let sure = model.predict(&[3.0, 0.7]);
        let unsure = model.predict(&[1.2, 0.5]);
        assert!(sure.confidence() > unsure.confidence());
        assert!(sure.variance() > unsure.variance());
        // Variance of a uniform distribution is 0.
        let uniform = Prediction {
            label: 0,
            probabilities: vec![0.5, 0.5],
        };
        assert!(uniform.variance() < 1e-12);
    }

    #[test]
    fn non_finite_features_cause_divergence_error() {
        let mut d = Dataset::new(1, 2);
        d.push(vec![f64::NAN], 0);
        d.push(vec![1.0], 1);
        let config = TrainConfig {
            standardize: false,
            ..TrainConfig::default()
        };
        assert_eq!(
            LogisticRegression::fit(&d, &config).unwrap_err(),
            LearnError::Diverged
        );
    }

    #[test]
    fn accuracy_of_empty_dataset_is_zero() {
        let data = separable_binary();
        let model = LogisticRegression::fit(&data, &TrainConfig::default()).unwrap();
        assert_eq!(model.accuracy(&Dataset::new(2, 2)), 0.0);
    }
}
