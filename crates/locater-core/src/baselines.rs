//! The evaluation baselines (paper §6.1).
//!
//! Traditional indoor localization systems are either *active* (require an app on the
//! device) or rely on signal-strength maps; neither applies to cleaning raw
//! association logs, so the paper defines two practical baselines that consume the
//! same inputs LOCATER does:
//!
//! * **Coarse-Baseline** — shared by both: a device is considered *outside* if the gap
//!   it is in lasts at least one hour, and otherwise *inside*, in the last region it
//!   was seen in.
//! * **Baseline1** = Coarse-Baseline + **Fine-Baseline1**: the room is drawn uniformly
//!   at random from the candidate rooms of the region.
//! * **Baseline2** = Coarse-Baseline + **Fine-Baseline2**: the room is the one
//!   associated with the user in the space metadata (their office / preferred room),
//!   falling back to the first candidate room when the metadata room is not covered by
//!   the region.

use crate::coarse::CoarseMethod;
use crate::system::{Answer, Location};
use locater_events::clock::{self, Timestamp};
use locater_events::DeviceId;
use locater_space::RegionId;
use locater_store::EventStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A localization system comparable with LOCATER on the same query interface.
///
/// The trait is object-safe so the evaluation harness can iterate over a
/// heterogeneous list of systems (`Vec<Box<dyn BaselineSystem>>`).
pub trait BaselineSystem {
    /// Human-readable system name ("Baseline1", "Baseline2", …).
    fn name(&self) -> &str;

    /// Answers the query `Q = (device, t_q)` against `store`.
    fn locate(&mut self, store: &EventStore, device: DeviceId, t_q: Timestamp) -> Answer;
}

/// The shared coarse baseline: outside if the containing gap is at least
/// `outside_threshold` long, otherwise inside the last known region.
fn coarse_baseline(
    store: &EventStore,
    device: DeviceId,
    t_q: Timestamp,
    outside_threshold: Timestamp,
) -> (Option<RegionId>, CoarseMethod) {
    if let Some(region) = store.covering_region(device, t_q) {
        return (Some(region), CoarseMethod::CoveredByEvent);
    }
    match store.gap_at(device, t_q) {
        Some(gap) if gap.duration() >= outside_threshold => {
            (None, CoarseMethod::BootstrapHeuristic)
        }
        Some(gap) => (Some(gap.start_region()), CoarseMethod::BootstrapHeuristic),
        None => (None, CoarseMethod::OutOfSpan),
    }
}

/// Baseline1: coarse baseline + a room chosen uniformly at random among the
/// candidates of the region.
#[derive(Debug, Clone)]
pub struct Baseline1 {
    outside_threshold: Timestamp,
    rng: StdRng,
}

impl Baseline1 {
    /// Creates the baseline with the paper's one-hour threshold and a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            outside_threshold: clock::hours(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the outside-gap threshold (defaults to one hour).
    pub fn with_threshold(mut self, threshold: Timestamp) -> Self {
        self.outside_threshold = threshold.max(1);
        self
    }
}

impl Default for Baseline1 {
    fn default() -> Self {
        Self::new(0x10CA7E5)
    }
}

impl BaselineSystem for Baseline1 {
    fn name(&self) -> &str {
        "Baseline1"
    }

    fn locate(&mut self, store: &EventStore, device: DeviceId, t_q: Timestamp) -> Answer {
        let (region, method) = coarse_baseline(store, device, t_q, self.outside_threshold);
        let location = match region {
            None => Location::Outside,
            Some(region) => {
                let candidates = store.space().rooms_in_region(region);
                if candidates.is_empty() {
                    Location::Region(region)
                } else {
                    let room = candidates[self.rng.gen_range(0..candidates.len())];
                    Location::Room { room, region }
                }
            }
        };
        Answer {
            device,
            t: t_q,
            location,
            coarse_method: method,
            confidence: 1.0,
        }
    }
}

/// Baseline2: coarse baseline + the user's metadata room (their office / preferred
/// room), falling back to the first candidate room of the region.
#[derive(Debug, Clone)]
pub struct Baseline2 {
    outside_threshold: Timestamp,
}

impl Baseline2 {
    /// Creates the baseline with the paper's one-hour threshold.
    pub fn new() -> Self {
        Self {
            outside_threshold: clock::hours(1),
        }
    }

    /// Overrides the outside-gap threshold (defaults to one hour).
    pub fn with_threshold(mut self, threshold: Timestamp) -> Self {
        self.outside_threshold = threshold.max(1);
        self
    }
}

impl Default for Baseline2 {
    fn default() -> Self {
        Self::new()
    }
}

impl BaselineSystem for Baseline2 {
    fn name(&self) -> &str {
        "Baseline2"
    }

    fn locate(&mut self, store: &EventStore, device: DeviceId, t_q: Timestamp) -> Answer {
        let (region, method) = coarse_baseline(store, device, t_q, self.outside_threshold);
        let location = match region {
            None => Location::Outside,
            Some(region) => {
                let space = store.space();
                let candidates = space.rooms_in_region(region);
                let mac = store.device(device).mac.as_str();
                let metadata_room = space
                    .preferred_rooms(mac)
                    .iter()
                    .copied()
                    .find(|room| candidates.contains(room));
                match metadata_room.or_else(|| candidates.first().copied()) {
                    Some(room) => Location::Room { room, region },
                    None => Location::Region(region),
                }
            }
        };
        Answer {
            device,
            t: t_q,
            location,
            coarse_method: method,
            confidence: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::{RoomType, Space, SpaceBuilder};

    fn space() -> Space {
        SpaceBuilder::new("baseline-test")
            .add_access_point("wap0", &["office-a", "office-b", "lounge"])
            .add_access_point("wap1", &["lab"])
            .room_type("lounge", RoomType::Public)
            .room_owner("office-a", "alice")
            .build()
            .unwrap()
    }

    fn store() -> EventStore {
        let mut store = EventStore::new(space());
        // Alice: events at 09:00 and 09:30 (short gap) and then nothing until 14:00
        // (long gap).
        store
            .ingest_raw("alice", clock::at(0, 9, 0, 0), "wap0")
            .unwrap();
        store
            .ingest_raw("alice", clock::at(0, 9, 30, 0), "wap0")
            .unwrap();
        store
            .ingest_raw("alice", clock::at(0, 14, 0, 0), "wap1")
            .unwrap();
        store
    }

    #[test]
    fn short_gap_stays_in_last_region_long_gap_goes_outside() {
        let store = store();
        let alice = store.device_id("alice").unwrap();
        let mut baseline = Baseline1::default();
        // 09:15 — inside the short gap → last region (wap0).
        let inside = baseline.locate(&store, alice, clock::at(0, 9, 15, 0));
        assert!(inside.is_inside());
        assert_eq!(inside.region(), Some(RegionId::new(0)));
        // 11:30 — inside the 4.5-hour gap → outside.
        let outside = baseline.locate(&store, alice, clock::at(0, 11, 30, 0));
        assert!(outside.is_outside());
        // Before any event → outside.
        let before = baseline.locate(&store, alice, 0);
        assert!(before.is_outside());
    }

    #[test]
    fn baseline1_picks_a_candidate_room_at_random_but_deterministically_per_seed() {
        let store = store();
        let alice = store.device_id("alice").unwrap();
        let t_q = clock::at(0, 9, 15, 0);
        let mut a = Baseline1::new(7);
        let mut b = Baseline1::new(7);
        let answers_a: Vec<_> = (0..10)
            .map(|i| a.locate(&store, alice, t_q + i).room())
            .collect();
        let answers_b: Vec<_> = (0..10)
            .map(|i| b.locate(&store, alice, t_q + i).room())
            .collect();
        assert_eq!(answers_a, answers_b);
        // Every answer is one of the region's candidate rooms.
        let candidates = store.space().rooms_in_region(RegionId::new(0));
        for room in answers_a.into_iter().flatten() {
            assert!(candidates.contains(&room));
        }
        assert_eq!(a.name(), "Baseline1");
    }

    #[test]
    fn baseline2_prefers_the_metadata_room() {
        let store = store();
        let alice = store.device_id("alice").unwrap();
        let mut baseline = Baseline2::default();
        let answer = baseline.locate(&store, alice, clock::at(0, 9, 15, 0));
        assert_eq!(
            answer.room(),
            Some(store.space().room_id("office-a").unwrap())
        );
        assert_eq!(baseline.name(), "Baseline2");
    }

    #[test]
    fn baseline2_falls_back_when_metadata_room_is_not_in_the_region() {
        let store = store();
        let alice = store.device_id("alice").unwrap();
        let mut baseline = Baseline2::default();
        // At 14:00 alice is covered by wap1 whose region does not contain office-a.
        let answer = baseline.locate(&store, alice, clock::at(0, 14, 0, 30));
        assert!(answer.is_inside());
        assert_eq!(answer.region(), Some(RegionId::new(1)));
        assert_eq!(answer.room(), Some(store.space().room_id("lab").unwrap()));
    }

    #[test]
    fn thresholds_are_configurable() {
        let store = store();
        let alice = store.device_id("alice").unwrap();
        // With a 10-minute threshold even the short gap counts as outside.
        let mut strict = Baseline1::default().with_threshold(clock::minutes(10));
        assert!(strict
            .locate(&store, alice, clock::at(0, 9, 15, 0))
            .is_outside());
        let mut strict2 = Baseline2::default().with_threshold(clock::minutes(10));
        assert!(strict2
            .locate(&store, alice, clock::at(0, 9, 15, 0))
            .is_outside());
    }

    #[test]
    fn baselines_work_through_the_trait_object() {
        let store = store();
        let alice = store.device_id("alice").unwrap();
        let mut systems: Vec<Box<dyn BaselineSystem>> = vec![
            Box::new(Baseline1::default()),
            Box::new(Baseline2::default()),
        ];
        for system in &mut systems {
            let answer = system.locate(&store, alice, clock::at(0, 9, 15, 0));
            assert!(answer.is_inside(), "{} should answer inside", system.name());
        }
    }
}
