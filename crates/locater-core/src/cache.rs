//! The caching engine (paper §5): local and global affinity graphs.
//!
//! Answering a fine-grained query requires computing pairwise device affinities —
//! scans over the devices' recent connectivity history. Those affinities change
//! slowly, so LOCATER caches them: every answered query produces a *local affinity
//! graph* (the queried device, its processed neighbors, and the edge weights
//! `Σ_j α({d_a, d_b}, r_j, t_q) / |R(g_x)|`), which is merged into a *global affinity
//! graph* whose edges carry a vector of `(weight, timestamp)` samples.
//!
//! Later queries use the global graph to decide the **order** in which neighbor
//! devices are processed: devices with a high (temporally weighted) cached affinity
//! are processed first, which makes the early-stop conditions of Algorithm 2 trigger
//! sooner (Fig. 10 / Fig. 12 of the evaluation).

use crate::fine::NeighborContribution;
use locater_events::clock::Timestamp;
use locater_events::DeviceId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Canonical (unordered) edge key between two devices.
pub(crate) fn edge_key(a: DeviceId, b: DeviceId) -> (DeviceId, DeviceId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Ranks `candidates` by decreasing `weight`, breaking ties by input order —
/// the neighbor-ordering rule of §5, shared by the plain graph and the
/// epoch-aware cache so the two can never diverge.
pub(crate) fn rank_by_weight(
    candidates: &[DeviceId],
    weight: impl Fn(DeviceId) -> f64,
) -> Vec<DeviceId> {
    let mut scored: Vec<(usize, f64, DeviceId)> = candidates
        .iter()
        .enumerate()
        .map(|(idx, &device)| (idx, weight(device), device))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.into_iter().map(|(_, _, device)| device).collect()
}

/// One cached affinity sample on an edge of the global graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AffinitySample {
    /// Local-affinity-graph edge weight observed for this pair
    /// (`Σ_j α({d_a, d_b}, r_j, t_q) / |R(g_x)|`, §5).
    pub weight: f64,
    /// The pairwise device affinity `α({d_a, d_b})` computed for the same query; later
    /// queries reuse it instead of re-scanning the devices' histories.
    pub pair_affinity: f64,
    /// Query time the weight was observed at.
    pub t: Timestamp,
}

/// The global affinity graph `G_g = (V_g, E_g)` of §5.
///
/// Nodes are devices; each edge stores the vector of `(weight, timestamp)` pairs
/// accumulated from the local affinity graphs of past queries. Edge weights are
/// combined with a Gaussian kernel centred on the query time, so recent observations
/// dominate (`w(e, t_q) = Σ_j l_j w_j` with normalized Gaussian coefficients `l_j`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalAffinityGraph {
    edges: HashMap<(DeviceId, DeviceId), Vec<AffinitySample>>,
    /// Standard deviation, in seconds, of the temporal weighting kernel.
    temporal_sigma: f64,
    /// Upper bound on the number of samples kept per edge (oldest evicted first).
    max_samples_per_edge: usize,
}

impl Default for GlobalAffinityGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalAffinityGraph {
    /// Default temporal kernel width: one day. The paper uses a unit-variance normal;
    /// on our integer-second timeline a day-scale kernel expresses the same intent
    /// ("closer query times weigh more") at a meaningful scale.
    pub const DEFAULT_SIGMA_SECONDS: f64 = 86_400.0;

    /// Creates an empty graph with the default temporal kernel.
    pub fn new() -> Self {
        Self::with_sigma(Self::DEFAULT_SIGMA_SECONDS)
    }

    /// Creates an empty graph with a custom temporal kernel width (seconds).
    pub fn with_sigma(temporal_sigma: f64) -> Self {
        Self {
            edges: HashMap::new(),
            temporal_sigma: temporal_sigma.max(1.0),
            max_samples_per_edge: 64,
        }
    }

    /// Number of edges with at least one sample.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Total number of cached samples across all edges.
    pub fn num_samples(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// `true` if no affinities have been cached yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Records one affinity observation between `a` and `b` at time `t`: the local
    /// affinity-graph edge weight plus the pairwise device affinity it was derived
    /// from.
    pub fn record(
        &mut self,
        a: DeviceId,
        b: DeviceId,
        weight: f64,
        pair_affinity: f64,
        t: Timestamp,
    ) {
        if a == b {
            return;
        }
        let samples = self.edges.entry(edge_key(a, b)).or_default();
        samples.push(AffinitySample {
            weight: weight.clamp(0.0, 1.0),
            pair_affinity: pair_affinity.clamp(0.0, 1.0),
            t,
        });
        if samples.len() > self.max_samples_per_edge {
            samples.remove(0);
        }
    }

    /// Merges the local affinity graph of one answered query — the queried device
    /// `center` plus the contribution of every processed neighbor — into the global
    /// graph (§5, "Building global affinity graph").
    pub fn merge_local(
        &mut self,
        center: DeviceId,
        contributions: &[NeighborContribution],
        t: Timestamp,
    ) {
        for contribution in contributions {
            self.record(
                center,
                contribution.device,
                contribution.edge_weight,
                contribution.pair_affinity,
                t,
            );
        }
    }

    /// The samples cached for the pair `(a, b)`, if any.
    pub fn samples(&self, a: DeviceId, b: DeviceId) -> &[AffinitySample] {
        self.edges
            .get(&edge_key(a, b))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The temporally weighted cached affinity of the pair `(a, b)` around `t_q`:
    /// `Σ_j l_j w_j` where `l_j ∝ exp(−(t_j − t_q)² / 2σ²)` and the `l_j` are
    /// normalized to sum to 1. Returns 0 for unseen pairs.
    pub fn weight(&self, a: DeviceId, b: DeviceId, t_q: Timestamp) -> f64 {
        let samples = self.samples(a, b);
        if samples.is_empty() {
            return 0.0;
        }
        let two_sigma_sq = 2.0 * self.temporal_sigma * self.temporal_sigma;
        let mut kernel_total = 0.0;
        let mut weighted = 0.0;
        for sample in samples {
            let dt = (sample.t - t_q) as f64;
            let kernel = (-(dt * dt) / two_sigma_sq).exp();
            kernel_total += kernel;
            weighted += kernel * sample.weight;
        }
        if kernel_total <= 0.0 {
            // All samples are too far in time for the kernel to resolve: fall back to
            // a plain average so long-lived pairs are still ranked above unseen ones.
            samples.iter().map(|s| s.weight).sum::<f64>() / samples.len() as f64
        } else {
            weighted / kernel_total
        }
    }

    /// The temporally weighted cached *pairwise device affinity* of `(a, b)` around
    /// `t_q`, or `None` when the pair has never been cached. Used by the cleaning
    /// engine to skip recomputing device affinities for pairs answered recently
    /// (the "caches computations performed to answer queries" part of §5).
    pub fn cached_pair_affinity(&self, a: DeviceId, b: DeviceId, t_q: Timestamp) -> Option<f64> {
        let samples = self.samples(a, b);
        if samples.is_empty() {
            return None;
        }
        let two_sigma_sq = 2.0 * self.temporal_sigma * self.temporal_sigma;
        let mut kernel_total = 0.0;
        let mut weighted = 0.0;
        for sample in samples {
            let dt = (sample.t - t_q) as f64;
            let kernel = (-(dt * dt) / two_sigma_sq).exp();
            kernel_total += kernel;
            weighted += kernel * sample.pair_affinity;
        }
        if kernel_total <= 0.0 {
            Some(samples.iter().map(|s| s.pair_affinity).sum::<f64>() / samples.len() as f64)
        } else {
            Some(weighted / kernel_total)
        }
    }

    /// Orders candidate neighbor devices of `center` by decreasing cached affinity at
    /// `t_q` (§5, "Using global affinity graph"). Devices without cached samples rank
    /// last, keeping their relative input order.
    pub fn order_neighbors(
        &self,
        center: DeviceId,
        candidates: &[DeviceId],
        t_q: Timestamp,
    ) -> Vec<DeviceId> {
        rank_by_weight(candidates, |device| self.weight(center, device, t_q))
    }

    /// Removes every sample cached for the pair `(a, b)` (no-op for unseen
    /// pairs). Used by the epoch layer to evict edges whose inputs changed.
    pub fn evict_edge(&mut self, a: DeviceId, b: DeviceId) {
        self.edges.remove(&edge_key(a, b));
    }

    /// Moves every edge of `other` into this graph. The sharded service uses
    /// this to assemble the frozen union snapshot of a batch from the per-shard
    /// caches; edge sets are disjoint there (each edge lives in exactly one
    /// shard), so a duplicate edge simply takes `other`'s samples.
    pub fn absorb(&mut self, other: GlobalAffinityGraph) {
        for (key, samples) in other.edges {
            self.edges.insert(key, samples);
        }
    }

    /// Removes all cached samples.
    pub fn clear(&mut self) {
        self.edges.clear();
    }
}

/// A thread-safe, cheaply cloneable handle to a [`GlobalAffinityGraph`].
///
/// The benchmark harness shares one graph across query threads (crossbeam scoped
/// threads); `parking_lot::RwLock` keeps read-mostly access cheap.
#[derive(Debug, Clone, Default)]
pub struct SharedAffinityGraph {
    inner: Arc<RwLock<GlobalAffinityGraph>>,
}

impl SharedAffinityGraph {
    /// Creates an empty shared graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing graph.
    pub fn from_graph(graph: GlobalAffinityGraph) -> Self {
        Self {
            inner: Arc::new(RwLock::new(graph)),
        }
    }

    /// Runs `f` with shared (read) access to the graph.
    pub fn read<R>(&self, f: impl FnOnce(&GlobalAffinityGraph) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive (write) access to the graph.
    pub fn write<R>(&self, f: impl FnOnce(&mut GlobalAffinityGraph) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Number of edges currently cached.
    pub fn num_edges(&self) -> usize {
        self.inner.read().num_edges()
    }

    /// Total number of cached samples.
    pub fn num_samples(&self) -> usize {
        self.inner.read().num_samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::RegionId;

    fn contribution(device: u32, weight: f64) -> NeighborContribution {
        NeighborContribution {
            device: DeviceId::new(device),
            region: RegionId::new(0),
            pair_affinity: weight,
            edge_weight: weight,
        }
    }

    #[test]
    fn record_and_weight_roundtrip() {
        let mut graph = GlobalAffinityGraph::new();
        assert!(graph.is_empty());
        graph.record(DeviceId::new(1), DeviceId::new(2), 0.4, 0.6, 1_000);
        assert_eq!(graph.num_edges(), 1);
        assert_eq!(graph.num_samples(), 1);
        // Edge key is canonical: both directions see the same weight.
        let w_ab = graph.weight(DeviceId::new(1), DeviceId::new(2), 1_000);
        let w_ba = graph.weight(DeviceId::new(2), DeviceId::new(1), 1_000);
        assert!((w_ab - 0.4).abs() < 1e-9);
        assert_eq!(w_ab, w_ba);
        // Unknown pair → 0.
        assert_eq!(graph.weight(DeviceId::new(1), DeviceId::new(9), 1_000), 0.0);
    }

    #[test]
    fn self_edges_are_ignored_and_weights_clamped() {
        let mut graph = GlobalAffinityGraph::new();
        graph.record(DeviceId::new(3), DeviceId::new(3), 0.9, 0.9, 0);
        assert!(graph.is_empty());
        graph.record(DeviceId::new(1), DeviceId::new(2), 7.5, 7.5, 0);
        assert!(graph.weight(DeviceId::new(1), DeviceId::new(2), 0) <= 1.0);
    }

    #[test]
    fn temporal_weighting_prefers_nearby_samples() {
        let mut graph = GlobalAffinityGraph::with_sigma(3_600.0);
        let (a, b) = (DeviceId::new(1), DeviceId::new(2));
        graph.record(a, b, 0.9, 0.9, 0); // long ago
        graph.record(a, b, 0.1, 0.1, 1_000_000); // recent
        let near_recent = graph.weight(a, b, 1_000_100);
        let near_old = graph.weight(a, b, 100);
        assert!(
            near_recent < 0.2,
            "recent sample should dominate: {near_recent}"
        );
        assert!(
            near_old > 0.8,
            "old sample should dominate near its time: {near_old}"
        );
        // Query far from all samples falls back to the plain average.
        let far = graph.weight(a, b, 500_000);
        assert!((far - 0.5).abs() < 0.01);
    }

    #[test]
    fn merge_local_adds_edges_for_every_contribution() {
        let mut graph = GlobalAffinityGraph::new();
        let center = DeviceId::new(0);
        graph.merge_local(center, &[contribution(1, 0.4), contribution(2, 0.7)], 5_000);
        assert_eq!(graph.num_edges(), 2);
        assert!(
            graph.weight(center, DeviceId::new(2), 5_000)
                > graph.weight(center, DeviceId::new(1), 5_000)
        );
    }

    #[test]
    fn order_neighbors_ranks_by_cached_affinity() {
        let mut graph = GlobalAffinityGraph::new();
        let center = DeviceId::new(0);
        graph.record(center, DeviceId::new(5), 0.9, 0.9, 100);
        graph.record(center, DeviceId::new(7), 0.2, 0.2, 100);
        let order = graph.order_neighbors(
            center,
            &[DeviceId::new(7), DeviceId::new(3), DeviceId::new(5)],
            100,
        );
        assert_eq!(order[0], DeviceId::new(5));
        assert_eq!(order[1], DeviceId::new(7));
        assert_eq!(order[2], DeviceId::new(3)); // unseen device last
    }

    #[test]
    fn per_edge_sample_cap_evicts_oldest() {
        let mut graph = GlobalAffinityGraph::new();
        let (a, b) = (DeviceId::new(1), DeviceId::new(2));
        for i in 0..200 {
            graph.record(a, b, 0.5, 0.5, i);
        }
        assert!(graph.num_samples() <= 64);
        assert!(graph.samples(a, b).first().unwrap().t > 0);
    }

    #[test]
    fn clear_empties_the_graph() {
        let mut graph = GlobalAffinityGraph::new();
        graph.record(DeviceId::new(1), DeviceId::new(2), 0.5, 0.5, 0);
        graph.clear();
        assert!(graph.is_empty());
        assert_eq!(graph.num_samples(), 0);
    }

    #[test]
    fn shared_graph_supports_concurrent_readers() {
        let shared = SharedAffinityGraph::new();
        shared.write(|g| g.record(DeviceId::new(1), DeviceId::new(2), 0.6, 0.7, 10));
        assert_eq!(shared.num_edges(), 1);
        assert_eq!(shared.num_samples(), 1);

        let handles: Vec<_> = (0..4)
            .map(|_| {
                let graph = shared.clone();
                std::thread::spawn(move || {
                    graph.read(|g| g.weight(DeviceId::new(1), DeviceId::new(2), 10))
                })
            })
            .collect();
        for handle in handles {
            let w = handle.join().unwrap();
            assert!((w - 0.6).abs() < 1e-9);
        }
    }
}
