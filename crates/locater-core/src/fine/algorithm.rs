//! Algorithm 2: fine-grained localization with iterative neighbor processing.
//!
//! Given the region `g_x` the coarse step placed the queried device in, the algorithm
//! maintains a posterior over the candidate rooms `R(g_x)`, initialized from the room
//! affinities (§4.1) and updated with one *neighbor device* at a time. Neighbors are
//! devices online at the query time whose region overlaps `g_x`; each contributes its
//! group affinity with the queried device for every candidate room.
//!
//! ## Evidence smoothing
//!
//! The paper's Eq. 3 multiplies the raw group affinities into the posterior; taken
//! literally, a candidate room that lies outside the intersection `R_is` of the two
//! devices' regions would receive a hard zero and be eliminated by a single neighbor,
//! even when the pairwise device affinity (the probability the devices are together at
//! all) is small. We therefore fold in, per neighbor, the observation value
//!
//! ```text
//! obs(r_j) = (1 − α_pair) / |R(g_x)|  +  α({d_i, d_k}, r_j, t_q)
//! ```
//!
//! i.e. "with probability `1 − α_pair` the devices are not co-located and the neighbor
//! carries no information (uniform floor); with probability `α_pair` they are, and the
//! group affinity applies". This keeps the update monotone in the group affinity,
//! reduces to the paper's behaviour as `α_pair → 1`, and is documented as a deviation
//! in `DESIGN.md`.
//!
//! The independent variant (`I-FINE`) treats neighbors as conditionally independent;
//! the dependent variant (`D-FINE`) clusters neighbors that are themselves co-located
//! and folds in one observation per cluster, computed from the cluster's joint device
//! affinity (Eq. 6).

use crate::fine::affinity::{AffinityEngine, RoomAffinity, RoomAffinityMemo, RoomAffinityWeights};
use crate::fine::worlds::{stop_condition_met, PosteriorBounds, RoomPosterior};
use locater_events::clock::{self, Timestamp};
use locater_events::DeviceId;
use locater_space::{RegionId, RoomId};
use locater_store::EventRead;
use serde::{Deserialize, Serialize};

/// Which variant of Algorithm 2 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FineMode {
    /// `I-FINE`: neighbors are treated as conditionally independent (Eq. 3).
    #[default]
    Independent,
    /// `D-FINE`: neighbors that are co-located with each other form clusters, and each
    /// cluster contributes one joint observation (Eq. 6).
    Dependent,
}

impl std::fmt::Display for FineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FineMode::Independent => write!(f, "I-FINE"),
            FineMode::Dependent => write!(f, "D-FINE"),
        }
    }
}

/// Configuration of the fine-grained localization algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineConfig {
    /// Room-affinity weights (§4.1). Default: the paper's best combination `C2`.
    pub weights: RoomAffinityWeights,
    /// Independent or dependent neighbor handling. Default: independent.
    pub mode: FineMode,
    /// History window (ending at the query time) over which device affinities are
    /// computed. Default: 3 weeks (where Fig. 8 shows the fine precision plateaus).
    pub affinity_window: Timestamp,
    /// Maximum number of neighbor devices processed per query.
    pub max_neighbors: usize,
    /// Minimum pairwise device affinity a neighbor must have with the queried device
    /// for its group affinity to be folded into the posterior. Devices below the
    /// threshold are effectively not neighbors (the paper requires a strictly positive
    /// group affinity; a near-zero one carries no co-location information and, folded
    /// in en masse, would drown the room-affinity prior).
    pub min_pair_affinity: f64,
    /// Maximum number of *contributing* neighbors folded into the posterior. The
    /// paper's iterative algorithm effectively uses only the few most-affiliated
    /// neighbors before its stop conditions fire; this cap bounds the same behaviour
    /// deterministically.
    pub max_contributors: usize,
    /// How strongly a co-located neighbor's group affinity is allowed to shift the
    /// posterior, in `[0, 1]`. Device affinity is measured from *same-AP*
    /// co-occurrence, which overstates *same-room* co-location (an AP covers ~11
    /// rooms); this factor is the assumed probability that devices co-located at the
    /// AP level actually share a room, and it scales the evidence accordingly.
    pub evidence_weight: f64,
    /// Whether to use the loosened early-stop conditions of §4.2. Disabling them makes
    /// the algorithm process every neighbor (the "no stop condition" line of Fig. 11).
    pub use_stop_conditions: bool,
    /// Per-device group-affinity assumed in the least-favourable possible world when
    /// computing `minP` (Theorem 2 bound).
    pub min_unprocessed_affinity: f64,
    /// Per-device group-affinity assumed in the most-favourable possible world when
    /// computing `maxP` (Theorem 1 bound).
    pub max_unprocessed_affinity: f64,
}

impl Default for FineConfig {
    fn default() -> Self {
        Self {
            weights: RoomAffinityWeights::default(),
            mode: FineMode::Independent,
            affinity_window: clock::weeks(3),
            max_neighbors: 25,
            min_pair_affinity: 0.2,
            max_contributors: 2,
            evidence_weight: 0.3,
            use_stop_conditions: true,
            min_unprocessed_affinity: 0.05,
            max_unprocessed_affinity: 0.8,
        }
    }
}

/// The contribution of one processed neighbor, reported for the caching engine (the
/// edge weights of the *local affinity graph*, §5) and for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborContribution {
    /// The neighbor device.
    pub device: DeviceId,
    /// Region the neighbor was located in at the query time.
    pub region: RegionId,
    /// Pairwise device affinity `α({d_i, d_k})` over the history window.
    pub pair_affinity: f64,
    /// Local-affinity-graph edge weight: mean group affinity over the candidate rooms,
    /// `Σ_j α({d_i, d_k}, r_j, t_q) / |R(g_x)|`.
    pub edge_weight: f64,
}

/// Result of fine-grained localization for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineOutcome {
    /// The selected room (highest posterior probability).
    pub room: RoomId,
    /// The region the candidates were drawn from.
    pub region: RegionId,
    /// Posterior probability of every candidate room, normalized to sum to 1.
    pub probabilities: Vec<(RoomId, f64)>,
    /// Number of neighbor devices that were eligible for processing.
    pub neighbors_considered: usize,
    /// Number of neighbor devices actually processed before stopping.
    pub neighbors_processed: usize,
    /// `true` if the loosened stop conditions ended the iteration early.
    pub stopped_early: bool,
    /// Per-neighbor contributions (one entry per *processed* neighbor).
    pub contributions: Vec<NeighborContribution>,
}

impl FineOutcome {
    /// Posterior probability of the selected room.
    pub fn confidence(&self) -> f64 {
        self.probabilities
            .iter()
            .find(|(room, _)| *room == self.room)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

/// The fine-grained localizer (Algorithm 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct FineLocalizer {
    config: FineConfig,
}

impl FineLocalizer {
    /// Creates a localizer with the given configuration.
    pub fn new(config: FineConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FineConfig {
        &self.config
    }

    /// The neighbor devices of `device` at `t_q` for candidates in `region`: devices
    /// online at `t_q` (a connectivity event of theirs is valid at `t_q`) whose region
    /// overlaps `region`. Reported with the region they are located in.
    pub fn candidate_neighbors(
        &self,
        store: &dyn EventRead,
        device: DeviceId,
        t_q: Timestamp,
        region: RegionId,
    ) -> Vec<(DeviceId, RegionId)> {
        store
            .devices_online_at(t_q, Some(device))
            .into_iter()
            .filter(|&(_, other_region)| store.space().regions_overlap(region, other_region))
            .collect()
    }

    /// Runs Algorithm 2 for `Q = (device, t_q)` with candidate rooms `R(region)`.
    ///
    /// `preferred_order`, when given, lists neighbor devices in the order they should
    /// be processed (the caching engine passes the global-affinity-graph order here);
    /// eligible neighbors not in the list are processed last, in their natural order.
    pub fn locate(
        &self,
        store: &dyn EventRead,
        device: DeviceId,
        t_q: Timestamp,
        region: RegionId,
        preferred_order: Option<&[DeviceId]>,
    ) -> FineOutcome {
        self.locate_with_cache(store, device, t_q, region, preferred_order, None)
    }

    /// [`FineLocalizer::locate`] with an optional cache of pairwise device affinities:
    /// when `cached_affinities` yields a value for a neighbor, the history scan that
    /// would otherwise compute its device affinity is skipped (the caching engine of
    /// §5 supplies this from the global affinity graph).
    pub fn locate_with_cache(
        &self,
        store: &dyn EventRead,
        device: DeviceId,
        t_q: Timestamp,
        region: RegionId,
        preferred_order: Option<&[DeviceId]>,
        cached_affinities: Option<&dyn Fn(DeviceId) -> Option<f64>>,
    ) -> FineOutcome {
        let engine = AffinityEngine::new(store, self.config.weights, self.config.affinity_window);
        let candidates: Vec<RoomId> = store.space().rooms_in_region(region).to_vec();
        // One memo per query: every room-affinity distribution this call
        // needs — the prior and one per processed neighbor/cluster member —
        // is computed exactly once and reused by every group-affinity
        // evaluation (the queried device's own distribution is in every
        // group, so it is always a hit).
        let mut memo = RoomAffinityMemo::new();
        let prior = engine
            .room_affinities_memo(&mut memo, device, region)
            .clone();

        // Trivial cases: zero or one candidate room.
        if candidates.len() <= 1 {
            let room = candidates.first().copied().unwrap_or(RoomId::new(0));
            return FineOutcome {
                room,
                region,
                probabilities: candidates.iter().map(|&r| (r, 1.0)).collect(),
                neighbors_considered: 0,
                neighbors_processed: 0,
                stopped_early: false,
                contributions: Vec::new(),
            };
        }

        let mut neighbors = self.candidate_neighbors(store, device, t_q, region);
        order_neighbors(&mut neighbors, preferred_order);
        neighbors.truncate(self.config.max_neighbors);
        let neighbors_considered = neighbors.len();

        match self.config.mode {
            FineMode::Independent => self.locate_independent(
                &engine,
                &mut memo,
                device,
                t_q,
                region,
                &candidates,
                &prior,
                &neighbors,
                neighbors_considered,
                cached_affinities,
            ),
            FineMode::Dependent => self.locate_dependent(
                &engine,
                &mut memo,
                device,
                t_q,
                region,
                &candidates,
                &prior,
                &neighbors,
                neighbors_considered,
                cached_affinities,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn locate_independent(
        &self,
        engine: &AffinityEngine<'_>,
        memo: &mut RoomAffinityMemo,
        device: DeviceId,
        t_q: Timestamp,
        region: RegionId,
        candidates: &[RoomId],
        prior: &RoomAffinity,
        neighbors: &[(DeviceId, RegionId)],
        neighbors_considered: usize,
        cached_affinities: Option<&dyn Fn(DeviceId) -> Option<f64>>,
    ) -> FineOutcome {
        let uniform_floor = 1.0 / candidates.len() as f64;
        let mut posteriors: Vec<RoomPosterior> = candidates
            .iter()
            .map(|&room| RoomPosterior::from_prior(prior.of(room)))
            .collect();
        let mut contributions = Vec::new();
        let mut processed = 0usize;
        let mut stopped_early = false;
        // The queried device's merge buffers are shared across neighbors and
        // built only when the first affinity actually needs computing.
        let session = std::cell::OnceCell::new();

        for (idx, &(neighbor, neighbor_region)) in neighbors.iter().enumerate() {
            processed += 1;
            // A sub-threshold affinity is discarded unread;
            // `contributing_affinity` centralizes the contribution predicate
            // so cached and computed values are gated identically.
            let contributing = match cached_affinities.and_then(|lookup| lookup(neighbor)) {
                Some(pair) => (pair >= self.config.min_pair_affinity && pair > 0.0).then_some(pair),
                None => session
                    .get_or_init(|| engine.pair_session(device, t_q))
                    .contributing_affinity(neighbor, self.config.min_pair_affinity),
            };
            if let Some(pair) = contributing {
                let group = [(device, region), (neighbor, neighbor_region)];
                let weight = self.config.evidence_weight.clamp(0.0, 1.0);
                let alphas = engine.group_affinities(memo, &group, candidates, pair);
                let mut edge_weight = 0.0;
                for (posterior, &alpha) in posteriors.iter_mut().zip(&alphas) {
                    edge_weight += alpha;
                    let observation =
                        ((1.0 - weight * pair) * uniform_floor + weight * alpha).min(1.0);
                    posterior.observe(observation);
                }
                edge_weight /= candidates.len() as f64;
                contributions.push(NeighborContribution {
                    device: neighbor,
                    region: neighbor_region,
                    pair_affinity: pair,
                    edge_weight,
                });
                if self.config.use_stop_conditions
                    && contributions.len() >= self.config.max_contributors
                {
                    stopped_early = idx + 1 < neighbors.len();
                    break;
                }
            }
            let remaining = neighbors.len() - (idx + 1);
            if self.config.use_stop_conditions && remaining > 0 {
                if let Some((leader, runner_up)) = top_two(&posteriors) {
                    let leader_bounds = PosteriorBounds::compute(
                        &posteriors[leader],
                        remaining,
                        self.config.min_unprocessed_affinity,
                        self.config.max_unprocessed_affinity,
                    );
                    let runner_bounds = PosteriorBounds::compute(
                        &posteriors[runner_up],
                        remaining,
                        self.config.min_unprocessed_affinity,
                        self.config.max_unprocessed_affinity,
                    );
                    if stop_condition_met(&leader_bounds, &runner_bounds) {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }

        let probabilities = normalize(candidates, &posteriors, prior);
        let room = select_room(&probabilities, prior);
        FineOutcome {
            room,
            region,
            probabilities,
            neighbors_considered,
            neighbors_processed: processed,
            stopped_early,
            contributions,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn locate_dependent(
        &self,
        engine: &AffinityEngine<'_>,
        memo: &mut RoomAffinityMemo,
        device: DeviceId,
        t_q: Timestamp,
        region: RegionId,
        candidates: &[RoomId],
        prior: &RoomAffinity,
        neighbors: &[(DeviceId, RegionId)],
        neighbors_considered: usize,
        cached_affinities: Option<&dyn Fn(DeviceId) -> Option<f64>>,
    ) -> FineOutcome {
        let uniform_floor = 1.0 / candidates.len() as f64;
        let mut clusters: Vec<Vec<(DeviceId, RegionId)>> = Vec::new();
        let mut contributions = Vec::new();
        let mut processed = 0usize;
        let mut stopped_early = false;
        let session = std::cell::OnceCell::new();

        for &(neighbor, neighbor_region) in neighbors {
            processed += 1;
            let contributing = match cached_affinities.and_then(|lookup| lookup(neighbor)) {
                Some(pair) => (pair > 0.0 && pair >= self.config.min_pair_affinity).then_some(pair),
                None => session
                    .get_or_init(|| engine.pair_session(device, t_q))
                    .contributing_affinity(neighbor, self.config.min_pair_affinity),
            };
            let Some(pair) = contributing else {
                continue;
            };
            // Record the pairwise contribution for the caching engine.
            let group = [(device, region), (neighbor, neighbor_region)];
            let edge_weight = engine
                .group_affinities(memo, &group, candidates, pair)
                .iter()
                .sum::<f64>()
                / candidates.len() as f64;
            contributions.push(NeighborContribution {
                device: neighbor,
                region: neighbor_region,
                pair_affinity: pair,
                edge_weight,
            });

            // Attach the neighbor to every cluster it is co-located with; merge them.
            let mut linked: Vec<usize> = Vec::new();
            for (cluster_idx, cluster) in clusters.iter().enumerate() {
                let colocated = cluster
                    .iter()
                    .any(|&(member, _)| engine.pair_affinity(neighbor, member, t_q) > 0.0);
                if colocated {
                    linked.push(cluster_idx);
                }
            }
            match linked.split_first() {
                None => clusters.push(vec![(neighbor, neighbor_region)]),
                Some((&first, rest)) => {
                    clusters[first].push((neighbor, neighbor_region));
                    // Merge the remaining linked clusters into the first, back to front
                    // so the indices stay valid.
                    for &idx in rest.iter().rev() {
                        let merged = clusters.remove(idx);
                        clusters[first].extend(merged);
                    }
                }
            }

            // Paper: the dependent variant terminates when any cluster's joint group
            // affinity collapses to zero.
            let any_dead_cluster = clusters.iter().any(|cluster| {
                let mut members: Vec<DeviceId> = cluster.iter().map(|&(d, _)| d).collect();
                members.push(device);
                engine.device_affinity(&members, t_q) <= 0.0
            });
            if any_dead_cluster {
                stopped_early = true;
                break;
            }
            if (self.config.use_stop_conditions
                && contributions.len() >= self.config.max_contributors)
                || processed >= self.config.max_neighbors
            {
                break;
            }
        }

        // Fold one observation per cluster into the posterior (Eq. 6 analogue).
        let mut posteriors: Vec<RoomPosterior> = candidates
            .iter()
            .map(|&room| RoomPosterior::from_prior(prior.of(room)))
            .collect();
        let weight = self.config.evidence_weight.clamp(0.0, 1.0);
        for cluster in &clusters {
            let mut members: Vec<DeviceId> = cluster.iter().map(|&(d, _)| d).collect();
            members.push(device);
            let joint_affinity = engine.device_affinity(&members, t_q);
            let mut group: Vec<(DeviceId, RegionId)> = cluster.clone();
            group.push((device, region));
            let alphas = engine.group_affinities(memo, &group, candidates, joint_affinity);
            for (posterior, &alpha) in posteriors.iter_mut().zip(&alphas) {
                let observation =
                    ((1.0 - weight * joint_affinity) * uniform_floor + weight * alpha).min(1.0);
                posterior.observe(observation);
            }
        }

        let probabilities = normalize(candidates, &posteriors, prior);
        let room = select_room(&probabilities, prior);
        FineOutcome {
            room,
            region,
            probabilities,
            neighbors_considered,
            neighbors_processed: processed,
            stopped_early,
            contributions,
        }
    }
}

/// Reorders `neighbors` so that the devices listed in `preferred_order` come first, in
/// that order; other neighbors keep their relative order after them.
fn order_neighbors(neighbors: &mut [(DeviceId, RegionId)], preferred_order: Option<&[DeviceId]>) {
    let Some(order) = preferred_order else {
        return;
    };
    let rank = |device: DeviceId| -> usize {
        order
            .iter()
            .position(|&d| d == device)
            .unwrap_or(order.len())
    };
    neighbors.sort_by_key(|&(device, _)| rank(device));
}

/// The indices of the two rooms with the highest current posterior, if at least two
/// candidates exist.
fn top_two(posteriors: &[RoomPosterior]) -> Option<(usize, usize)> {
    if posteriors.len() < 2 {
        return None;
    }
    let mut best = 0usize;
    let mut second = 1usize;
    if posteriors[second].probability() > posteriors[best].probability() {
        std::mem::swap(&mut best, &mut second);
    }
    for idx in 2..posteriors.len() {
        let p = posteriors[idx].probability();
        if p > posteriors[best].probability() {
            second = best;
            best = idx;
        } else if p > posteriors[second].probability() {
            second = idx;
        }
    }
    Some((best, second))
}

/// Normalizes the posteriors into a probability distribution over the candidate
/// rooms. If every posterior collapsed to zero, falls back to the prior.
fn normalize(
    candidates: &[RoomId],
    posteriors: &[RoomPosterior],
    prior: &RoomAffinity,
) -> Vec<(RoomId, f64)> {
    let raw: Vec<f64> = posteriors.iter().map(RoomPosterior::probability).collect();
    let total: f64 = raw.iter().sum();
    if total <= 0.0 {
        return candidates.iter().map(|&r| (r, prior.of(r))).collect();
    }
    candidates
        .iter()
        .zip(raw)
        .map(|(&room, p)| (room, p / total))
        .collect()
}

/// Picks the room with the highest probability, breaking ties in favour of the higher
/// prior affinity and then the lower room id (deterministic).
fn select_room(probabilities: &[(RoomId, f64)], prior: &RoomAffinity) -> RoomId {
    probabilities
        .iter()
        .max_by(|(ra, pa), (rb, pb)| {
            pa.partial_cmp(pb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    prior
                        .of(*ra)
                        .partial_cmp(&prior.of(*rb))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| rb.cmp(ra))
        })
        .map(|(room, _)| *room)
        .unwrap_or(RoomId::new(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::{RoomType, Space, SpaceBuilder};
    use locater_store::EventStore;

    /// Fig. 1 / Fig. 3 style space: one AP region with an office per device plus a
    /// shared meeting room.
    fn space() -> Space {
        SpaceBuilder::new("fine-test")
            .add_access_point("wap3", &["2059", "2061", "2065", "2069", "2099"])
            .add_access_point("wap2", &["2059", "2061", "2065", "2004"])
            .room_type("2065", RoomType::Public)
            .room_owner("2061", "d1")
            .room_owner("2059", "d2")
            .build()
            .unwrap()
    }

    /// d1 and d2 co-located on wap3 every morning for `days` days; the query day has
    /// both online at 10:00.
    fn colocated_store(days: i64) -> EventStore {
        let mut store = EventStore::new(space());
        for day in 0..days {
            for slot in 0..6 {
                let t = clock::at(day, 9, slot * 10, 0);
                store.ingest_raw("d1", t, "wap3").unwrap();
                store.ingest_raw("d2", t + 30, "wap3").unwrap();
            }
        }
        store
    }

    #[test]
    fn no_neighbors_falls_back_to_room_affinity() {
        let mut store = EventStore::new(space());
        store.ingest_raw("d1", 1_000, "wap3").unwrap();
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let localizer = FineLocalizer::default();
        let out = localizer.locate(&store, d1, 1_100, g3, None);
        // d1's office 2061 has the highest prior.
        assert_eq!(out.room, store.space().room_id("2061").unwrap());
        assert_eq!(out.neighbors_considered, 0);
        assert_eq!(out.neighbors_processed, 0);
        assert!(!out.stopped_early);
        let total: f64 = out.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(out.confidence() > 0.0);
    }

    #[test]
    fn single_candidate_region_is_trivial() {
        let space = SpaceBuilder::new("single")
            .add_access_point("wap0", &["only"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        store.ingest_raw("d1", 1_000, "wap0").unwrap();
        let d1 = store.device_id("d1").unwrap();
        let g0 = store.space().ap_id("wap0").unwrap().region();
        let out = FineLocalizer::default().locate(&store, d1, 1_000, g0, None);
        assert_eq!(out.room, store.space().room_id("only").unwrap());
        assert_eq!(out.probabilities.len(), 1);
    }

    #[test]
    fn colocated_neighbor_is_processed_and_contributes() {
        let store = colocated_store(10);
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let t_q = clock::at(9, 9, 30, 10);
        let localizer = FineLocalizer::default();
        let out = localizer.locate(&store, d1, t_q, g3, None);
        assert_eq!(out.neighbors_considered, 1);
        assert_eq!(out.neighbors_processed, 1);
        assert_eq!(out.contributions.len(), 1);
        let contribution = out.contributions[0];
        assert_eq!(contribution.device, d2);
        assert!(contribution.pair_affinity > 0.5);
        assert!(contribution.edge_weight > 0.0);
        // The answer is one of the candidate rooms of g3.
        assert!(store.space().rooms_in_region(g3).contains(&out.room));
    }

    #[test]
    fn strong_colocation_shifts_mass_toward_shared_rooms() {
        // Fig. 3's narrative: d2 being online raises the chance of the rooms the two
        // devices could share. Relative to an arbitrary private room, the shared
        // public room 2065 must gain posterior mass compared to its prior ratio.
        let store = colocated_store(10);
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let meeting = store.space().room_id("2065").unwrap();
        let other_private = store.space().room_id("2099").unwrap();
        let t_q = clock::at(9, 9, 30, 10);
        let localizer = FineLocalizer::default();

        let engine = AffinityEngine::new(&store, RoomAffinityWeights::default(), clock::weeks(3));
        let prior = engine.room_affinities(d1, g3);
        let prior_ratio = prior.of(meeting) / prior.of(other_private);

        let out = localizer.locate(&store, d1, t_q, g3, None);
        assert_eq!(
            out.contributions.len(),
            1,
            "the co-located neighbor must contribute"
        );
        let posterior_of = |room| {
            out.probabilities
                .iter()
                .find(|(r, _)| *r == room)
                .map(|(_, p)| *p)
                .unwrap()
        };
        let posterior_ratio = posterior_of(meeting) / posterior_of(other_private);
        assert!(
            posterior_ratio > prior_ratio,
            "shared-room odds should improve: prior {prior_ratio} vs posterior {posterior_ratio}"
        );
    }

    #[test]
    fn dependent_mode_also_answers_with_candidate_room() {
        let store = colocated_store(10);
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let t_q = clock::at(9, 9, 30, 10);
        let localizer = FineLocalizer::new(FineConfig {
            mode: FineMode::Dependent,
            ..FineConfig::default()
        });
        let out = localizer.locate(&store, d1, t_q, g3, None);
        assert!(store.space().rooms_in_region(g3).contains(&out.room));
        assert_eq!(out.neighbors_processed, 1);
        let total: f64 = out.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stop_conditions_reduce_processed_neighbors() {
        // Many neighbors with no co-location history: the early-stop bounds should
        // terminate before processing all of them, while the no-stop variant
        // processes every neighbor.
        let mut store = EventStore::new(space());
        for day in 0..5 {
            for slot in 0..6 {
                store
                    .ingest_raw("d1", clock::at(day, 9, slot * 10, 0), "wap3")
                    .unwrap();
            }
        }
        let t_q = clock::at(4, 9, 25, 0);
        for i in 0..15 {
            store
                .ingest_raw(&format!("bystander-{i}"), t_q - 60, "wap3")
                .unwrap();
        }
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();

        let with_stop = FineLocalizer::new(FineConfig::default());
        let without_stop = FineLocalizer::new(FineConfig {
            use_stop_conditions: false,
            ..FineConfig::default()
        });
        let a = with_stop.locate(&store, d1, t_q, g3, None);
        let b = without_stop.locate(&store, d1, t_q, g3, None);
        assert_eq!(b.neighbors_processed, b.neighbors_considered);
        assert!(a.neighbors_processed <= b.neighbors_processed);
        assert!(a.stopped_early || a.neighbors_processed == a.neighbors_considered);
        // Both must agree on the answer here (bystanders carry no affinity).
        assert_eq!(a.room, b.room);
    }

    #[test]
    fn preferred_order_is_respected() {
        let mut store = EventStore::new(space());
        store.ingest_raw("d1", 1_000, "wap3").unwrap();
        store.ingest_raw("n1", 1_000, "wap3").unwrap();
        store.ingest_raw("n2", 1_000, "wap3").unwrap();
        store.ingest_raw("n3", 1_000, "wap2").unwrap();
        let d1 = store.device_id("d1").unwrap();
        let n2 = store.device_id("n2").unwrap();
        let n3 = store.device_id("n3").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let localizer = FineLocalizer::default();
        let mut neighbors = localizer.candidate_neighbors(&store, d1, 1_000, g3);
        assert_eq!(neighbors.len(), 3);
        order_neighbors(&mut neighbors, Some(&[n3, n2]));
        assert_eq!(neighbors[0].0, n3);
        assert_eq!(neighbors[1].0, n2);
    }

    #[test]
    fn max_neighbors_caps_processing() {
        let mut store = EventStore::new(space());
        store.ingest_raw("d1", 1_000, "wap3").unwrap();
        for i in 0..30 {
            store.ingest_raw(&format!("n{i}"), 1_000, "wap3").unwrap();
        }
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let localizer = FineLocalizer::new(FineConfig {
            max_neighbors: 5,
            max_contributors: 16,
            use_stop_conditions: false,
            ..FineConfig::default()
        });
        let out = localizer.locate(&store, d1, 1_000, g3, None);
        assert_eq!(out.neighbors_considered, 5);
        assert_eq!(out.neighbors_processed, 5);
    }

    #[test]
    fn top_two_finds_leader_and_runner_up() {
        let posteriors = vec![
            RoomPosterior::from_prior(0.1),
            RoomPosterior::from_prior(0.6),
            RoomPosterior::from_prior(0.3),
        ];
        let (best, second) = top_two(&posteriors).unwrap();
        assert_eq!(best, 1);
        assert_eq!(second, 2);
        assert!(top_two(&posteriors[..1]).is_none());
    }

    #[test]
    fn fine_mode_display_names_match_paper() {
        assert_eq!(FineMode::Independent.to_string(), "I-FINE");
        assert_eq!(FineMode::Dependent.to_string(), "D-FINE");
        assert_eq!(FineMode::default(), FineMode::Independent);
    }
}
