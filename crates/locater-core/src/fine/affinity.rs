//! Room, device and group affinities (paper §4.1).

use locater_events::clock::Timestamp;
use locater_events::{DeviceId, Interval};
use locater_space::{RegionId, RoomId, Space};
use locater_store::EventRead;
use serde::{Deserialize, Serialize};

/// The three room-affinity weights of §4.1: preferred (`w_pf`), public (`w_pb`) and
/// private (`w_pr`) rooms. They must be strictly ordered `w_pf > w_pb > w_pr` and sum
/// to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoomAffinityWeights {
    /// Weight of the device's preferred rooms (`w_pf`).
    pub preferred: f64,
    /// Weight of public rooms (`w_pb`).
    pub public: f64,
    /// Weight of private, non-preferred rooms (`w_pr`).
    pub private: f64,
}

impl RoomAffinityWeights {
    /// The paper's combination `C1 = {0.7, 0.2, 0.1}`.
    pub const C1: Self = Self {
        preferred: 0.7,
        public: 0.2,
        private: 0.1,
    };
    /// The paper's combination `C2 = {0.6, 0.3, 0.1}` (slightly best in Table 2).
    pub const C2: Self = Self {
        preferred: 0.6,
        public: 0.3,
        private: 0.1,
    };
    /// The paper's combination `C3 = {0.5, 0.3, 0.2}` (the one in the running example).
    pub const C3: Self = Self {
        preferred: 0.5,
        public: 0.3,
        private: 0.2,
    };
    /// The paper's combination `C4 = {0.5, 0.4, 0.1}`.
    pub const C4: Self = Self {
        preferred: 0.5,
        public: 0.4,
        private: 0.1,
    };

    /// All four combinations evaluated in Table 2, in order.
    pub const TABLE2: [Self; 4] = [Self::C1, Self::C2, Self::C3, Self::C4];

    /// Creates weights, validating the ordering and normalization constraints of §4.1.
    pub fn new(preferred: f64, public: f64, private: f64) -> Result<Self, String> {
        if !(preferred > public && public > private && private > 0.0) {
            return Err(format!(
                "room affinity weights must satisfy w_pf > w_pb > w_pr > 0, got ({preferred}, {public}, {private})"
            ));
        }
        if ((preferred + public + private) - 1.0).abs() > 1e-9 {
            return Err(format!(
                "room affinity weights must sum to 1, got {}",
                preferred + public + private
            ));
        }
        Ok(Self {
            preferred,
            public,
            private,
        })
    }
}

impl Default for RoomAffinityWeights {
    fn default() -> Self {
        Self::C2
    }
}

/// The room-affinity distribution of one device over the candidate rooms of a region:
/// `α(d_i, r_j, t_q)` for every `r_j ∈ R(g_x)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoomAffinity {
    /// Candidate rooms, in the order of [`Space::rooms_in_region`].
    pub rooms: Vec<RoomId>,
    /// Affinity of each candidate room; sums to 1 whenever `rooms` is non-empty.
    pub affinities: Vec<f64>,
}

impl RoomAffinity {
    /// Affinity of a specific room; 0 if the room is not a candidate.
    pub fn of(&self, room: RoomId) -> f64 {
        self.rooms
            .iter()
            .position(|&r| r == room)
            .map(|i| self.affinities[i])
            .unwrap_or(0.0)
    }

    /// The room with the highest affinity, if any.
    pub fn best(&self) -> Option<RoomId> {
        self.affinities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| self.rooms[i])
    }

    /// Conditional probability `P(@(d, r_j) | @(d, R_is))` of the device being in
    /// `room` given that it is in one of the rooms of `subset` (§4.1). Returns 0 when
    /// `room` is not in `subset` or the subset has zero total affinity.
    pub fn conditional_within(&self, room: RoomId, subset: &[RoomId]) -> f64 {
        if !subset.contains(&room) {
            return 0.0;
        }
        let total: f64 = subset.iter().map(|&r| self.of(r)).sum();
        if total <= 0.0 {
            // All-zero subset: fall back to a uniform distribution over the subset, so
            // that devices without metadata still contribute.
            return 1.0 / subset.len() as f64;
        }
        self.of(room) / total
    }
}

/// Computes room, device and group affinities against one event store.
///
/// The engine is cheap to construct (it only borrows the store); the expensive part is
/// [`AffinityEngine::device_affinity`], which scans the devices' recent histories.
#[derive(Clone, Copy)]
pub struct AffinityEngine<'a> {
    store: &'a dyn EventRead,
    weights: RoomAffinityWeights,
    /// Length of the history window, ending at the query time, over which device
    /// affinities are computed.
    window: Timestamp,
}

impl<'a> AffinityEngine<'a> {
    /// Creates an engine over `store` with the given weights and a device-affinity
    /// history window of `window` seconds.
    pub fn new(store: &'a dyn EventRead, weights: RoomAffinityWeights, window: Timestamp) -> Self {
        Self {
            store,
            weights,
            window: window.max(1),
        }
    }

    /// The space the engine computes affinities over.
    pub fn space(&self) -> &Space {
        self.store.space()
    }

    /// The room-affinity weights in use.
    pub fn weights(&self) -> RoomAffinityWeights {
        self.weights
    }

    // ------------------------------------------------------------------
    // Room affinity
    // ------------------------------------------------------------------

    /// Room affinities `α(d, r_j, t_q)` of a device over the candidate rooms of
    /// `region` (§4.1).
    ///
    /// The candidate rooms are partitioned into preferred / public / private; each
    /// partition shares its weight equally among its rooms. Weights of empty
    /// partitions are redistributed proportionally so the distribution always sums
    /// to 1.
    pub fn room_affinities(&self, device: DeviceId, region: RegionId) -> RoomAffinity {
        let space = self.store.space();
        let mac = self.store.device(device).mac.as_str();
        let rooms: Vec<RoomId> = space.rooms_in_region(region).to_vec();
        if rooms.is_empty() {
            return RoomAffinity {
                rooms,
                affinities: Vec::new(),
            };
        }
        let (pf, pb, pr) = space.partition_candidates(mac, region);
        let mut mass = 0.0;
        if !pf.is_empty() {
            mass += self.weights.preferred;
        }
        if !pb.is_empty() {
            mass += self.weights.public;
        }
        if !pr.is_empty() {
            mass += self.weights.private;
        }
        let affinities = rooms
            .iter()
            .map(|room| {
                let (weight, count) = if pf.contains(room) {
                    (self.weights.preferred, pf.len())
                } else if pb.contains(room) {
                    (self.weights.public, pb.len())
                } else {
                    (self.weights.private, pr.len())
                };
                weight / mass / count as f64
            })
            .collect();
        RoomAffinity { rooms, affinities }
    }

    // ------------------------------------------------------------------
    // Device affinity
    // ------------------------------------------------------------------

    /// Device affinity `α(D)` of a set of devices (§4.1): the fraction of connectivity
    /// events of the devices in `D` (within the history window ending at `until`) such
    /// that every *other* device of `D` has an event on the same access point within
    /// the validity period of the event.
    ///
    /// Returns 0 for sets of fewer than two devices or with no events in the window.
    pub fn device_affinity(&self, devices: &[DeviceId], until: Timestamp) -> f64 {
        if devices.len() < 2 {
            return 0.0;
        }
        let window = Interval::new(until - self.window, until + 1);
        let mut total = 0usize;
        let mut intersecting = 0usize;
        for &device in devices {
            let delta = self.store.delta(device);
            for event in self.store.events_of_in(device, window) {
                total += 1;
                let near = Interval::new(event.t - delta, event.t + delta + 1);
                let all_present = devices.iter().filter(|&&d| d != device).all(|&other| {
                    // Segment-pruned window iterator: only the one or two
                    // segments overlapping the validity window are touched.
                    self.store
                        .events_of_in(other, near)
                        .any(|e| e.ap == event.ap)
                });
                if all_present {
                    intersecting += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            intersecting as f64 / total as f64
        }
    }

    /// Pairwise device affinity `α({a, b})`.
    pub fn pair_affinity(&self, a: DeviceId, b: DeviceId, until: Timestamp) -> f64 {
        self.device_affinity(&[a, b], until)
    }

    // ------------------------------------------------------------------
    // Group affinity
    // ------------------------------------------------------------------

    /// Group affinity `α(D, r_j, t_q)` (Eq. 1): the probability of all devices in
    /// `group` being co-located in `room`, given the regions each device is currently
    /// located in and an already-computed device affinity for the set.
    ///
    /// `group` pairs each device with the region the coarse step (or its covering
    /// event) placed it in at the query time. The intersection `R_is` of the candidate
    /// rooms of those regions is computed here; the affinity is 0 when `room` lies
    /// outside it.
    pub fn group_affinity(
        &self,
        group: &[(DeviceId, RegionId)],
        room: RoomId,
        device_affinity: f64,
    ) -> f64 {
        if group.is_empty() || device_affinity <= 0.0 {
            return 0.0;
        }
        let space = self.store.space();
        let regions: Vec<RegionId> = group.iter().map(|&(_, g)| g).collect();
        let intersection = space.intersect_regions(&regions);
        if !intersection.contains(&room) {
            return 0.0;
        }
        let mut probability = device_affinity;
        for &(device, region) in group {
            let affinity = self.room_affinities(device, region);
            probability *= affinity.conditional_within(room, &intersection);
        }
        probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::{RoomType, SpaceBuilder};
    use locater_store::EventStore;

    /// The paper's running example (Fig. 3): region g3 covers five rooms, 2061 is d1's
    /// office, 2065 is a public meeting room, 2059 is d2's office.
    fn example_store() -> EventStore {
        let space = SpaceBuilder::new("fig3")
            .add_access_point("wap3", &["2059", "2061", "2065", "2069", "2099"])
            .add_access_point("wap2", &["2059", "2061", "2065", "2069", "2099"])
            .room_type("2065", RoomType::Public)
            .room_owner("2061", "d1")
            .room_owner("2059", "d2")
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        store.ingest_raw("d1", 1_000, "wap3").unwrap();
        store.ingest_raw("d2", 1_000, "wap3").unwrap();
        store
    }

    #[test]
    fn weights_presets_are_valid() {
        for w in RoomAffinityWeights::TABLE2 {
            assert!(w.preferred > w.public && w.public > w.private);
            assert!(((w.preferred + w.public + w.private) - 1.0).abs() < 1e-9);
        }
        assert_eq!(RoomAffinityWeights::default(), RoomAffinityWeights::C2);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        assert!(RoomAffinityWeights::new(0.3, 0.4, 0.3).is_err()); // not ordered
        assert!(RoomAffinityWeights::new(0.5, 0.3, 0.1).is_err()); // sums to 0.9
        assert!(RoomAffinityWeights::new(0.6, 0.3, 0.1).is_ok());
    }

    #[test]
    fn room_affinities_match_running_example() {
        // With C3 = {0.5, 0.3, 0.2}: α(d1, 2061) = 0.5, α(d1, 2065) = 0.3 and the
        // three remaining private rooms share 0.2/3 ≈ 0.066 (paper §4.1).
        let store = example_store();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C3, 3_600);
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let affinity = engine.room_affinities(d1, g3);
        let space = store.space();
        let room = |name: &str| space.room_id(name).unwrap();
        assert!((affinity.of(room("2061")) - 0.5).abs() < 1e-9);
        assert!((affinity.of(room("2065")) - 0.3).abs() < 1e-9);
        assert!((affinity.of(room("2059")) - 0.2 / 3.0).abs() < 1e-9);
        assert!((affinity.affinities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(affinity.best(), Some(room("2061")));
        assert_eq!(affinity.of(RoomId::new(999)), 0.0);
    }

    #[test]
    fn room_affinities_without_preferred_rooms_renormalize() {
        let store = example_store();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C2, 3_600);
        let g3 = store.space().ap_id("wap3").unwrap().region();
        // A device with no preferred rooms: mass is split between public and private.
        let mut store2 = EventStore::new(store.space().as_ref().clone());
        store2.ingest_raw("stranger", 500, "wap3").unwrap();
        let engine2 = AffinityEngine::new(&store2, RoomAffinityWeights::C2, 3_600);
        let stranger = store2.device_id("stranger").unwrap();
        let affinity = engine2.room_affinities(stranger, g3);
        assert!((affinity.affinities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Public room 2065 gets 0.3/(0.3+0.1); each of the 4 private rooms gets
        // (0.1/(0.3+0.1))/4.
        let space = store2.space();
        let public = affinity.of(space.room_id("2065").unwrap());
        let private = affinity.of(space.room_id("2099").unwrap());
        assert!((public - 0.75).abs() < 1e-9);
        assert!((private - 0.0625).abs() < 1e-9);
        assert!(public > private);
        let _ = engine;
    }

    #[test]
    fn conditional_within_matches_paper_example() {
        // P(@(d1, 2065) | @(d1, {2065, 2069, 2099})) = .3 / (.3 + .066 + .066) ≈ .69
        let store = example_store();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C3, 3_600);
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let affinity = engine.room_affinities(d1, g3);
        let space = store.space();
        let subset = vec![
            space.room_id("2065").unwrap(),
            space.room_id("2069").unwrap(),
            space.room_id("2099").unwrap(),
        ];
        let p = affinity.conditional_within(space.room_id("2065").unwrap(), &subset);
        assert!((p - 0.3 / (0.3 + 2.0 * 0.2 / 3.0)).abs() < 1e-9);
        // Room outside the subset has zero conditional probability.
        assert_eq!(
            affinity.conditional_within(space.room_id("2061").unwrap(), &subset),
            0.0
        );
    }

    #[test]
    fn device_affinity_counts_colocated_events() {
        let space = SpaceBuilder::new("pair")
            .add_access_point("wap0", &["a", "b"])
            .add_access_point("wap1", &["c", "d"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        // d1 and d2 connect together to wap0 three times, d1 alone once on wap1.
        for i in 0..3 {
            store.ingest_raw("d1", 1_000 + i * 2_000, "wap0").unwrap();
            store.ingest_raw("d2", 1_100 + i * 2_000, "wap0").unwrap();
        }
        store.ingest_raw("d1", 50_000, "wap1").unwrap();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C2, 100_000);
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let affinity = engine.pair_affinity(d1, d2, 60_000);
        // 6 of the 7 events are intersecting.
        assert!((affinity - 6.0 / 7.0).abs() < 1e-9);
        // Affinity of a device with itself-only set is zero.
        assert_eq!(engine.device_affinity(&[d1], 60_000), 0.0);
    }

    #[test]
    fn device_affinity_is_zero_for_never_colocated_devices() {
        let space = SpaceBuilder::new("pair")
            .add_access_point("wap0", &["a"])
            .add_access_point("wap1", &["b"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        store.ingest_raw("d1", 1_000, "wap0").unwrap();
        store.ingest_raw("d2", 1_000, "wap1").unwrap();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C2, 100_000);
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        assert_eq!(engine.pair_affinity(d1, d2, 2_000), 0.0);
    }

    #[test]
    fn group_affinity_matches_paper_arithmetic() {
        // Paper §4.1: α({d1, d2}) = .4, P(d1 in 2065 | R_is) = .69,
        // P(d2 in 2065 | R_is) = .44 → α({d1, d2}, 2065) ≈ .12.
        // We reproduce the structure (not the exact .44, which depends on d2's
        // affinities): group affinity = device affinity × product of conditionals.
        let store = example_store();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C3, 3_600);
        let space = store.space();
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let g3 = space.ap_id("wap3").unwrap().region();
        let room_2065 = space.room_id("2065").unwrap();
        let device_affinity = 0.4;
        let group = vec![(d1, g3), (d2, g3)];
        let affinity = engine.group_affinity(&group, room_2065, device_affinity);
        let a1 = engine.room_affinities(d1, g3);
        let a2 = engine.room_affinities(d2, g3);
        let candidates = space.rooms_in_region(g3).to_vec();
        let expected = device_affinity
            * a1.conditional_within(room_2065, &candidates)
            * a2.conditional_within(room_2065, &candidates);
        assert!((affinity - expected).abs() < 1e-12);
        assert!(affinity > 0.0 && affinity < device_affinity);
    }

    #[test]
    fn group_affinity_is_zero_outside_the_intersection() {
        let space = SpaceBuilder::new("overlap")
            .add_access_point("wap0", &["a", "b", "c"])
            .add_access_point("wap1", &["c", "d"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        store.ingest_raw("d1", 1_000, "wap0").unwrap();
        store.ingest_raw("d2", 1_000, "wap1").unwrap();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C2, 3_600);
        let space = store.space();
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let g0 = space.ap_id("wap0").unwrap().region();
        let g1 = space.ap_id("wap1").unwrap().region();
        let group = vec![(d1, g0), (d2, g1)];
        // Room "a" is only in g0, not in the intersection {c}.
        let a = space.room_id("a").unwrap();
        let c = space.room_id("c").unwrap();
        assert_eq!(engine.group_affinity(&group, a, 0.5), 0.0);
        assert!(engine.group_affinity(&group, c, 0.5) > 0.0);
        // Zero device affinity kills the group affinity.
        assert_eq!(engine.group_affinity(&group, c, 0.0), 0.0);
        // Empty group has no affinity.
        assert_eq!(engine.group_affinity(&[], c, 0.5), 0.0);
    }
}
