//! Room, device and group affinities (paper §4.1).

use locater_events::clock::Timestamp;
use locater_events::{DeviceId, Interval};
use locater_space::{RegionId, RoomId, Space};
use locater_store::{DevicePostings, EventRead, PostingCursor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The three room-affinity weights of §4.1: preferred (`w_pf`), public (`w_pb`) and
/// private (`w_pr`) rooms. They must be strictly ordered `w_pf > w_pb > w_pr` and sum
/// to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoomAffinityWeights {
    /// Weight of the device's preferred rooms (`w_pf`).
    pub preferred: f64,
    /// Weight of public rooms (`w_pb`).
    pub public: f64,
    /// Weight of private, non-preferred rooms (`w_pr`).
    pub private: f64,
}

impl RoomAffinityWeights {
    /// The paper's combination `C1 = {0.7, 0.2, 0.1}`.
    pub const C1: Self = Self {
        preferred: 0.7,
        public: 0.2,
        private: 0.1,
    };
    /// The paper's combination `C2 = {0.6, 0.3, 0.1}` (slightly best in Table 2).
    pub const C2: Self = Self {
        preferred: 0.6,
        public: 0.3,
        private: 0.1,
    };
    /// The paper's combination `C3 = {0.5, 0.3, 0.2}` (the one in the running example).
    pub const C3: Self = Self {
        preferred: 0.5,
        public: 0.3,
        private: 0.2,
    };
    /// The paper's combination `C4 = {0.5, 0.4, 0.1}`.
    pub const C4: Self = Self {
        preferred: 0.5,
        public: 0.4,
        private: 0.1,
    };

    /// All four combinations evaluated in Table 2, in order.
    pub const TABLE2: [Self; 4] = [Self::C1, Self::C2, Self::C3, Self::C4];

    /// Creates weights, validating the ordering and normalization constraints of §4.1.
    pub fn new(preferred: f64, public: f64, private: f64) -> Result<Self, String> {
        if !(preferred > public && public > private && private > 0.0) {
            return Err(format!(
                "room affinity weights must satisfy w_pf > w_pb > w_pr > 0, got ({preferred}, {public}, {private})"
            ));
        }
        if ((preferred + public + private) - 1.0).abs() > 1e-9 {
            return Err(format!(
                "room affinity weights must sum to 1, got {}",
                preferred + public + private
            ));
        }
        Ok(Self {
            preferred,
            public,
            private,
        })
    }
}

impl Default for RoomAffinityWeights {
    fn default() -> Self {
        Self::C2
    }
}

/// The partition a candidate room falls into for one device (§4.1), in the
/// precedence order of [`Space::partition_candidates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Partition {
    Preferred,
    Public,
    Private,
}

/// The room-affinity distribution of one device over the candidate rooms of a region:
/// `α(d_i, r_j, t_q)` for every `r_j ∈ R(g_x)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoomAffinity {
    /// Candidate rooms, in the order of [`Space::rooms_in_region`].
    pub rooms: Vec<RoomId>,
    /// Affinity of each candidate room; sums to 1 whenever `rooms` is non-empty.
    pub affinities: Vec<f64>,
}

impl RoomAffinity {
    /// Affinity of a specific room; 0 if the room is not a candidate.
    pub fn of(&self, room: RoomId) -> f64 {
        self.rooms
            .iter()
            .position(|&r| r == room)
            .map(|i| self.affinities[i])
            .unwrap_or(0.0)
    }

    /// The room with the highest affinity, if any.
    pub fn best(&self) -> Option<RoomId> {
        self.affinities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| self.rooms[i])
    }

    /// Conditional probability `P(@(d, r_j) | @(d, R_is))` of the device being in
    /// `room` given that it is in one of the rooms of `subset` (§4.1). Returns 0 when
    /// `room` is not in `subset` or the subset has zero total affinity.
    pub fn conditional_within(&self, room: RoomId, subset: &[RoomId]) -> f64 {
        if !subset.contains(&room) {
            return 0.0;
        }
        let total: f64 = subset.iter().map(|&r| self.of(r)).sum();
        if total <= 0.0 {
            // All-zero subset: fall back to a uniform distribution over the subset, so
            // that devices without metadata still contribute.
            return 1.0 / subset.len() as f64;
        }
        self.of(room) / total
    }
}

/// One "other" device of a device-affinity set, as seen by the indexed fast
/// path: its full postings when its store view is indexed, or a marker to
/// probe it through segment-pruned timeline scans.
enum OtherDevice<'a> {
    Indexed(&'a DevicePostings),
    Scanned(DeviceId),
}

/// How one "other" device is probed for co-presence on a specific access
/// point: through a merge cursor over its posting list (the probed windows
/// advance monotonically, so the whole probe sequence is one two-pointer
/// merge), or by a segment-pruned timeline scan.
enum OtherOnAp<'a> {
    Indexed(PostingCursor<'a>),
    Scanned(DeviceId),
}

/// Per-query memo of room-affinity distributions.
///
/// `α(d, r_j, t_q)` is a pure function of `(device, region)` against a frozen
/// store, so one `locate` call computes each distribution at most once and
/// every group-affinity evaluation reuses it — the dependent-mode inner loop
/// previously recomputed it once per candidate room per cluster member.
#[derive(Debug, Default)]
pub struct RoomAffinityMemo {
    entries: HashMap<(DeviceId, RegionId), RoomAffinity>,
}

impl RoomAffinityMemo {
    /// Creates an empty memo (one per query).
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized distribution of `(device, region)`, if already computed.
    pub fn get(&self, device: DeviceId, region: RegionId) -> Option<&RoomAffinity> {
        self.entries.get(&(device, region))
    }

    /// Number of distinct `(device, region)` distributions computed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Computes room, device and group affinities against one event store.
///
/// The engine is cheap to construct (it only borrows the store); the expensive part is
/// [`AffinityEngine::device_affinity`], which scans the devices' recent histories.
#[derive(Clone, Copy)]
pub struct AffinityEngine<'a> {
    store: &'a dyn EventRead,
    weights: RoomAffinityWeights,
    /// Length of the history window, ending at the query time, over which device
    /// affinities are computed.
    window: Timestamp,
}

impl<'a> AffinityEngine<'a> {
    /// Creates an engine over `store` with the given weights and a device-affinity
    /// history window of `window` seconds.
    pub fn new(store: &'a dyn EventRead, weights: RoomAffinityWeights, window: Timestamp) -> Self {
        Self {
            store,
            weights,
            window: window.max(1),
        }
    }

    /// The space the engine computes affinities over.
    pub fn space(&self) -> &Space {
        self.store.space()
    }

    /// The room-affinity weights in use.
    pub fn weights(&self) -> RoomAffinityWeights {
        self.weights
    }

    // ------------------------------------------------------------------
    // Room affinity
    // ------------------------------------------------------------------

    /// Room affinities `α(d, r_j, t_q)` of a device over the candidate rooms of
    /// `region` (§4.1).
    ///
    /// The candidate rooms are partitioned into preferred / public / private; each
    /// partition shares its weight equally among its rooms. Weights of empty
    /// partitions are redistributed proportionally so the distribution always sums
    /// to 1.
    pub fn room_affinities(&self, device: DeviceId, region: RegionId) -> RoomAffinity {
        let space = self.store.space();
        let mac = self.store.device(device).mac.as_str();
        let candidates = space.rooms_in_region(region);
        if candidates.is_empty() {
            return RoomAffinity {
                rooms: Vec::new(),
                affinities: Vec::new(),
            };
        }
        // One classification pass: tag every candidate room with its
        // partition and count partition sizes — no intermediate partition
        // vectors, no quadratic `contains` probes. The precedence matches
        // `Space::partition_candidates`: preferred beats public beats private.
        let preferred = space.preferred_rooms(mac);
        let mut tags = Vec::with_capacity(candidates.len());
        let (mut n_pf, mut n_pb, mut n_pr) = (0usize, 0usize, 0usize);
        for &room in candidates {
            let tag = if preferred.contains(&room) {
                n_pf += 1;
                Partition::Preferred
            } else if space.is_public(room) {
                n_pb += 1;
                Partition::Public
            } else {
                n_pr += 1;
                Partition::Private
            };
            tags.push(tag);
        }
        let mut mass = 0.0;
        if n_pf > 0 {
            mass += self.weights.preferred;
        }
        if n_pb > 0 {
            mass += self.weights.public;
        }
        if n_pr > 0 {
            mass += self.weights.private;
        }
        let affinities = tags
            .into_iter()
            .map(|tag| {
                let (weight, count) = match tag {
                    Partition::Preferred => (self.weights.preferred, n_pf),
                    Partition::Public => (self.weights.public, n_pb),
                    Partition::Private => (self.weights.private, n_pr),
                };
                weight / mass / count as f64
            })
            .collect();
        RoomAffinity {
            rooms: candidates.to_vec(),
            affinities,
        }
    }

    // ------------------------------------------------------------------
    // Device affinity
    // ------------------------------------------------------------------

    /// Device affinity `α(D)` of a set of devices (§4.1): the fraction of connectivity
    /// events of the devices in `D` (within the history window ending at `until`) such
    /// that every *other* device of `D` has an event on the same access point within
    /// the validity period of the event.
    ///
    /// Returns 0 for sets of fewer than two devices or with no events in the window.
    ///
    /// When the store maintains a co-location index
    /// ([`EventRead::postings_of`]), the count runs as a bucket-intersection
    /// merge over only the access points the devices share — APs only one
    /// device touched contribute a windowed count without per-event work, and
    /// each co-presence probe is a bucket-pruned binary search instead of a
    /// timeline rescan. Without an index the original per-event window scan
    /// runs. Both paths count the same events, so the returned ratio is
    /// **bit-identical** either way (`tests/affinity_index_equivalence.rs`).
    pub fn device_affinity(&self, devices: &[DeviceId], until: Timestamp) -> f64 {
        if devices.len() < 2 {
            return 0.0;
        }
        let window = Interval::new(until - self.window, until + 1);
        let mut total = 0usize;
        let mut intersecting = 0usize;
        // The dominant shape — one distinct pair, both sides indexed — runs
        // as a single pass over the second device's timeline slice against
        // the first device's posting slices (see [`PairAffinitySession`]).
        // The one-shot session pays its dispatch-table setup for a single
        // merge, but still measures faster than a per-AP slice merge — and
        // the hot caller (Algorithm 2) amortizes one session across all
        // neighbors of a query.
        if let [a, b] = *devices {
            if a != b && self.store.postings_of(a).is_some() && self.store.postings_of(b).is_some()
            {
                return self.pair_session(a, until).affinity(b);
            }
        }
        for &device in devices {
            let delta = self.store.delta(device);
            match self.store.postings_of(device) {
                Some(postings) => self.tally_indexed(
                    postings,
                    devices,
                    device,
                    delta,
                    window,
                    &mut total,
                    &mut intersecting,
                ),
                None => self.tally_scanned(
                    devices,
                    device,
                    delta,
                    window,
                    &mut total,
                    &mut intersecting,
                ),
            }
        }
        if total == 0 {
            0.0
        } else {
            intersecting as f64 / total as f64
        }
    }

    /// The indexed fast path of [`AffinityEngine::device_affinity`] for one
    /// device of the set.
    ///
    /// The window event *total* is one bucket-pruned count over the device's
    /// all-APs multiset. The *intersecting* count then only ever touches
    /// access points **every** device of the set connected to: the devices'
    /// AP lists are intersected by a sorted merge (each other device's list
    /// pointer advances monotonically), and on each shared AP the device's
    /// window timestamps merge against the others' posting lists through
    /// forward-only cursors. APs not shared by the whole set — typically most
    /// of them — cost nothing at all.
    #[allow(clippy::too_many_arguments)]
    fn tally_indexed(
        &self,
        postings: &DevicePostings,
        devices: &[DeviceId],
        device: DeviceId,
        delta: Timestamp,
        window: Interval,
        total: &mut usize,
        intersecting: &mut usize,
    ) {
        *total += postings.count_in(window);
        let others: Vec<OtherDevice<'_>> = devices
            .iter()
            .filter(|&&other| other != device)
            .map(|&other| match self.store.postings_of(other) {
                Some(other_postings) => OtherDevice::Indexed(other_postings),
                None => OtherDevice::Scanned(other),
            })
            .collect();
        // Sorted-merge position of each indexed other device's AP lists;
        // advances monotonically with this device's AP iteration.
        let mut ap_pos: Vec<usize> = vec![0; others.len()];
        let mut probes: Vec<OtherOnAp<'_>> = Vec::with_capacity(others.len());
        for list in postings.ap_lists() {
            let ap = list.ap();
            // Lists without window events need no merge work at all (their
            // events are already in the total and can contribute nothing).
            let mut window_ts = list.timestamps_in(window).peekable();
            if window_ts.peek().is_none() {
                continue;
            }
            probes.clear();
            let mut impossible = false;
            for (slot, other) in others.iter().enumerate() {
                match other {
                    OtherDevice::Indexed(other_postings) => {
                        let lists = other_postings.ap_lists();
                        let mut idx = ap_pos[slot];
                        while idx < lists.len() && lists[idx].ap() < ap {
                            idx += 1;
                        }
                        ap_pos[slot] = idx;
                        if idx < lists.len() && lists[idx].ap() == ap {
                            probes.push(OtherOnAp::Indexed(lists[idx].cursor()));
                        } else {
                            // That device never connected to this AP: nothing
                            // here can intersect (the events are already in
                            // the total).
                            impossible = true;
                            break;
                        }
                    }
                    OtherDevice::Scanned(other) => probes.push(OtherOnAp::Scanned(*other)),
                }
            }
            if impossible {
                continue;
            }
            for t in window_ts {
                // The window iterator is ascending, so `t - delta` never
                // decreases — exactly the contract of the merge cursors.
                let all_present = probes.iter_mut().all(|other| match other {
                    OtherOnAp::Indexed(cursor) => cursor
                        .advance_to(t - delta)
                        .is_some_and(|ts| ts < t + delta + 1),
                    OtherOnAp::Scanned(other) => self
                        .store
                        .events_of_in(*other, Interval::new(t - delta, t + delta + 1))
                        .any(|e| e.ap == ap),
                });
                if all_present {
                    *intersecting += 1;
                }
            }
        }
    }

    /// The scan fallback of [`AffinityEngine::device_affinity`] for one device
    /// of the set (used when its store view exposes no index): the original
    /// segment-pruned per-event window scan.
    fn tally_scanned(
        &self,
        devices: &[DeviceId],
        device: DeviceId,
        delta: Timestamp,
        window: Interval,
        total: &mut usize,
        intersecting: &mut usize,
    ) {
        for event in self.store.events_of_in(device, window) {
            *total += 1;
            let near = Interval::new(event.t - delta, event.t + delta + 1);
            let all_present = devices.iter().filter(|&&d| d != device).all(|&other| {
                match self.store.postings_of(other) {
                    // Another device of the set may still be indexed; the
                    // probe answers identically either way.
                    Some(other_postings) => other_postings
                        .on_ap(event.ap)
                        .is_some_and(|list| list.any_in(near)),
                    None => self
                        .store
                        .events_of_in(other, near)
                        .any(|e| e.ap == event.ap),
                }
            });
            if all_present {
                *intersecting += 1;
            }
        }
    }

    /// Pairwise device affinity `α({a, b})`.
    pub fn pair_affinity(&self, a: DeviceId, b: DeviceId, until: Timestamp) -> f64 {
        self.device_affinity(&[a, b], until)
    }

    /// A [`PairAffinitySession`] for the repeated `α({device, ·})`
    /// evaluations of one query — same answers as
    /// [`AffinityEngine::pair_affinity`], the queried side computed once.
    pub fn pair_session(&self, device: DeviceId, until: Timestamp) -> PairAffinitySession<'a> {
        PairAffinitySession::new(*self, device, until)
    }

    // ------------------------------------------------------------------
    // Group affinity
    // ------------------------------------------------------------------

    /// Group affinity `α(D, r_j, t_q)` (Eq. 1): the probability of all devices in
    /// `group` being co-located in `room`, given the regions each device is currently
    /// located in and an already-computed device affinity for the set.
    ///
    /// `group` pairs each device with the region the coarse step (or its covering
    /// event) placed it in at the query time. The intersection `R_is` of the candidate
    /// rooms of those regions is computed here; the affinity is 0 when `room` lies
    /// outside it.
    pub fn group_affinity(
        &self,
        group: &[(DeviceId, RegionId)],
        room: RoomId,
        device_affinity: f64,
    ) -> f64 {
        if group.is_empty() || device_affinity <= 0.0 {
            return 0.0;
        }
        let space = self.store.space();
        let regions: Vec<RegionId> = group.iter().map(|&(_, g)| g).collect();
        let intersection = space.intersect_regions(&regions);
        if !intersection.contains(&room) {
            return 0.0;
        }
        let mut probability = device_affinity;
        for &(device, region) in group {
            let affinity = self.room_affinities(device, region);
            probability *= affinity.conditional_within(room, &intersection);
        }
        probability
    }

    /// Memoized [`AffinityEngine::room_affinities`]: computes the distribution
    /// on first use and returns the cached copy afterwards.
    pub fn room_affinities_memo<'m>(
        &self,
        memo: &'m mut RoomAffinityMemo,
        device: DeviceId,
        region: RegionId,
    ) -> &'m RoomAffinity {
        memo.entries
            .entry((device, region))
            .or_insert_with(|| self.room_affinities(device, region))
    }

    /// [`AffinityEngine::group_affinity`] evaluated over every room of
    /// `rooms` at once: the region intersection is computed once per group
    /// (not once per room) and per-device room affinities are read through
    /// `memo`. Element `i` equals `group_affinity(group, rooms[i],
    /// device_affinity)` bit for bit.
    pub fn group_affinities(
        &self,
        memo: &mut RoomAffinityMemo,
        group: &[(DeviceId, RegionId)],
        rooms: &[RoomId],
        device_affinity: f64,
    ) -> Vec<f64> {
        if group.is_empty() || device_affinity <= 0.0 {
            return vec![0.0; rooms.len()];
        }
        let space = self.store.space();
        let regions: Vec<RegionId> = group.iter().map(|&(_, g)| g).collect();
        let intersection = space.intersect_regions(&regions);
        // Materialize every member's distribution, then cache its subset
        // total: `conditional_within` recomputes the sum per room, which made
        // this loop cubic in the candidate count. The total is the identical
        // expression evaluated once, so every division is bit-identical.
        for &(device, region) in group {
            self.room_affinities_memo(memo, device, region);
        }
        let members: Vec<(&RoomAffinity, f64)> = group
            .iter()
            .map(|&(device, region)| {
                let affinity = memo.get(device, region).expect("memoized above");
                let total: f64 = intersection.iter().map(|&r| affinity.of(r)).sum();
                (affinity, total)
            })
            .collect();
        rooms
            .iter()
            .map(|&room| {
                if !intersection.contains(&room) {
                    return 0.0;
                }
                let mut probability = device_affinity;
                for &(affinity, total) in &members {
                    // `conditional_within(room, intersection)` with the
                    // subset total hoisted.
                    probability *= if total <= 0.0 {
                        1.0 / intersection.len() as f64
                    } else {
                        affinity.of(room) / total
                    };
                }
                probability
            })
            .collect()
    }
}

/// Precomputed query-side state for the pairwise device affinities of one
/// `locate` call.
///
/// Algorithm 2 evaluates `α({d, n})` for up to `max_neighbors` neighbors `n`
/// with the *same* queried device `d`, history window, and δ. The session
/// materializes `d`'s side of the merge once — per-AP window/vicinity slices
/// borrowed straight from the co-location index plus a dense AP dispatch
/// table — so each neighbor costs only one pass over its own (contiguous,
/// segment-pruned) timeline slice. [`PairAffinitySession::affinity`] is
/// bit-identical to [`AffinityEngine::pair_affinity`] (asserted in
/// `tests/affinity_index_equivalence.rs`); it falls back to the engine
/// whenever either side has no index.
pub struct PairAffinitySession<'a> {
    engine: AffinityEngine<'a>,
    device: DeviceId,
    until: Timestamp,
    window: Interval,
    delta: Timestamp,
    /// `Some` when the queried device's store view is indexed.
    side: Option<QuerySide<'a>>,
}

/// The queried device's precomputed merge slices (borrowed from the store).
struct QuerySide<'a> {
    total_in_window: usize,
    /// The window padded by the queried device's δ: exactly the stretch of
    /// neighbor events that can take part in either merge direction.
    ext: Interval,
    /// Dense AP dispatch: `slot_of[ap] = index into aps`, `u32::MAX` when the
    /// queried device has no relevant events on that AP.
    slot_of: Vec<u32>,
    aps: Vec<QueryAp<'a>>,
    /// Reused per-neighbor cursor pairs, one per entry of `aps`.
    cursors: std::cell::RefCell<Vec<(u32, u32)>>,
}

struct QueryAp<'a> {
    /// The device's events on this AP within the window padded by the global
    /// max δ — every timestamp any neighbor's merge can involve (the partner
    /// slice for the neighbor-side direction).
    full: &'a [Timestamp],
    /// The in-window sub-slice of `full` (the own slice).
    win: &'a [Timestamp],
}

impl<'a> PairAffinitySession<'a> {
    fn new(engine: AffinityEngine<'a>, device: DeviceId, until: Timestamp) -> Self {
        let window = Interval::new(until - engine.window, until + 1);
        let delta = engine.store.delta(device);
        let side = engine.store.postings_of(device).map(|postings| {
            // Lists with no events anywhere near the window cannot take part
            // in any direction of any neighbor's merge (δ ≤ the global max δ
            // bounds each side's reach), so they are dropped up front.
            let slack = engine.store.max_delta();
            let reach = Interval::new(window.start - slack, window.end + slack);
            let mut slot_of = vec![u32::MAX; engine.store.space().num_access_points()];
            let mut aps = Vec::new();
            for list in postings.ap_lists() {
                let full = list.slice_in(reach);
                if full.is_empty() {
                    continue;
                }
                let lo = full.partition_point(|&t| t < window.start);
                let hi = lo + full[lo..].partition_point(|&t| t < window.end);
                slot_of[list.ap().index()] = aps.len() as u32;
                aps.push(QueryAp {
                    full,
                    win: &full[lo..hi],
                });
            }
            QuerySide {
                total_in_window: postings.count_in(window),
                ext: Interval::new(window.start - delta, window.end + delta),
                cursors: std::cell::RefCell::new(vec![(0, 0); aps.len()]),
                slot_of,
                aps,
            }
        });
        Self {
            engine,
            device,
            until,
            window,
            delta,
            side,
        }
    }

    /// `α({device, other})` — bit-identical to
    /// [`AffinityEngine::pair_affinity`]`(device, other, until)`.
    ///
    /// One pass over the neighbor's (contiguous, segment-pruned) timeline
    /// slice drives both merge directions: for each neighbor event near the
    /// window, the session-side per-AP cursors (a) count the queried device's
    /// not-yet-counted window events the neighbor event reaches within the
    /// queried δ, and (b) probe whether the queried device has an event
    /// within the neighbor's δ. The neighbor's per-AP posting lists are never
    /// touched — only its timeline slice, read sequentially.
    pub fn affinity(&self, other: DeviceId) -> f64 {
        let (Some(side), Some(pb)) = (
            (other != self.device)
                .then_some(self.side.as_ref())
                .flatten(),
            self.engine.store.postings_of(other),
        ) else {
            return self.engine.pair_affinity(self.device, other, self.until);
        };
        let total = side.total_in_window + pb.count_in(self.window);
        if total == 0 {
            return 0.0;
        }
        let delta_b = self.engine.store.delta(other);
        let mut cursors = side.cursors.borrow_mut();
        cursors.fill((0, 0));
        let mut intersecting = 0usize;
        for event in self.engine.store.events_of_in(other, side.ext) {
            let slot = side.slot_of[event.ap.index()];
            if slot == u32::MAX {
                // The queried device has no events near the window on this
                // AP: the neighbor event reaches nothing and has no partner.
                continue;
            }
            let qa = &side.aps[slot as usize];
            let (cover, probe) = &mut cursors[slot as usize];
            let t_b = event.t;
            // Query-side direction: count own window events in
            // [t_b − δ, t_b + δ] not counted yet. Reaches advance with t_b,
            // so skipped events (below the reach) are dead for good and each
            // own event is counted at most once. Cursor steps are linear —
            // the per-AP strides are a handful of events, where a branchy
            // walk beats a binary search.
            let mut cov = *cover as usize;
            while cov < qa.win.len() && qa.win[cov] < t_b - self.delta {
                cov += 1;
            }
            let start = cov;
            while cov < qa.win.len() && qa.win[cov] <= t_b + self.delta {
                cov += 1;
            }
            intersecting += cov - start;
            *cover = cov as u32;
            // Neighbor-side direction: an in-window neighbor event intersects
            // iff the queried device has an event on this AP within δ_other.
            if self.window.contains(t_b) {
                let mut pr = *probe as usize;
                while pr < qa.full.len() && qa.full[pr] < t_b - delta_b {
                    pr += 1;
                }
                *probe = pr as u32;
                if pr < qa.full.len() && qa.full[pr] <= t_b + delta_b {
                    intersecting += 1;
                }
            }
        }
        intersecting as f64 / total as f64
    }

    /// [`PairAffinitySession::affinity`] gated by the contribution threshold:
    /// `Some(α)` exactly when `α >= floor && α > 0` — the neighbor-contribution
    /// predicate of Algorithm 2, shared so every caller applies it identically.
    pub fn contributing_affinity(&self, other: DeviceId, floor: f64) -> Option<f64> {
        let pair = self.affinity(other);
        (pair >= floor && pair > 0.0).then_some(pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locater_space::{RoomType, SpaceBuilder};
    use locater_store::EventStore;

    /// The paper's running example (Fig. 3): region g3 covers five rooms, 2061 is d1's
    /// office, 2065 is a public meeting room, 2059 is d2's office.
    fn example_store() -> EventStore {
        let space = SpaceBuilder::new("fig3")
            .add_access_point("wap3", &["2059", "2061", "2065", "2069", "2099"])
            .add_access_point("wap2", &["2059", "2061", "2065", "2069", "2099"])
            .room_type("2065", RoomType::Public)
            .room_owner("2061", "d1")
            .room_owner("2059", "d2")
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        store.ingest_raw("d1", 1_000, "wap3").unwrap();
        store.ingest_raw("d2", 1_000, "wap3").unwrap();
        store
    }

    #[test]
    fn weights_presets_are_valid() {
        for w in RoomAffinityWeights::TABLE2 {
            assert!(w.preferred > w.public && w.public > w.private);
            assert!(((w.preferred + w.public + w.private) - 1.0).abs() < 1e-9);
        }
        assert_eq!(RoomAffinityWeights::default(), RoomAffinityWeights::C2);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        assert!(RoomAffinityWeights::new(0.3, 0.4, 0.3).is_err()); // not ordered
        assert!(RoomAffinityWeights::new(0.5, 0.3, 0.1).is_err()); // sums to 0.9
        assert!(RoomAffinityWeights::new(0.6, 0.3, 0.1).is_ok());
    }

    #[test]
    fn room_affinities_match_running_example() {
        // With C3 = {0.5, 0.3, 0.2}: α(d1, 2061) = 0.5, α(d1, 2065) = 0.3 and the
        // three remaining private rooms share 0.2/3 ≈ 0.066 (paper §4.1).
        let store = example_store();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C3, 3_600);
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let affinity = engine.room_affinities(d1, g3);
        let space = store.space();
        let room = |name: &str| space.room_id(name).unwrap();
        assert!((affinity.of(room("2061")) - 0.5).abs() < 1e-9);
        assert!((affinity.of(room("2065")) - 0.3).abs() < 1e-9);
        assert!((affinity.of(room("2059")) - 0.2 / 3.0).abs() < 1e-9);
        assert!((affinity.affinities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(affinity.best(), Some(room("2061")));
        assert_eq!(affinity.of(RoomId::new(999)), 0.0);
    }

    #[test]
    fn room_affinities_without_preferred_rooms_renormalize() {
        let store = example_store();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C2, 3_600);
        let g3 = store.space().ap_id("wap3").unwrap().region();
        // A device with no preferred rooms: mass is split between public and private.
        let mut store2 = EventStore::new(store.space().as_ref().clone());
        store2.ingest_raw("stranger", 500, "wap3").unwrap();
        let engine2 = AffinityEngine::new(&store2, RoomAffinityWeights::C2, 3_600);
        let stranger = store2.device_id("stranger").unwrap();
        let affinity = engine2.room_affinities(stranger, g3);
        assert!((affinity.affinities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Public room 2065 gets 0.3/(0.3+0.1); each of the 4 private rooms gets
        // (0.1/(0.3+0.1))/4.
        let space = store2.space();
        let public = affinity.of(space.room_id("2065").unwrap());
        let private = affinity.of(space.room_id("2099").unwrap());
        assert!((public - 0.75).abs() < 1e-9);
        assert!((private - 0.0625).abs() < 1e-9);
        assert!(public > private);
        let _ = engine;
    }

    #[test]
    fn conditional_within_matches_paper_example() {
        // P(@(d1, 2065) | @(d1, {2065, 2069, 2099})) = .3 / (.3 + .066 + .066) ≈ .69
        let store = example_store();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C3, 3_600);
        let d1 = store.device_id("d1").unwrap();
        let g3 = store.space().ap_id("wap3").unwrap().region();
        let affinity = engine.room_affinities(d1, g3);
        let space = store.space();
        let subset = vec![
            space.room_id("2065").unwrap(),
            space.room_id("2069").unwrap(),
            space.room_id("2099").unwrap(),
        ];
        let p = affinity.conditional_within(space.room_id("2065").unwrap(), &subset);
        assert!((p - 0.3 / (0.3 + 2.0 * 0.2 / 3.0)).abs() < 1e-9);
        // Room outside the subset has zero conditional probability.
        assert_eq!(
            affinity.conditional_within(space.room_id("2061").unwrap(), &subset),
            0.0
        );
    }

    #[test]
    fn device_affinity_counts_colocated_events() {
        let space = SpaceBuilder::new("pair")
            .add_access_point("wap0", &["a", "b"])
            .add_access_point("wap1", &["c", "d"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        // d1 and d2 connect together to wap0 three times, d1 alone once on wap1.
        for i in 0..3 {
            store.ingest_raw("d1", 1_000 + i * 2_000, "wap0").unwrap();
            store.ingest_raw("d2", 1_100 + i * 2_000, "wap0").unwrap();
        }
        store.ingest_raw("d1", 50_000, "wap1").unwrap();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C2, 100_000);
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let affinity = engine.pair_affinity(d1, d2, 60_000);
        // 6 of the 7 events are intersecting.
        assert!((affinity - 6.0 / 7.0).abs() < 1e-9);
        // Affinity of a device with itself-only set is zero.
        assert_eq!(engine.device_affinity(&[d1], 60_000), 0.0);
    }

    #[test]
    fn device_affinity_is_zero_for_never_colocated_devices() {
        let space = SpaceBuilder::new("pair")
            .add_access_point("wap0", &["a"])
            .add_access_point("wap1", &["b"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        store.ingest_raw("d1", 1_000, "wap0").unwrap();
        store.ingest_raw("d2", 1_000, "wap1").unwrap();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C2, 100_000);
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        assert_eq!(engine.pair_affinity(d1, d2, 2_000), 0.0);
    }

    #[test]
    fn group_affinity_matches_paper_arithmetic() {
        // Paper §4.1: α({d1, d2}) = .4, P(d1 in 2065 | R_is) = .69,
        // P(d2 in 2065 | R_is) = .44 → α({d1, d2}, 2065) ≈ .12.
        // We reproduce the structure (not the exact .44, which depends on d2's
        // affinities): group affinity = device affinity × product of conditionals.
        let store = example_store();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C3, 3_600);
        let space = store.space();
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let g3 = space.ap_id("wap3").unwrap().region();
        let room_2065 = space.room_id("2065").unwrap();
        let device_affinity = 0.4;
        let group = vec![(d1, g3), (d2, g3)];
        let affinity = engine.group_affinity(&group, room_2065, device_affinity);
        let a1 = engine.room_affinities(d1, g3);
        let a2 = engine.room_affinities(d2, g3);
        let candidates = space.rooms_in_region(g3).to_vec();
        let expected = device_affinity
            * a1.conditional_within(room_2065, &candidates)
            * a2.conditional_within(room_2065, &candidates);
        assert!((affinity - expected).abs() < 1e-12);
        assert!(affinity > 0.0 && affinity < device_affinity);
    }

    #[test]
    fn group_affinity_is_zero_outside_the_intersection() {
        let space = SpaceBuilder::new("overlap")
            .add_access_point("wap0", &["a", "b", "c"])
            .add_access_point("wap1", &["c", "d"])
            .build()
            .unwrap();
        let mut store = EventStore::new(space);
        store.ingest_raw("d1", 1_000, "wap0").unwrap();
        store.ingest_raw("d2", 1_000, "wap1").unwrap();
        let engine = AffinityEngine::new(&store, RoomAffinityWeights::C2, 3_600);
        let space = store.space();
        let d1 = store.device_id("d1").unwrap();
        let d2 = store.device_id("d2").unwrap();
        let g0 = space.ap_id("wap0").unwrap().region();
        let g1 = space.ap_id("wap1").unwrap().region();
        let group = vec![(d1, g0), (d2, g1)];
        // Room "a" is only in g0, not in the intersection {c}.
        let a = space.room_id("a").unwrap();
        let c = space.room_id("c").unwrap();
        assert_eq!(engine.group_affinity(&group, a, 0.5), 0.0);
        assert!(engine.group_affinity(&group, c, 0.5) > 0.0);
        // Zero device affinity kills the group affinity.
        assert_eq!(engine.group_affinity(&group, c, 0.0), 0.0);
        // Empty group has no affinity.
        assert_eq!(engine.group_affinity(&[], c, 0.5), 0.0);
    }
}
