//! Possible-world probability bounds (paper §4.2, Theorems 1–3).
//!
//! Algorithm 2 processes neighbor devices iteratively. After processing a subset
//! `D̄_n ⊆ D_n`, it must decide whether the unprocessed devices `D_n \ D̄_n` could
//! still change the winning room. The paper bounds the posterior of a room over all
//! *possible worlds* (assignments of unprocessed devices to rooms):
//!
//! * the **maximum** is attained in the world where every unprocessed device is in the
//!   candidate room (Theorem 1);
//! * the **minimum** is attained in the world where every unprocessed device is in the
//!   strongest competing room (Theorem 2);
//! * the **expected** posterior over worlds equals the posterior given only the
//!   processed devices (Theorem 3).
//!
//! We do not know the exact group affinity an unprocessed device will contribute until
//! we process it (computing it requires a history scan), so the bounds are evaluated
//! with configurable per-device extremes: `max_unprocessed_affinity` for the
//! most-favourable world and `min_unprocessed_affinity` for the least-favourable one.
//! The resulting `min ≤ expected ≤ max` envelope is what the loosened stop conditions
//! of §4.2 compare.

use serde::{Deserialize, Serialize};

/// Accumulated evidence for one candidate room under the independence assumption.
///
/// The posterior of Eq. 3 can be written as `support / (support + against)` where
/// `support = P(r_j) · Π_k α_k` and `against = (1 − P(r_j)) · Π_k (1 − α_k)` over the
/// processed neighbors `k`; this form avoids the numerically delicate ratio of the
/// paper's formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoomPosterior {
    /// Product of the prior and the group affinities of processed neighbors.
    pub support: f64,
    /// Product of the complement prior and the complements of the group affinities.
    pub against: f64,
}

impl RoomPosterior {
    /// Starts from the room-affinity prior `P(r_j)`.
    pub fn from_prior(prior: f64) -> Self {
        let prior = prior.clamp(0.0, 1.0);
        Self {
            support: prior,
            against: 1.0 - prior,
        }
    }

    /// Folds in the group affinity of one processed neighbor.
    pub fn observe(&mut self, group_affinity: f64) {
        let alpha = group_affinity.clamp(0.0, 1.0);
        self.support *= alpha;
        self.against *= 1.0 - alpha;
    }

    /// A copy of the posterior with `count` additional hypothetical observations of
    /// affinity `alpha` folded in (used by the possible-world bounds).
    pub fn with_hypothetical(&self, alpha: f64, count: usize) -> Self {
        let alpha = alpha.clamp(0.0, 1.0);
        Self {
            support: self.support * alpha.powi(count as i32),
            against: self.against * (1.0 - alpha).powi(count as i32),
        }
    }

    /// The posterior probability `P(r_j | D̄_n)` (Eq. 3 with the prior folded in).
    /// Returns 0 when both accumulators have collapsed to zero.
    pub fn probability(&self) -> f64 {
        let total = self.support + self.against;
        if total <= 0.0 {
            0.0
        } else {
            self.support / total
        }
    }
}

/// The `min ≤ expected ≤ max` envelope of a room's posterior over the possible worlds
/// of the unprocessed neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PosteriorBounds {
    /// `minP(r_j | D̄_n)` — Theorem 2's least-favourable world.
    pub min: f64,
    /// `expP(r_j | D̄_n)` — Theorem 3: the current posterior.
    pub expected: f64,
    /// `maxP(r_j | D̄_n)` — Theorem 1's most-favourable world.
    pub max: f64,
}

impl PosteriorBounds {
    /// Computes the envelope for a room given its current posterior, the number of
    /// unprocessed neighbor devices and the per-device affinity extremes.
    ///
    /// `min_affinity` must not exceed `max_affinity`; both are clamped to `[0, 1]`.
    pub fn compute(
        posterior: &RoomPosterior,
        unprocessed: usize,
        min_affinity: f64,
        max_affinity: f64,
    ) -> Self {
        let lo = min_affinity
            .clamp(0.0, 1.0)
            .min(max_affinity.clamp(0.0, 1.0));
        let hi = max_affinity.clamp(0.0, 1.0).max(lo);
        let expected = posterior.probability();
        if unprocessed == 0 {
            return Self {
                min: expected,
                expected,
                max: expected,
            };
        }
        let max = posterior.with_hypothetical(hi, unprocessed).probability();
        let min = posterior.with_hypothetical(lo, unprocessed).probability();
        Self {
            min: min.min(expected),
            expected,
            max: max.max(expected),
        }
    }

    /// `true` when the envelope is internally consistent (`min ≤ expected ≤ max`).
    pub fn is_consistent(&self) -> bool {
        self.min <= self.expected + 1e-12 && self.expected <= self.max + 1e-12
    }
}

/// The loosened stop conditions of §4.2: given the envelopes of the two currently
/// best rooms `a` (leader) and `b` (runner-up), the iteration may stop when either
///
/// 1. `minP(a) ≥ expP(b)`, or
/// 2. `expP(a) ≥ maxP(b)`.
pub fn stop_condition_met(leader: &PosteriorBounds, runner_up: &PosteriorBounds) -> bool {
    leader.min >= runner_up.expected || leader.expected >= runner_up.max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_only_posterior_equals_prior() {
        let p = RoomPosterior::from_prior(0.3);
        assert!((p.probability() - 0.3).abs() < 1e-12);
        let p = RoomPosterior::from_prior(1.5); // clamped
        assert!((p.probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observations_shift_the_posterior_monotonically() {
        // A strong co-location signal (α close to 1) raises the posterior; a weak one
        // (α close to 0) lowers it.
        let mut up = RoomPosterior::from_prior(0.5);
        up.observe(0.9);
        assert!(up.probability() > 0.5);
        let mut down = RoomPosterior::from_prior(0.5);
        down.observe(0.1);
        assert!(down.probability() < 0.5);
        // Rooms with larger affinities end up with larger posteriors.
        let mut a = RoomPosterior::from_prior(0.5);
        let mut b = RoomPosterior::from_prior(0.5);
        a.observe(0.4);
        b.observe(0.2);
        assert!(a.probability() > b.probability());
    }

    #[test]
    fn zero_affinity_collapses_support() {
        let mut p = RoomPosterior::from_prior(0.8);
        p.observe(0.0);
        assert_eq!(p.probability(), 0.0);
        // Degenerate: both accumulators zero.
        let mut p = RoomPosterior::from_prior(1.0);
        p.observe(0.0);
        assert_eq!(p.probability(), 0.0);
    }

    #[test]
    fn bounds_envelope_is_ordered() {
        let mut p = RoomPosterior::from_prior(0.4);
        p.observe(0.3);
        for unprocessed in 0..6 {
            let bounds = PosteriorBounds::compute(&p, unprocessed, 0.05, 0.8);
            assert!(bounds.is_consistent(), "{bounds:?}");
            if unprocessed == 0 {
                assert_eq!(bounds.min, bounds.max);
            } else {
                assert!(bounds.min < bounds.max);
            }
        }
    }

    #[test]
    fn more_unprocessed_devices_widen_the_envelope() {
        let p = RoomPosterior::from_prior(0.5);
        let narrow = PosteriorBounds::compute(&p, 1, 0.05, 0.8);
        let wide = PosteriorBounds::compute(&p, 5, 0.05, 0.8);
        assert!(wide.max >= narrow.max);
        assert!(wide.min <= narrow.min);
    }

    #[test]
    fn inverted_extremes_are_reordered() {
        let p = RoomPosterior::from_prior(0.5);
        let bounds = PosteriorBounds::compute(&p, 3, 0.9, 0.1);
        assert!(bounds.is_consistent());
    }

    #[test]
    fn stop_conditions_follow_the_paper() {
        let leader = PosteriorBounds {
            min: 0.6,
            expected: 0.7,
            max: 0.9,
        };
        let runner = PosteriorBounds {
            min: 0.1,
            expected: 0.3,
            max: 0.5,
        };
        // minP(a)=0.6 ≥ expP(b)=0.3 → stop.
        assert!(stop_condition_met(&leader, &runner));
        // Overlapping envelopes → keep processing.
        let close_runner = PosteriorBounds {
            min: 0.5,
            expected: 0.65,
            max: 0.95,
        };
        assert!(!stop_condition_met(&leader, &close_runner));
        // Second condition: expP(a) ≥ maxP(b).
        let far_runner = PosteriorBounds {
            min: 0.0,
            expected: 0.65,
            max: 0.69,
        };
        assert!(stop_condition_met(&leader, &far_runner));
    }
}
