//! Fine-grained localization (paper §4): location disambiguation.
//!
//! The coarse step places a device in a *region* — the coverage area of one access
//! point, which in the paper's deployment spans about 11 rooms. The fine step picks
//! the room, combining two signals that require **no labelled room-level data**:
//!
//! * **Room affinity** (§4.1) — the prior probability of a device being in each
//!   candidate room, derived purely from space metadata: the device's *preferred*
//!   rooms (e.g. its owner's office) get the largest weight `w_pf`, *public* rooms the
//!   middle weight `w_pb`, remaining *private* rooms the smallest weight `w_pr`.
//! * **Group affinity** (§4.1, Eq. 1) — the probability that a set of devices is
//!   co-located in a specific room, computed from the *device affinity* (how often the
//!   devices historically connect to the same AP at the same time) and the conditional
//!   room probabilities of each device.
//!
//! [`FineLocalizer`] (§4.2, Algorithm 2) folds the group affinities of *neighbor
//! devices* — devices online at the query time in a region covering the candidate
//! rooms — into a posterior per candidate room, processing neighbors iteratively and
//! stopping early once the leading room cannot be overtaken (Theorems 1–3). Both the
//! independent (`I-FINE`) and the dependent, cluster-based (`D-FINE`) variants are
//! implemented.

mod affinity;
mod algorithm;
mod worlds;

pub use affinity::{
    AffinityEngine, PairAffinitySession, RoomAffinity, RoomAffinityMemo, RoomAffinityWeights,
};
pub use algorithm::{FineConfig, FineLocalizer, FineMode, FineOutcome, NeighborContribution};
pub use worlds::{PosteriorBounds, RoomPosterior};
