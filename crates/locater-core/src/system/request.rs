//! The typed request/response layer of the live service API.
//!
//! A [`LocateRequest`] names the target device (by MAC or by resolved
//! [`DeviceId`]), the query time, and optional *per-request overrides*: the
//! fine-grained mode, whether the caching engine may be consulted, and whether
//! per-query diagnostics should be returned. A [`LocateResponse`] carries the
//! cleaned [`Answer`] plus service-level observability: the device's ingest
//! epoch and the store size at answer time.
//!
//! ```
//! use locater_core::system::{LocateRequest, CacheMode, FineMode};
//!
//! let request = LocateRequest::by_mac("aa:bb:cc:dd:ee:01", 2_500)
//!     .with_fine_mode(FineMode::Dependent)
//!     .with_cache(CacheMode::Disabled)
//!     .with_diagnostics();
//! assert_eq!(request.t, 2_500);
//! assert!(request.diagnostics);
//! ```

use super::{Answer, CacheMode, Query, QueryDiagnostics};
use crate::fine::FineMode;
use locater_events::clock::Timestamp;
use locater_events::DeviceId;
use serde::{Deserialize, Serialize};

/// A location request `Q = (d_i, t_q)` with per-request overrides.
///
/// Build one with [`LocateRequest::by_mac`] / [`LocateRequest::by_device`] and
/// the `with_*` builder methods; fields left `None` inherit the service-level
/// [`LocaterConfig`](super::LocaterConfig).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocateRequest {
    /// Device MAC address / log identifier, if the caller knows it.
    pub mac: Option<String>,
    /// Already-resolved device id, if the caller has one.
    pub device: Option<DeviceId>,
    /// Query time.
    pub t: Timestamp,
    /// Per-request fine-grained mode (I-FINE / D-FINE); `None` inherits the
    /// service configuration.
    pub fine_mode: Option<FineMode>,
    /// Per-request caching engine mode; `None` inherits the service
    /// configuration. [`CacheMode::Disabled`] makes this request neither read
    /// nor warm the global affinity graph.
    pub cache: Option<CacheMode>,
    /// When `true`, the response carries [`QueryDiagnostics`].
    pub diagnostics: bool,
}

impl LocateRequest {
    /// Request by MAC address.
    pub fn by_mac(mac: impl Into<String>, t: Timestamp) -> Self {
        Self {
            mac: Some(mac.into()),
            device: None,
            t,
            fine_mode: None,
            cache: None,
            diagnostics: false,
        }
    }

    /// Request by device id.
    pub fn by_device(device: DeviceId, t: Timestamp) -> Self {
        Self {
            mac: None,
            device: Some(device),
            t,
            fine_mode: None,
            cache: None,
            diagnostics: false,
        }
    }

    /// A request equivalent to a legacy [`Query`] (no overrides).
    pub fn from_query(query: &Query) -> Self {
        Self {
            mac: query.mac.clone(),
            device: query.device,
            t: query.t,
            fine_mode: None,
            cache: None,
            diagnostics: false,
        }
    }

    /// The legacy [`Query`] this request targets (overrides are dropped).
    pub fn to_query(&self) -> Query {
        Query {
            mac: self.mac.clone(),
            device: self.device,
            t: self.t,
        }
    }

    /// Overrides the fine-grained mode for this request only.
    pub fn with_fine_mode(mut self, mode: FineMode) -> Self {
        self.fine_mode = Some(mode);
        self
    }

    /// Overrides the caching engine mode for this request only.
    pub fn with_cache(mut self, cache: CacheMode) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Shorthand for `with_cache(CacheMode::Disabled)`: answer without reading
    /// or warming the global affinity graph.
    pub fn bypass_cache(self) -> Self {
        self.with_cache(CacheMode::Disabled)
    }

    /// Opts this request into per-query diagnostics.
    pub fn with_diagnostics(mut self) -> Self {
        self.diagnostics = true;
        self
    }
}

impl From<Query> for LocateRequest {
    fn from(query: Query) -> Self {
        Self::from_query(&query)
    }
}

/// The response to a [`LocateRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct LocateResponse {
    /// The cleaned answer.
    pub answer: Answer,
    /// The queried device's ingest epoch at answer time. Two responses for the
    /// same device with equal epochs were answered over the same device
    /// history; a higher epoch means events arrived in between (see
    /// [`super::epoch`]).
    pub device_epoch: u64,
    /// Total number of events in the store when the answer was computed.
    pub events_seen: usize,
    /// Per-query diagnostics, present iff the request opted in.
    pub diagnostics: Option<QueryDiagnostics>,
}

impl LocateResponse {
    /// The cleaned semantic location (shorthand for `self.answer.location`).
    pub fn location(&self) -> super::Location {
        self.answer.location
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_overrides() {
        let request = LocateRequest::by_mac("aa", 10)
            .with_fine_mode(FineMode::Dependent)
            .bypass_cache()
            .with_diagnostics();
        assert_eq!(request.mac.as_deref(), Some("aa"));
        assert_eq!(request.fine_mode, Some(FineMode::Dependent));
        assert_eq!(request.cache, Some(CacheMode::Disabled));
        assert!(request.diagnostics);

        let by_device = LocateRequest::by_device(DeviceId::new(3), 20);
        assert_eq!(by_device.device, Some(DeviceId::new(3)));
        assert_eq!(by_device.fine_mode, None);
        assert_eq!(by_device.cache, None);
        assert!(!by_device.diagnostics);
    }

    #[test]
    fn query_roundtrip_drops_overrides() {
        let query = Query::by_mac("aa", 99);
        let request = LocateRequest::from(query.clone()).with_diagnostics();
        assert_eq!(request.to_query(), query);
        assert_eq!(LocateRequest::from_query(&query).to_query(), query);
    }
}
