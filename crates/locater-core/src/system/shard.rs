//! The sharded live service: N independent per-device partitions behind one
//! query API.
//!
//! LOCATER's pipeline is embarrassingly partitionable by device — coarse
//! localization, δ estimation, epochs and model state are per-device, and only
//! the fine-grained affinity step reads across devices. The
//! [`ShardedLocaterService`] exploits that: each shard owns its own segmented
//! [`EventStore`], `RwLock`, [`EpochTable`] and caches (affinity edges and
//! coarse models), so **concurrent ingests for different devices never contend
//! on a lock**. Cross-device reads go through a read-only multi-shard view
//! ([`locater_store::ShardedRead`]) assembled from per-shard read guards taken
//! in ascending shard order.
//!
//! ## State placement
//!
//! | State | Lives in |
//! |---|---|
//! | device `d`'s timeline, epoch counter, coarse model | `d`'s home shard (`shard_of_device(d, n)`) |
//! | device table (ids, MACs, δs) | replicated in every shard store |
//! | affinity edge `{a, b}` | the home shard of `min(a, b)` |
//!
//! ## Equivalence
//!
//! Answers are **byte-identical to a single-shard
//! [`LocaterService`](super::LocaterService)** for
//! every shard count — the public [`LocaterService`](super::LocaterService)
//! *is* the `shards = 1`
//! special case of this type. The canonical `(t, device)` order of the global
//! timeline index makes the merged neighbor scan representation-transparent,
//! and edge/model/epoch placement partitions (never duplicates) the state a
//! single-shard deployment would hold. `tests/shard_equivalence.rs` enforces
//! this for LCG-seeded ingest/locate interleavings at N ∈ {2, 3, 8}.

use super::batch::{self, BatchItem};
use super::epoch::{EpochCache, EpochRead, EpochTable, ModelEntry};
use super::request::{LocateRequest, LocateResponse};
use super::service::{resolve_target, Engines, FinePlan};
use super::{assemble_answer, Answer, CacheMode, LocaterConfig, Location, QueryDiagnostics};
use crate::cache::{edge_key, rank_by_weight};
use crate::coarse::{CoarseLabel, DeviceCoarseModel};
use crate::error::LocaterError;
use crate::fine::NeighborContribution;
use locater_events::clock::Timestamp;
use locater_events::validity::estimate_delta_events;
use locater_events::{DeviceId, EventId};
use locater_space::Space;
use locater_store::recovery::{
    initialize_wal, recover_store_io, write_checkpoint_io, RecoveryReport,
};
use locater_store::{
    compaction, shard_of_device, CompactionReport, Durability, DwellSummary, EventRead, EventStore,
    IngestError, RawEvent, RealIo, ShardWal, ShardedRead, StorageIo, StoreError, WalError,
    WalRecord, WalShardStats,
};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The mutable half of one shard: its partition of the event store, the epoch
/// table authoritative for its owned devices, and (when durability is
/// configured) the shard's write-ahead log — all updated together under one
/// lock, so a query always sees a consistent `(store, epochs)` pair and the
/// WAL append is part of the same mutation as the in-memory append.
#[derive(Debug)]
struct ShardLive {
    store: EventStore,
    epochs: EpochTable,
    wal: Option<ShardWal>,
}

/// One shard: its mutable `(store, epochs)` pair plus its own engines (config,
/// localizers, affinity cache, model cache).
#[derive(Debug)]
struct Shard {
    live: RwLock<ShardLive>,
    engines: Engines,
}

/// Per-shard observability counters reported by
/// [`ShardedLocaterService::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Events stored in this shard's partition.
    pub events: usize,
    /// Devices whose home shard this is (their timelines, epochs and models
    /// live here).
    pub owned_devices: usize,
    /// Affinity edges physically held by this shard's cache (live and stale).
    pub edges: usize,
    /// Affinity edges live under the current epochs.
    pub live_edges: usize,
    /// Affinity samples physically held (live and stale).
    pub samples: usize,
    /// Affinity samples live under the current epochs.
    pub live_samples: usize,
    /// Co-location-index posting lists held by this shard's store partition
    /// (one per `(owned device, access point)` pair with events).
    pub index_ap_lists: usize,
    /// Co-location-index time buckets across those posting lists.
    pub index_buckets: usize,
    /// Mutable head segments in this shard's partition (one per owned device
    /// with retained history).
    pub head_segments: usize,
    /// Sealed (immutable) segments in this shard's partition.
    pub sealed_segments: usize,
    /// Approximate resident heap bytes of this shard's store partition.
    pub resident_bytes: usize,
}

/// Service-wide compaction gauges reported by
/// [`ShardedLocaterService::compaction_status`] (and surfaced through the
/// server's `stats` response and `locater-cli stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStatus {
    /// Compaction runs since boot that evicted at least one event.
    pub runs: u64,
    /// Events evicted from the hot tier since boot.
    pub evicted_events: u64,
    /// Sealed segments evicted since boot.
    pub evicted_segments: u64,
    /// The bucket-aligned cut of the most recent effective run, if any:
    /// every event with `t <` this is out of the hot tier.
    pub last_cut: Option<Timestamp>,
    /// Dwell-summary rows currently accumulated in the summary tier.
    pub summary_rows: usize,
}

/// In-memory compaction state: cumulative gauges plus the accumulated
/// summary tier (also persisted to the spill directory when one is given).
#[derive(Debug, Default)]
struct CompactionState {
    status: CompactionStatus,
    summaries: Vec<DwellSummary>,
}

/// Service-wide write-ahead-log gauges reported by
/// [`ShardedLocaterService::wal_status`] (and surfaced through the server's
/// `stats` response) when durability is configured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalStatus {
    /// The WAL directory.
    pub dir: String,
    /// The configured fsync policy, rendered (`always` / `every=N` /
    /// `interval=MS`).
    pub fsync: String,
    /// Live segment files across all shards.
    pub segments: u64,
    /// Frames (logged events) across all shards — the replay cost of a crash
    /// right now.
    pub frames: u64,
    /// Bytes across all shard logs (segment headers included).
    pub bytes: u64,
    /// Milliseconds since the last checkpoint (boot counts as one).
    pub last_checkpoint_age_ms: u64,
    /// Checkpoints taken since boot (the boot checkpoint included).
    pub checkpoints: u64,
    /// Per-shard breakdown.
    pub per_shard: Vec<WalShardStats>,
}

/// Epoch view over the per-shard tables: the table of a device's home shard is
/// authoritative for it.
struct ShardedEpochs<'a> {
    tables: Vec<&'a EpochTable>,
}

impl EpochRead for ShardedEpochs<'_> {
    fn epoch_of(&self, device: DeviceId) -> u64 {
        self.tables[shard_of_device(device, self.tables.len())].of(device)
    }
}

/// The sharded live LOCATER service: online ingestion + query answering over
/// `N` per-device partitions (see the [module docs](self) for the design).
///
/// The public API mirrors [`LocaterService`](super::LocaterService) — which is
/// exactly this type with one shard — and answers are byte-identical for every
/// shard count. Use more shards when concurrent ingest throughput matters:
/// an ingest for a known device write-locks only the device's home shard.
///
/// ```
/// use locater_core::system::{LocateRequest, LocaterConfig, ShardedLocaterService};
/// use locater_space::SpaceBuilder;
/// use locater_store::EventStore;
///
/// let space = SpaceBuilder::new("demo")
///     .add_access_point("wap1", &["101", "102"])
///     .build()
///     .unwrap();
/// let service =
///     ShardedLocaterService::new(EventStore::new(space), LocaterConfig::default(), 4);
/// assert_eq!(service.num_shards(), 4);
///
/// // Ingest routes each event to the device's home shard.
/// service.ingest("aa:bb:cc:dd:ee:01", 1_000, "wap1").unwrap();
/// service.ingest("aa:bb:cc:dd:ee:01", 4_000, "wap1").unwrap();
///
/// // Queries answer over the multi-shard view, identically to one shard.
/// let response = service
///     .locate(&LocateRequest::by_mac("aa:bb:cc:dd:ee:01", 2_500))
///     .unwrap();
/// assert!(response.answer.is_inside());
/// assert_eq!(response.device_epoch, 2);
/// ```
#[derive(Debug)]
pub struct ShardedLocaterService {
    shards: Vec<Shard>,
    /// Global event-id sequence: ids stay globally sequential across shards
    /// (each append aligns the owning shard's counter from here), so the
    /// rejoined store is bit-identical to a single-shard deployment's.
    next_event_id: AtomicU64,
    /// Durability configuration when a WAL is attached
    /// ([`ShardedLocaterService::with_durability`]); `None` for the default
    /// in-memory-only service.
    durability: Option<Durability>,
    /// When the last checkpoint was written (boot counts as one).
    last_checkpoint: Mutex<Option<Instant>>,
    /// Checkpoints taken since boot.
    checkpoints: AtomicU64,
    /// Compaction gauges and the in-memory summary tier. Held briefly by
    /// compaction runs and `stats` reads — never while a shard lock is held
    /// for ingest or query work.
    compaction: Mutex<CompactionState>,
}

impl ShardedLocaterService {
    /// Creates a service over an initial (possibly empty) store, partitioned
    /// into `shards` per-device shards (clamped to at least 1).
    pub fn new(store: EventStore, config: LocaterConfig, shards: usize) -> Self {
        let next_event_id = AtomicU64::new(store.next_event_id());
        let shards = store
            .split(shards.max(1))
            .into_iter()
            .map(|piece| Shard {
                live: RwLock::new(ShardLive {
                    store: piece,
                    epochs: EpochTable::new(),
                    wal: None,
                }),
                engines: Engines::new(config),
            })
            .collect();
        Self {
            shards,
            next_event_id,
            durability: None,
            last_checkpoint: Mutex::new(None),
            checkpoints: AtomicU64::new(0),
            compaction: Mutex::new(CompactionState::default()),
        }
    }

    /// Creates a durable service: recovers whatever state the WAL directory
    /// holds (checkpoint snapshot + log tails — `store` is the fallback base
    /// when no checkpoint exists yet, e.g. a CSV preload on first boot),
    /// writes a fresh boot checkpoint, and attaches one write-ahead log per
    /// shard so every subsequent ingest is logged inside the same per-shard
    /// mutation that applies it. Returns the service and the
    /// [`RecoveryReport`] describing what was recovered.
    ///
    /// The boot checkpoint makes shard-count changes safe: the recovered
    /// state is captured in one combined snapshot and the logs restart empty,
    /// so the on-disk layout never mixes records from different shardings.
    pub fn with_durability(
        store: EventStore,
        config: LocaterConfig,
        shards: usize,
        durability: Durability,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let (store, report) = recover_store_io(&durability.dir, store, durability.io.as_ref())?;
        let writers = initialize_wal(&durability, &store, shards.max(1))?.0;
        let mut service = Self::new(store, config, shards);
        for (shard, wal) in service.shards.iter().zip(writers) {
            shard.live.write().wal = Some(wal);
        }
        *service.last_checkpoint.lock() = Some(Instant::now());
        service.checkpoints.store(1, Ordering::Relaxed);
        service.durability = Some(durability);
        Ok((service, report))
    }

    /// Cold-starts a sharded service from a binary snapshot (the same file
    /// format a single-shard deployment writes — the store is split after
    /// loading).
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        config: LocaterConfig,
        shards: usize,
    ) -> Result<Self, StoreError> {
        Ok(Self::new(EventStore::load_snapshot(path)?, config, shards))
    }

    /// Builds a single-shard service around existing engines (cache and model
    /// state carry over) — the [`Locater::into_service`](super::Locater::into_service)
    /// conversion path.
    pub(crate) fn from_parts_single(store: EventStore, engines: Engines) -> Self {
        let next_event_id = AtomicU64::new(store.next_event_id());
        Self {
            shards: vec![Shard {
                live: RwLock::new(ShardLive {
                    store,
                    epochs: EpochTable::new(),
                    wal: None,
                }),
                engines,
            }],
            next_event_id,
            durability: None,
            last_checkpoint: Mutex::new(None),
            checkpoints: AtomicU64::new(0),
            compaction: Mutex::new(CompactionState::default()),
        }
    }

    /// Number of shards the service is partitioned into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of a device under this service's shard count.
    pub fn home_shard(&self, device: DeviceId) -> usize {
        shard_of_device(device, self.shards.len())
    }

    /// The system configuration (per-request overrides are applied on top).
    pub fn config(&self) -> &LocaterConfig {
        &self.shards[0].engines.config
    }

    /// Read guards on every shard, taken in ascending shard order (the
    /// service-wide lock order; writers acquire in the same order).
    fn read_all(&self) -> Vec<RwLockReadGuard<'_, ShardLive>> {
        self.shards.iter().map(|shard| shard.live.read()).collect()
    }

    /// Write guards on every shard, in ascending shard order.
    fn write_all(&self) -> Vec<RwLockWriteGuard<'_, ShardLive>> {
        self.shards.iter().map(|shard| shard.live.write()).collect()
    }

    // ------------------------------------------------------------------
    // Ingestion
    // ------------------------------------------------------------------

    /// Appends one connectivity event (access point given by name, as found in
    /// logs) and bumps the device's epoch.
    ///
    /// For a device the service has already seen, only the device's **home
    /// shard** is write-locked — ingests for devices on different shards
    /// proceed fully in parallel. The first event of a new device takes a
    /// brief all-shard write lock to intern it into every replicated device
    /// table at the same dense id.
    pub fn ingest(&self, mac: &str, t: Timestamp, ap_name: &str) -> Result<EventId, IngestError> {
        self.ingest_tagged(mac, t, ap_name, None)
    }

    /// [`ingest`](Self::ingest) carrying the client's idempotency token. When
    /// the shard is durable, the token is persisted inside the event's WAL
    /// frame, so crash recovery can report which acked ingests a retrying
    /// client might replay (see `RecoveryReport::acked_ingests`) — without it,
    /// a replay-dedup cache cannot survive a restart.
    pub fn ingest_tagged(
        &self,
        mac: &str,
        t: Timestamp,
        ap_name: &str,
        request_id: Option<u64>,
    ) -> Result<EventId, IngestError> {
        let known = self.shards[0].live.read().store.device_id(mac);
        if let Some(device) = known {
            let home = self.home_shard(device);
            let mut live = self.shards[home].live.write();
            live.store.validate_raw(t, ap_name)?;
            let id = self.sequenced_ingest(&mut live, mac, t, ap_name, request_id)?;
            live.epochs.bump(device);
            return Ok(id);
        }
        // New device: intern into every shard under the full lock so the
        // replicated tables assign the same dense id everywhere.
        let mut guards = self.write_all();
        let device = Self::intern_everywhere(&mut guards, mac, t, ap_name)?;
        let home = shard_of_device(device, guards.len());
        let id = self.sequenced_ingest(&mut guards[home], mac, t, ap_name, request_id)?;
        guards[home].epochs.bump(device);
        Ok(id)
    }

    /// Appends one pre-validated event, drawing its id from the service-wide
    /// sequence so ids stay globally sequential across shards. When the shard
    /// carries a write-ahead log, the record is appended to the log *before*
    /// the in-memory apply, under the same shard write lock (log-then-apply):
    /// the event is pre-validated and its device already interned, so an
    /// event that reached the log always applies — the store never runs ahead
    /// of what recovery can reproduce. A failed log append rejects the event
    /// ([`IngestError::Wal`]) without mutating the store; the drawn id is
    /// skipped, which recovery tolerates (ids are merged, not assumed dense).
    fn sequenced_ingest(
        &self,
        live: &mut ShardLive,
        mac: &str,
        t: Timestamp,
        ap_name: &str,
        request_id: Option<u64>,
    ) -> Result<EventId, IngestError> {
        let id = self.next_event_id.fetch_add(1, Ordering::Relaxed);
        if let Some(wal) = live.wal.as_mut() {
            let ap = live.store.validate_raw(t, ap_name)?;
            wal.append(&WalRecord {
                id,
                t,
                ap: ap.raw(),
                mac: mac.to_string(),
                request_id,
            })
            .map_err(|e| IngestError::Wal(e.to_string()))?;
        }
        live.store.set_next_event_id(id);
        live.store.ingest_raw(mac, t, ap_name)
    }

    /// Appends a batch of raw events under one all-shard write lock (the batch
    /// is atomic with respect to queries), stopping at the first error —
    /// events before it are kept and their devices' epochs bumped. Returns the
    /// number of events appended.
    pub fn ingest_batch<'a>(
        &self,
        events: impl IntoIterator<Item = &'a RawEvent>,
    ) -> Result<usize, IngestError> {
        let mut guards = self.write_all();
        let mut count = 0usize;
        for event in events {
            let device = match guards[0].store.device_id(&event.mac) {
                Some(device) => device,
                None => Self::intern_everywhere(&mut guards, &event.mac, event.t, &event.ap)?,
            };
            guards[0].store.validate_raw(event.t, &event.ap)?;
            let home = shard_of_device(device, guards.len());
            // Batch tokens are not persisted per event: a batch is acked only
            // as a whole, and a partially durable batch must re-execute on
            // retry, so its replay window stays in-memory (see the server's
            // dedup cache).
            self.sequenced_ingest(&mut guards[home], &event.mac, event.t, &event.ap, None)?;
            guards[home].epochs.bump(device);
            count += 1;
        }
        Ok(count)
    }

    /// Interns a new device into every shard's replicated table, validating
    /// the event first so an invalid event interns nothing (mirroring the
    /// error order of [`EventStore::ingest_raw`]: access point, then
    /// timestamp, then MAC).
    fn intern_everywhere(
        guards: &mut [RwLockWriteGuard<'_, ShardLive>],
        mac: &str,
        t: Timestamp,
        ap_name: &str,
    ) -> Result<DeviceId, IngestError> {
        // Re-check under the write lock: another ingest may have interned the
        // device between our read probe and lock acquisition.
        if let Some(device) = guards[0].store.device_id(mac) {
            return Ok(device);
        }
        guards[0].store.validate_raw(t, ap_name)?;
        let mut device = None;
        for guard in guards.iter_mut() {
            let interned = guard.store.intern_device(mac)?;
            debug_assert!(device.is_none() || device == Some(interned));
            device = Some(interned);
        }
        Ok(device.expect("at least one shard"))
    }

    /// Re-estimates every device's validity period δ from its history (held by
    /// its home shard), writes the result into every replicated device table,
    /// and bumps **all** epochs: changing δ reshapes every device's gap
    /// structure, so all cached state is invalidated.
    pub fn reestimate_deltas(&self) {
        let mut guards = self.write_all();
        let shards = guards.len();
        let num_devices = guards[0].store.num_devices();
        let deltas: Vec<Timestamp> = (0..num_devices)
            .map(|idx| {
                let device = DeviceId::new(idx as u32);
                let home = &guards[shard_of_device(device, shards)].store;
                estimate_delta_events(home.timeline_of(device).iter(), home.validity_config())
            })
            .collect();
        for guard in guards.iter_mut() {
            for (idx, &delta) in deltas.iter().enumerate() {
                guard.store.set_delta(DeviceId::new(idx as u32), delta);
            }
            guard.epochs.bump_all(num_devices);
        }
    }

    /// Overrides one device's validity period δ in every replicated device
    /// table and bumps its epoch.
    pub fn set_delta(&self, device: DeviceId, delta: Timestamp) {
        let mut guards = self.write_all();
        for guard in guards.iter_mut() {
            guard.store.set_delta(device, delta);
        }
        let home = shard_of_device(device, guards.len());
        guards[home].epochs.bump(device);
    }

    /// Bumps one device's epoch without touching the store, invalidating every
    /// cached value derived from its history.
    pub fn invalidate_device(&self, device: DeviceId) {
        self.shards[self.home_shard(device)]
            .live
            .write()
            .epochs
            .bump(device);
    }

    /// Bumps every device's epoch, invalidating all cached state at once.
    pub fn invalidate_all(&self) {
        let mut guards = self.write_all();
        let num_devices = guards[0].store.num_devices();
        for guard in guards.iter_mut() {
            guard.epochs.bump_all(num_devices);
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Resolves the device a request refers to (the device table is replicated,
    /// so one shard answers).
    pub fn resolve(&self, request: &LocateRequest) -> Result<DeviceId, LocaterError> {
        let live = self.shards[0].live.read();
        resolve_target(&live.store, request.mac.as_deref(), request.device)
    }

    /// Answers one request over the multi-shard view. Holds every shard's read
    /// lock for the duration of the query (acquired in ascending order), so
    /// concurrent queries proceed in parallel and ingests are only delayed by
    /// in-flight queries touching their shard.
    pub fn locate(&self, request: &LocateRequest) -> Result<LocateResponse, LocaterError> {
        let guards = self.read_all();
        let view = ShardedRead::new(guards.iter().map(|guard| &guard.store).collect());
        let epochs = ShardedEpochs {
            tables: guards.iter().map(|guard| &guard.epochs).collect(),
        };
        let device = resolve_target(&view, request.mac.as_deref(), request.device)?;
        let home = self.home_shard(device);
        let eff = self.shards[home].engines.effective_for(request);
        let (answer, diagnostics) =
            self.locate_detailed(&view, &epochs, device, request.t, &eff, home);
        Ok(LocateResponse {
            answer,
            device_epoch: epochs.epoch_of(device),
            events_seen: view.num_events(),
            diagnostics: request.diagnostics.then_some(diagnostics),
        })
    }

    /// Answers one request with the coarse step only — the *degraded* path a
    /// server takes when a request's deadline has already expired: the room
    /// stays unknown ([`Location::Region`]) but the caller still learns
    /// whether the device was inside and where, at coarse-step cost (no
    /// neighbor scan, no fine-step iterations, no cache writes).
    pub fn locate_coarse(&self, request: &LocateRequest) -> Result<LocateResponse, LocaterError> {
        let guards = self.read_all();
        let view = ShardedRead::new(guards.iter().map(|guard| &guard.store).collect());
        let epochs = ShardedEpochs {
            tables: guards.iter().map(|guard| &guard.epochs).collect(),
        };
        let device = resolve_target(&view, request.mac.as_deref(), request.device)?;
        let home = self.home_shard(device);
        let engines = &self.shards[home].engines;
        let (coarse, _model_reused) = engines.coarse_outcome(&view, &epochs, device, request.t);
        let answer = Answer {
            device,
            t: request.t,
            location: match coarse.label {
                CoarseLabel::Outside => Location::Outside,
                CoarseLabel::Inside(region) => Location::Region(region),
            },
            coarse_method: coarse.method,
            confidence: coarse.confidence,
        };
        Ok(LocateResponse {
            answer,
            device_epoch: epochs.epoch_of(device),
            events_seen: view.num_events(),
            diagnostics: None,
        })
    }

    /// The sharded analogue of [`Engines::locate_detailed`]: coarse and model
    /// state come from the queried device's home shard, fine-step cache reads
    /// and writes route to each edge's owner shard.
    fn locate_detailed(
        &self,
        view: &ShardedRead<'_>,
        epochs: &dyn EpochRead,
        device: DeviceId,
        t_q: Timestamp,
        eff: &super::service::Effective,
        home: usize,
    ) -> (Answer, QueryDiagnostics) {
        let engines = &self.shards[home].engines;
        let start = Instant::now();

        let (coarse, model_reused) = engines.coarse_outcome(view, epochs, device, t_q);
        let region = match coarse.label {
            CoarseLabel::Outside => {
                let answer = assemble_answer(device, t_q, &coarse, None);
                let diagnostics = QueryDiagnostics {
                    coarse,
                    fine: None,
                    elapsed: start.elapsed(),
                    coarse_model_reused: model_reused,
                    cache_warm: false,
                };
                return (answer, diagnostics);
            }
            CoarseLabel::Inside(region) => region,
        };

        let plan = match eff.cache {
            CacheMode::Enabled => {
                let neighbors = engines.fine_neighbors(view, eff, device, t_q, region);
                Some(self.fine_plan(epochs, device, t_q, &neighbors))
            }
            CacheMode::Disabled => None,
        };
        let (fine, cache_warm) = engines.fine_exec(view, eff, device, t_q, region, plan);
        if eff.cache == CacheMode::Enabled && !fine.contributions.is_empty() {
            self.merge_contributions(device, &fine.contributions, t_q, epochs);
        }

        let answer = assemble_answer(device, t_q, &coarse, Some((&fine, region)));
        let diagnostics = QueryDiagnostics {
            coarse,
            fine: Some(fine),
            elapsed: start.elapsed(),
            coarse_model_reused: model_reused,
            cache_warm,
        };
        (answer, diagnostics)
    }

    /// Extracts the fine-step plan from the owner shards' caches: each edge
    /// `{device, n}` is read from the cache of `min(device, n)`'s home shard.
    /// The needed cache read guards are taken once, in ascending shard order.
    fn fine_plan(
        &self,
        epochs: &dyn EpochRead,
        device: DeviceId,
        t_q: Timestamp,
        neighbors: &[DeviceId],
    ) -> FinePlan {
        let shards = self.shards.len();
        let owner_of = |neighbor: DeviceId| shard_of_device(edge_key(device, neighbor).0, shards);
        let mut needed = vec![false; shards];
        for &neighbor in neighbors {
            needed[owner_of(neighbor)] = true;
        }
        let caches: Vec<Option<RwLockReadGuard<'_, EpochCache>>> = self
            .shards
            .iter()
            .zip(&needed)
            .map(|(shard, &needed)| needed.then(|| shard.engines.cache.read()))
            .collect();
        let cache_of = |neighbor: DeviceId| -> &EpochCache {
            caches[owner_of(neighbor)]
                .as_deref()
                .expect("owner cache guard was taken above")
        };
        let warm = neighbors
            .iter()
            .any(|&n| !cache_of(n).samples(device, n, epochs).is_empty());
        let cached: HashMap<DeviceId, f64> = neighbors
            .iter()
            .filter_map(|&n| {
                cache_of(n)
                    .cached_pair_affinity(device, n, t_q, epochs)
                    .map(|affinity| (n, affinity))
            })
            .collect();
        let order = rank_by_weight(neighbors, |n| cache_of(n).weight(device, n, t_q, epochs));
        FinePlan {
            order,
            cached,
            warm,
        }
    }

    /// Merges one answered query's local affinity graph into the owner shards'
    /// caches (write locks taken per owner, in ascending shard order).
    fn merge_contributions(
        &self,
        center: DeviceId,
        contributions: &[NeighborContribution],
        t: Timestamp,
        epochs: &dyn EpochRead,
    ) {
        let shards = self.shards.len();
        if shards == 1 {
            self.shards[0]
                .engines
                .cache
                .write()
                .merge_local(center, contributions, t, epochs);
            return;
        }
        let mut per_owner: Vec<Vec<NeighborContribution>> = vec![Vec::new(); shards];
        for contribution in contributions {
            let owner = shard_of_device(edge_key(center, contribution.device).0, shards);
            per_owner[owner].push(*contribution);
        }
        for (shard, subset) in self.shards.iter().zip(per_owner) {
            if !subset.is_empty() {
                shard
                    .engines
                    .cache
                    .write()
                    .merge_local(center, &subset, t, epochs);
            }
        }
    }

    /// Answers a batch of requests through the deterministic batch pipeline
    /// (see [`super::batch`]): requests are grouped by device across `jobs`
    /// worker threads, answered against a frozen union snapshot of every
    /// shard's affinity cache, and the results merge back to each edge's and
    /// model's owner shard in query order. Responses are identical for every
    /// `jobs` value **and every shard count**, in request order; batch
    /// responses carry no diagnostics.
    pub fn locate_batch(
        &self,
        requests: &[LocateRequest],
        jobs: usize,
    ) -> Vec<Result<LocateResponse, LocaterError>> {
        let guards = self.read_all();
        let view = ShardedRead::new(guards.iter().map(|guard| &guard.store).collect());
        let epochs = ShardedEpochs {
            tables: guards.iter().map(|guard| &guard.epochs).collect(),
        };
        let shards = self.shards.len();
        let engines = &self.shards[0].engines;
        let items: Vec<BatchItem> = requests
            .iter()
            .map(|request| BatchItem {
                t: request.t,
                device: resolve_target(&view, request.mac.as_deref(), request.device),
                eff: engines.effective_for(request),
            })
            .collect();

        // Epoch-live model seeds come from each device's home shard.
        let mut seeds: HashMap<DeviceId, DeviceCoarseModel> = HashMap::new();
        for item in &items {
            let Ok(device) = item.device else { continue };
            if seeds.contains_key(&device) {
                continue;
            }
            let home = shard_of_device(device, shards);
            let models = self.shards[home].engines.models.read();
            if let Some(entry) = models.get(&device) {
                if entry.epoch == epochs.epoch_of(device) {
                    seeds.insert(device, entry.model.clone());
                }
            }
        }

        // The frozen snapshot is the union of every shard's cache — edge sets
        // are disjoint (each edge lives in its owner shard), so the union is
        // exactly the cache a single-shard deployment would hold.
        let frozen: Option<EpochCache> = batch::wants_cache(&items).then(|| {
            let mut union = self.shards[0].engines.cache.read().clone();
            for shard in &self.shards[1..] {
                union.absorb(shard.engines.cache.read().clone());
            }
            union
        });

        let outcome = batch::run_batch(
            engines,
            &view,
            &epochs,
            &items,
            jobs,
            seeds,
            frozen.as_ref(),
        );

        // Post-join merge: contributions route to edge owners in query order,
        // trained models to their devices' home shards.
        for contribution in &outcome.contributions {
            self.merge_contributions(
                contribution.device,
                &contribution.neighbors,
                contribution.t,
                &epochs,
            );
        }
        for (&device, model) in &outcome.trained {
            let home = shard_of_device(device, shards);
            self.shards[home].engines.models.write().insert(
                device,
                ModelEntry {
                    model: model.clone(),
                    epoch: epochs.epoch_of(device),
                },
            );
        }

        let events_seen = view.num_events();
        outcome
            .answers
            .into_iter()
            .zip(&items)
            .map(|(answer, item)| {
                answer.map(|answer| LocateResponse {
                    device_epoch: item
                        .device
                        .as_ref()
                        .map(|&d| epochs.epoch_of(d))
                        .unwrap_or(0),
                    events_seen,
                    answer,
                    diagnostics: None,
                })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Observability & maintenance
    // ------------------------------------------------------------------

    /// The current ingest epoch of a device (0 for devices never ingested
    /// through the service).
    pub fn device_epoch(&self, device: DeviceId) -> u64 {
        self.shards[self.home_shard(device)]
            .live
            .read()
            .epochs
            .of(device)
    }

    /// The space metadata the service answers over.
    pub fn space(&self) -> Arc<Space> {
        self.shards[0].live.read().store.space().clone()
    }

    /// Looks up a device id by MAC address / log identifier.
    pub fn device_id(&self, mac: &str) -> Option<DeviceId> {
        self.shards[0].live.read().store.device_id(mac)
    }

    /// Runs `f` with read access to one shard's store partition (the lock is
    /// held for the duration of the closure — keep it short). With one shard,
    /// shard 0 holds the whole dataset.
    pub fn with_shard_store<R>(&self, shard: usize, f: impl FnOnce(&EventStore) -> R) -> R {
        f(&self.shards[shard].live.read().store)
    }

    /// A combined clone of the current store — the basis of the service's
    /// answers at this instant, reassembled from the shard partitions
    /// ([`EventStore::rejoin`]); bit-identical to what a single-shard service
    /// over the same events would hold. Useful for rebuild-equivalence checks
    /// and snapshots.
    pub fn store_snapshot(&self) -> EventStore {
        let guards = self.read_all();
        if guards.len() == 1 {
            return guards[0].store.clone();
        }
        EventStore::rejoin(guards.iter().map(|guard| &guard.store))
            .expect("shards of one service always rejoin")
    }

    /// Persists the combined store as one binary snapshot — the same file a
    /// single-shard deployment writes, loadable with any shard count
    /// ([`ShardedLocaterService::from_snapshot`]).
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.store_snapshot().save_snapshot(path)
    }

    /// The durability configuration, when a WAL is attached.
    pub fn durability(&self) -> Option<&Durability> {
        self.durability.as_ref()
    }

    /// Checkpoints the durable service: writes one consistent combined
    /// snapshot (atomically, under the all-shard write lock so no ingest can
    /// land between a shard's log and the snapshot) and trims every shard's
    /// log. After this, recovery loads the snapshot and replays nothing — a
    /// clean shutdown that checkpoints leaves an empty tail. Returns the
    /// checkpoint size in bytes, or `None` when the service has no WAL.
    pub fn checkpoint(&self) -> Result<Option<u64>, WalError> {
        let Some(durability) = self.durability.as_ref() else {
            return Ok(None);
        };
        let mut guards = self.write_all();
        let combined = if guards.len() == 1 {
            guards[0].store.clone()
        } else {
            EventStore::rejoin(guards.iter().map(|guard| &guard.store))
                .expect("shards of one service always rejoin")
        };
        let bytes = write_checkpoint_io(&durability.dir, &combined, durability.io.as_ref())?;
        for guard in guards.iter_mut() {
            if let Some(wal) = guard.wal.as_mut() {
                wal.reset()?;
            }
        }
        *self.last_checkpoint.lock() = Some(Instant::now());
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(Some(bytes))
    }

    /// Takes a *delta snapshot*: seals every shard's active segment (fsync +
    /// rotate), making everything ingested so far durable and immutable
    /// without rewriting the (much larger) checkpoint snapshot. No-op without
    /// a WAL.
    pub fn seal_wal(&self) -> Result<(), WalError> {
        let mut guards = self.write_all();
        for guard in guards.iter_mut() {
            if let Some(wal) = guard.wal.as_mut() {
                wal.seal()?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Compaction / tiered ageing
    // ------------------------------------------------------------------

    /// The service's event-time watermark: the timestamp of the newest stored
    /// event, or `None` while empty. [`Self::compact_all`] retains relative to
    /// this, so retention follows event time (deterministic under replay and
    /// in simulations), never the wall clock.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.read_all()
            .iter()
            .filter_map(|guard| guard.store.time_span().map(|span| span.end - 1))
            .max()
    }

    /// Compacts every shard to `horizon`: sealed segment buckets entirely
    /// below the bucket-aligned cut leave the hot tier, are distilled into
    /// dwell summaries (accumulated in memory and reported by
    /// [`Self::compaction_status`]), and — when `spill_dir` is given — are
    /// persisted as a `spill-<cut>.snap` snapshot plus the merged
    /// `summaries.json`.
    ///
    /// Scheduling properties, in the order they matter operationally:
    ///
    /// * **off the ingest path** — shards are compacted sequentially, one
    ///   shard write lock at a time, so ingest and queries on every other
    ///   shard proceed throughout the run;
    /// * **epoch-safe** — no device epoch is bumped: answers whose consulted
    ///   window lies inside the retained history are byte-identical before
    ///   and after, so every cached affinity and model stays valid;
    /// * **WAL-coherent** — on a durable service an effective run is followed
    ///   by a [`Self::checkpoint`], so recovery restarts from the compacted
    ///   state instead of resurrecting evicted history from an old snapshot
    ///   (either way answers in the retained window are unchanged).
    ///
    /// Returns the updated cumulative [`CompactionStatus`]. A run that evicts
    /// nothing is a cheap no-op (no summary merge, no spill file, no
    /// checkpoint).
    pub fn compact_to(
        &self,
        horizon: Timestamp,
        spill_dir: Option<&Path>,
    ) -> Result<CompactionStatus, WalError> {
        let mut evicted_events = 0usize;
        let mut evicted_segments = 0usize;
        let mut cut = horizon;
        let mut summaries: Vec<DwellSummary> = Vec::new();
        let mut spills: Vec<EventStore> = Vec::new();
        for shard in &self.shards {
            let report = shard.live.write().store.compact(horizon);
            cut = report.cut;
            if report.evicted_events == 0 {
                continue;
            }
            evicted_events += report.evicted_events;
            evicted_segments += report.evicted_segments;
            compaction::merge_dwell_summaries(&mut summaries, &report.summaries);
            spills.extend(report.spill);
        }

        let status = {
            let mut state = self.compaction.lock();
            if evicted_events > 0 {
                state.status.runs += 1;
                state.status.evicted_events += evicted_events as u64;
                state.status.evicted_segments += evicted_segments as u64;
                state.status.last_cut = Some(cut);
                compaction::merge_dwell_summaries(&mut state.summaries, &summaries);
                state.status.summary_rows = state.summaries.len();
            }
            state.status
        };
        if evicted_events == 0 {
            return Ok(status);
        }

        if let Some(dir) = spill_dir {
            let combined = CompactionReport {
                horizon,
                cut,
                evicted_events,
                evicted_segments,
                summaries,
                spill: compaction::merge_spills(spills),
            };
            let io: &dyn StorageIo = match self.durability.as_ref() {
                Some(durability) => durability.io.as_ref(),
                None => &RealIo,
            };
            compaction::persist_tiers_io(dir, &combined, io)?;
        }
        if self.durability.is_some() {
            self.checkpoint()?;
        }
        Ok(status)
    }

    /// Compacts relative to the event-time watermark: keeps the most recent
    /// `retain` seconds of history (rounded down to a whole segment bucket)
    /// and ages out everything older — the periodic maintenance call a
    /// long-running server makes. A no-op on an empty service.
    pub fn compact_all(
        &self,
        retain: Timestamp,
        spill_dir: Option<&Path>,
    ) -> Result<CompactionStatus, WalError> {
        match self.watermark() {
            Some(watermark) => self.compact_to(watermark.saturating_sub(retain), spill_dir),
            None => Ok(self.compaction_status()),
        }
    }

    /// The cumulative compaction gauges (runs, evictions, last cut, summary
    /// rows) since boot.
    pub fn compaction_status(&self) -> CompactionStatus {
        self.compaction.lock().status
    }

    /// The accumulated summary-tier rows (per-device per-AP dwell statistics
    /// of all evicted history) — the training input that outlives the raw
    /// events.
    pub fn dwell_summaries(&self) -> Vec<DwellSummary> {
        self.compaction.lock().summaries.clone()
    }

    /// Approximate resident heap bytes across all shard stores (allocated
    /// capacity of timelines, global index and posting lists) — the gauge the
    /// soak harness asserts stays flat under compaction.
    pub fn approx_resident_bytes(&self) -> usize {
        self.read_all()
            .iter()
            .map(|guard| guard.store.approx_resident_bytes())
            .sum()
    }

    /// Current WAL gauges (`None` when the service has no WAL): per-shard and
    /// summed segment/frame/byte counts, fsync policy, checkpoint age.
    pub fn wal_status(&self) -> Option<WalStatus> {
        let durability = self.durability.as_ref()?;
        let guards = self.read_all();
        let per_shard: Vec<WalShardStats> = guards
            .iter()
            .filter_map(|guard| guard.wal.as_ref().map(|wal| wal.stats()))
            .collect();
        let age = self
            .last_checkpoint
            .lock()
            .map(|at| at.elapsed().as_millis() as u64)
            .unwrap_or(0);
        Some(WalStatus {
            dir: durability.dir.display().to_string(),
            fsync: durability.fsync.to_string(),
            segments: per_shard.iter().map(|s| s.segments).sum(),
            frames: per_shard.iter().map(|s| s.frames).sum(),
            bytes: per_shard.iter().map(|s| s.bytes).sum(),
            last_checkpoint_age_ms: age,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            per_shard,
        })
    }

    /// Total number of events currently stored across all shards.
    pub fn num_events(&self) -> usize {
        self.read_all()
            .iter()
            .map(|guard| guard.store.num_events())
            .sum()
    }

    /// Number of distinct devices currently known (the device table is
    /// replicated, so one shard answers).
    pub fn num_devices(&self) -> usize {
        self.shards[0].live.read().store.num_devices()
    }

    /// Number of edges and samples physically held across all shard caches,
    /// including stale ones awaiting eviction.
    pub fn cache_stats(&self) -> (usize, usize) {
        let mut edges = 0usize;
        let mut samples = 0usize;
        for shard in &self.shards {
            let (e, s) = shard.engines.cache.read().stats();
            edges += e;
            samples += s;
        }
        (edges, samples)
    }

    /// Number of edges and samples live under the current epochs across all
    /// shard caches — the state queries can actually observe.
    pub fn live_cache_stats(&self) -> (usize, usize) {
        let guards = self.read_all();
        let epochs = ShardedEpochs {
            tables: guards.iter().map(|guard| &guard.epochs).collect(),
        };
        let mut edges = 0usize;
        let mut samples = 0usize;
        for shard in &self.shards {
            let (e, s) = shard.engines.cache.read().live_stats(&epochs);
            edges += e;
            samples += s;
        }
        (edges, samples)
    }

    /// Per-shard event/device/cache counters (what `locater-cli serve`'s
    /// `stats` command prints).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let guards = self.read_all();
        let epochs = ShardedEpochs {
            tables: guards.iter().map(|guard| &guard.epochs).collect(),
        };
        let shards = self.shards.len();
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let store = &guards[index].store;
                let owned_devices = (0..store.num_devices())
                    .filter(|&idx| shard_of_device(DeviceId::new(idx as u32), shards) == index)
                    .count();
                let cache = shard.engines.cache.read();
                let (edges, samples) = cache.stats();
                let (live_edges, live_samples) = cache.live_stats(&epochs);
                let colocation = store.colocation_stats();
                let tiers = store.tier_stats();
                ShardStats {
                    shard: index,
                    events: store.num_events(),
                    owned_devices,
                    edges,
                    live_edges,
                    samples,
                    live_samples,
                    index_ap_lists: colocation.ap_lists,
                    index_buckets: colocation.buckets,
                    head_segments: tiers.head_segments,
                    sealed_segments: tiers.sealed_segments,
                    resident_bytes: tiers.resident_bytes,
                }
            })
            .collect()
    }

    /// Eagerly evicts stale affinity edges and stale coarse models from every
    /// shard, returning `(edges_evicted, models_evicted)`. Optional
    /// maintenance — queries never observe stale state either way.
    pub fn purge_stale(&self) -> (usize, usize) {
        let guards = self.read_all();
        let epochs = ShardedEpochs {
            tables: guards.iter().map(|guard| &guard.epochs).collect(),
        };
        let mut edges = 0usize;
        let mut models_evicted = 0usize;
        for shard in &self.shards {
            edges += shard.engines.cache.write().purge_stale(&epochs);
            let mut models = shard.engines.models.write();
            let before = models.len();
            models.retain(|&device, entry| entry.epoch == epochs.epoch_of(device));
            models_evicted += before - models.len();
        }
        (edges, models_evicted)
    }

    /// Drops all cached affinities and per-device coarse models on every shard
    /// (epochs are untouched; prefer letting epoch invalidation work instead).
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.engines.clear_cache();
        }
    }
}
