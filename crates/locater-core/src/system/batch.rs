//! The deterministic sharded batch pipeline shared by
//! [`Locater::locate_batch`](super::Locater::locate_batch) and
//! [`LocaterService::locate_batch`](super::LocaterService::locate_batch).
//!
//! The pipeline is built for determinism: results are **identical for every
//! `jobs` value** (including the sequential `jobs = 1` path) and are returned
//! in query order. Three properties make that hold:
//!
//! 1. every query is answered against a *frozen* snapshot of the global
//!    affinity graph (cloned under a brief read lock), so no shard observes
//!    another shard's cache warming — and, unlike per-query `locate` loops, no
//!    query observes warming from *earlier batch queries* either;
//! 2. queries are sharded **by device** — a device's queries are processed by
//!    one shard in query order, so its lazily trained coarse model evolves
//!    exactly as in the sequential path (shard-local model maps are seeded from
//!    the shared model cache, which is also per-device);
//! 3. the shard-local affinity contributions are merged into the global graph
//!    only after all shards join, in ascending query order.
//!
//! Device → shard assignment balances per-device query counts greedily, so
//! skewed workloads still spread across the pool.

use super::epoch::{EpochCache, EpochTable, ModelEntry};
use super::service::{Effective, Engines, ModelUse};
use super::{assemble_answer, Answer, CacheMode};
use crate::coarse::{CoarseLabel, DeviceCoarseModel};
use crate::error::LocaterError;
use crate::fine::NeighborContribution;
use locater_events::clock::Timestamp;
use locater_events::DeviceId;
use locater_store::EventStore;
use std::collections::HashMap;

/// One batch entry: the query time, the resolved device (or the error to
/// report in place), and the per-request effective engine view.
#[derive(Debug)]
pub(crate) struct BatchItem {
    pub(crate) t: Timestamp,
    pub(crate) device: Result<DeviceId, LocaterError>,
    pub(crate) eff: Effective,
}

/// The local affinity graph of one batch-answered query, queued for the
/// post-join merge into the global graph.
#[derive(Debug, Clone)]
struct ShardContribution {
    query_index: usize,
    device: DeviceId,
    t: Timestamp,
    neighbors: Vec<NeighborContribution>,
}

/// Everything one batch shard produces: answers (tagged with their query
/// index), affinity contributions, and the shard-local trained models.
#[derive(Debug, Default)]
struct ShardOutput {
    answers: Vec<(usize, Answer)>,
    contributions: Vec<ShardContribution>,
    models: HashMap<DeviceId, DeviceCoarseModel>,
}

/// Answers a batch of resolved items, sharded across `jobs` worker threads.
/// Unresolvable items error in place and never reach a shard.
pub(crate) fn run_batch(
    engines: &Engines,
    store: &EventStore,
    epochs: &EpochTable,
    items: &[BatchItem],
    jobs: usize,
) -> Vec<Result<Answer, LocaterError>> {
    if items.is_empty() {
        return Vec::new();
    }

    // Deterministic device → shard assignment: devices ordered by decreasing
    // query count (ties by device id) go to the least-loaded shard (ties by
    // shard index). A shard is a real worker thread, so the job count is
    // capped by the distinct-device count — extra shards could only ever be
    // empty.
    let mut query_counts: HashMap<DeviceId, usize> = HashMap::new();
    for item in items {
        if let Ok(device) = item.device {
            *query_counts.entry(device).or_insert(0) += 1;
        }
    }
    let jobs = jobs.clamp(1, items.len()).min(query_counts.len().max(1));
    let mut devices: Vec<(DeviceId, usize)> = query_counts.into_iter().collect();
    devices.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut load = vec![0usize; jobs];
    let mut shard_of: HashMap<DeviceId, usize> = HashMap::new();
    for (device, count) in devices {
        let shard = (0..jobs).min_by_key(|&i| (load[i], i)).expect("jobs >= 1");
        load[shard] += count;
        shard_of.insert(device, shard);
    }
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); jobs];
    for (idx, item) in items.iter().enumerate() {
        if let Ok(device) = item.device {
            shards[shard_of[&device]].push(idx);
        }
    }

    // Seed shard-local model maps from the shared cache: per-device state
    // crosses into exactly one shard, preserving sequential semantics. Only
    // epoch-live models are seeded — a stale model must be retrained, exactly
    // as in the single-query path.
    let seeds: Vec<HashMap<DeviceId, DeviceCoarseModel>> = {
        let models = engines.models.read();
        shards
            .iter()
            .map(|indices| {
                let mut seed: HashMap<DeviceId, DeviceCoarseModel> = HashMap::new();
                for &idx in indices {
                    if let Ok(device) = items[idx].device {
                        if let Some(entry) = models.get(&device) {
                            if entry.epoch == epochs.of(device) {
                                seed.entry(device).or_insert_with(|| entry.model.clone());
                            }
                        }
                    }
                }
                seed
            })
            .collect()
    };

    // Parallel phase: all shards answer against the same frozen cache. The
    // snapshot is a clone taken under a brief read lock, so concurrent
    // single-query callers are never stalled for the batch's duration. The
    // snapshot carries its epoch stamps, so stale edges stay invisible inside
    // the batch too.
    let wants_cache = items
        .iter()
        .any(|item| item.eff.cache == CacheMode::Enabled && item.device.is_ok());
    let snapshot: Option<EpochCache> = wants_cache.then(|| engines.cache.read().clone());
    let frozen: Option<&EpochCache> = snapshot.as_ref();
    let mut outputs: Vec<ShardOutput> = Vec::new();
    outputs.resize_with(jobs, ShardOutput::default);
    rayon::scope(|scope| {
        for ((indices, seed), out) in shards.iter().zip(seeds).zip(outputs.iter_mut()) {
            if indices.is_empty() {
                continue;
            }
            scope.spawn(move |_| {
                *out = run_shard(engines, store, epochs, items, indices, seed, frozen);
            });
        }
    });

    // Deterministic merge: contributions in query order, models per device.
    let mut answers: Vec<Option<Answer>> = vec![None; items.len()];
    let mut contributions: Vec<ShardContribution> = Vec::new();
    let mut trained: HashMap<DeviceId, DeviceCoarseModel> = HashMap::new();
    for output in outputs {
        for (idx, answer) in output.answers {
            answers[idx] = Some(answer);
        }
        contributions.extend(output.contributions);
        trained.extend(output.models);
    }
    if !contributions.is_empty() {
        contributions.sort_by_key(|c| c.query_index);
        let mut cache = engines.cache.write();
        for contribution in &contributions {
            cache.merge_local(
                contribution.device,
                &contribution.neighbors,
                contribution.t,
                epochs,
            );
        }
    }
    if !trained.is_empty() {
        let mut models = engines.models.write();
        for (device, model) in trained {
            let epoch = epochs.of(device);
            models.insert(device, ModelEntry { model, epoch });
        }
    }

    answers
        .into_iter()
        .zip(items)
        .map(|(answer, item)| match &item.device {
            Ok(_) => Ok(answer.expect("every resolved query is answered by its shard")),
            Err(e) => Err(e.clone()),
        })
        .collect()
}

/// Answers one shard's queries (in query order) against the frozen cache,
/// collecting answers, affinity contributions, and freshly trained models
/// (untouched seed models are not reported back).
fn run_shard(
    engines: &Engines,
    store: &EventStore,
    epochs: &EpochTable,
    items: &[BatchItem],
    indices: &[usize],
    mut models: HashMap<DeviceId, DeviceCoarseModel>,
    cache: Option<&EpochCache>,
) -> ShardOutput {
    let mut output = ShardOutput::default();
    let mut trained: std::collections::HashSet<DeviceId> = std::collections::HashSet::new();
    for &idx in indices {
        let item = &items[idx];
        let device = match item.device {
            Ok(device) => device,
            Err(_) => continue,
        };
        let t_q = item.t;
        let (coarse, model_use) = engines.coarse_outcome_in(store, &mut models, device, t_q);
        if model_use == ModelUse::Trained {
            trained.insert(device);
        }
        let answer = match coarse.label {
            CoarseLabel::Outside => assemble_answer(device, t_q, &coarse, None),
            CoarseLabel::Inside(region) => {
                let use_cache = item.eff.cache == CacheMode::Enabled;
                let plan = cache.filter(|_| use_cache).map(|cache| {
                    let neighbors = engines.fine_neighbors(store, &item.eff, device, t_q, region);
                    engines.fine_plan(epochs, device, t_q, &neighbors, cache)
                });
                let (mut fine, _) = engines.fine_exec(store, &item.eff, device, t_q, region, plan);
                let answer = assemble_answer(device, t_q, &coarse, Some((&fine, region)));
                if use_cache && cache.is_some() && !fine.contributions.is_empty() {
                    output.contributions.push(ShardContribution {
                        query_index: idx,
                        device,
                        t: t_q,
                        neighbors: std::mem::take(&mut fine.contributions),
                    });
                }
                answer
            }
        };
        output.answers.push((idx, answer));
    }
    models.retain(|device, _| trained.contains(device));
    output.models = models;
    output
}
